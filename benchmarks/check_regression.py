#!/usr/bin/env python
"""Compare measured runtime-bench ratios against the committed baseline.

The CI ``bench-regression`` job runs the quick-mode runtime benchmarks
(``benchmarks/test_bench_runtime.py`` writes
``benchmarks/outputs/runtime_speedup.json``) and then this script,
which fails the build when any case's compiled-vs-module speedup ratio
dropped more than ``tolerance`` (default 25%) below the committed
baseline in ``benchmarks/baselines/runtime_ratios.json``.

Ratios, not absolute times, are compared: the module path runs on the
same machine in the same process, so machine speed divides out and the
check stays meaningful across heterogeneous CI runners.

Baseline refresh workflow (after an intentional perf change)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_runtime.py
    python benchmarks/check_regression.py --update
    git add benchmarks/baselines/runtime_ratios.json

New cases missing from the baseline are reported but do not fail; run
``--update`` to adopt them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
MEASURED = BENCH_DIR / "outputs" / "runtime_speedup.json"
BASELINE = BENCH_DIR / "baselines" / "runtime_ratios.json"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: {path} not found — run the runtime bench first")


def update_baseline(measured: dict, baseline_doc: dict) -> None:
    baseline_doc["ratios"] = {
        label: result["speedup"] for label, result in sorted(measured.items())
    }
    BASELINE.write_text(
        json.dumps(baseline_doc, indent=2) + "\n", encoding="utf-8"
    )
    print(f"baseline refreshed from {MEASURED.relative_to(BENCH_DIR.parent)}:")
    for label, ratio in baseline_doc["ratios"].items():
        print(f"  {label}: {ratio:.2f}x")


def check(measured: dict, baseline_doc: dict) -> int:
    tolerance = float(baseline_doc.get("tolerance", 0.25))
    ratios = baseline_doc.get("ratios", {})
    failures, new_cases, rows = [], [], []
    for label, result in sorted(measured.items()):
        speedup = float(result["speedup"])
        baseline = ratios.get(label)
        if baseline is None:
            new_cases.append(label)
            rows.append((label, speedup, None, "new"))
            continue
        floor = baseline * (1.0 - tolerance)
        status = "ok" if speedup >= floor else "REGRESSED"
        if status != "ok":
            failures.append(
                f"{label}: {speedup:.2f}x is below {floor:.2f}x "
                f"(baseline {baseline:.2f}x - {tolerance:.0%})"
            )
        rows.append((label, speedup, baseline, status))
    missing = sorted(set(ratios) - set(measured))

    width = max(len(label) for label, *_ in rows) if rows else 4
    print(f"bench-regression: compiled-vs-module ratios (tolerance {tolerance:.0%})")
    for label, speedup, baseline, status in rows:
        base = f"{baseline:.2f}x" if baseline is not None else "  -  "
        print(f"  {label:<{width}}  measured {speedup:.2f}x  baseline {base}  {status}")
    if new_cases:
        print(
            "note: cases without a baseline (run --update to adopt): "
            + ", ".join(new_cases)
        )
    if missing:
        print("note: baseline cases not measured this run: " + ", ".join(missing))
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("ok: no ratio regressed beyond tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline from the measured ratios",
    )
    args = parser.parse_args()
    measured = _load(MEASURED).get("cases", {})
    if not measured:
        sys.exit(f"error: {MEASURED} contains no cases")
    baseline_doc = _load(BASELINE)
    if args.update:
        update_baseline(measured, baseline_doc)
        return 0
    return check(measured, baseline_doc)


if __name__ == "__main__":
    sys.exit(main())
