#!/usr/bin/env python
"""Compare measured bench ratios against the committed baselines.

The CI ``bench-regression`` job runs the quick-mode ratio benchmarks —
``benchmarks/test_bench_runtime.py`` (compiled-vs-module forward,
``outputs/runtime_speedup.json``) and
``benchmarks/test_bench_campaign_replicas.py`` (replica-batched vs
per-trial campaign throughput, ``outputs/campaign_replicas.json``), and
``benchmarks/test_bench_serve_async.py`` (async front + multi-process
plan lanes vs the threaded serving front, ``outputs/serve_async.json``)
— and then this script, which fails the build when any case's speedup
ratio dropped more than that suite's ``tolerance`` (default 25%) below
its committed baseline under ``benchmarks/baselines/``.

Ratios, not absolute times, are compared: the slow path runs on the
same machine in the same process, so machine speed divides out and the
check stays meaningful across heterogeneous CI runners.

Baseline refresh workflow (after an intentional perf change)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_runtime.py \\
        benchmarks/test_bench_campaign_replicas.py
    python benchmarks/check_regression.py --update
    git add benchmarks/baselines/

Suites whose measured output is absent are skipped with a note (so a
dev re-checking one bench needn't run the others); new cases missing
from a baseline are reported but do not fail; run ``--update`` to
adopt them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent

#: (suite label, measured JSON written by the bench, committed baseline)
SUITES = (
    (
        "runtime",
        BENCH_DIR / "outputs" / "runtime_speedup.json",
        BENCH_DIR / "baselines" / "runtime_ratios.json",
    ),
    (
        "campaign-replicas",
        BENCH_DIR / "outputs" / "campaign_replicas.json",
        BENCH_DIR / "baselines" / "campaign_replicas.json",
    ),
    (
        "serve-async",
        BENCH_DIR / "outputs" / "serve_async.json",
        BENCH_DIR / "baselines" / "serve_async.json",
    ),
)


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: {path} not found — run the matching bench first")


def update_baseline(measured: dict, baseline_doc: dict, baseline_path: Path) -> None:
    baseline_doc["ratios"] = {
        label: result["speedup"] for label, result in sorted(measured.items())
    }
    baseline_path.write_text(
        json.dumps(baseline_doc, indent=2) + "\n", encoding="utf-8"
    )
    print(f"baseline {baseline_path.relative_to(BENCH_DIR.parent)} refreshed:")
    for label, ratio in baseline_doc["ratios"].items():
        print(f"  {label}: {ratio:.2f}x")


def check(suite: str, measured: dict, baseline_doc: dict) -> int:
    tolerance = float(baseline_doc.get("tolerance", 0.25))
    ratios = baseline_doc.get("ratios", {})
    failures, new_cases, rows = [], [], []
    for label, result in sorted(measured.items()):
        speedup = float(result["speedup"])
        baseline = ratios.get(label)
        if baseline is None:
            new_cases.append(label)
            rows.append((label, speedup, None, "new"))
            continue
        floor = baseline * (1.0 - tolerance)
        status = "ok" if speedup >= floor else "REGRESSED"
        if status != "ok":
            failures.append(
                f"{label}: {speedup:.2f}x is below {floor:.2f}x "
                f"(baseline {baseline:.2f}x - {tolerance:.0%})"
            )
        rows.append((label, speedup, baseline, status))
    missing = sorted(set(ratios) - set(measured))

    width = max(len(label) for label, *_ in rows) if rows else 4
    print(f"bench-regression [{suite}]: speedup ratios (tolerance {tolerance:.0%})")
    for label, speedup, baseline, status in rows:
        base = f"{baseline:.2f}x" if baseline is not None else "  -  "
        print(f"  {label:<{width}}  measured {speedup:.2f}x  baseline {base}  {status}")
    if new_cases:
        print(
            "note: cases without a baseline (run --update to adopt): "
            + ", ".join(new_cases)
        )
    if missing:
        print("note: baseline cases not measured this run: " + ", ".join(missing))
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("ok: no ratio regressed beyond tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baselines from the measured ratios",
    )
    args = parser.parse_args()
    exit_code = 0
    ran_any = False
    for suite, measured_path, baseline_path in SUITES:
        if not measured_path.exists():
            print(
                f"note: [{suite}] skipped — "
                f"{measured_path.relative_to(BENCH_DIR.parent)} not measured"
            )
            continue
        measured = _load(measured_path).get("cases", {})
        if not measured:
            sys.exit(f"error: {measured_path} contains no cases")
        baseline_doc = _load(baseline_path)
        ran_any = True
        if args.update:
            update_baseline(measured, baseline_doc, baseline_path)
        else:
            exit_code |= check(suite, measured, baseline_doc)
    if not ran_any:
        sys.exit("error: no measured bench output found — run the benches first")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
