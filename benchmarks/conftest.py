"""Benchmark-suite fixtures.

Every paper artefact (figure/table) has one bench that regenerates it at
the QUICK preset and saves the text rendering under
``benchmarks/outputs/`` — those files are the source of EXPERIMENTS.md.
Trained models are cached on disk (``.cache/repro-experiments``), so the
first invocation trains the scaled zoo and later runs are much faster.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUTS = Path(__file__).parent / "outputs"


@pytest.fixture(scope="session")
def save_output():
    """Persist an experiment's text rendering for EXPERIMENTS.md."""

    def _save(artefact_id: str, text: str) -> None:
        OUTPUTS.mkdir(exist_ok=True)
        path = OUTPUTS / f"{artefact_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _save


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer.

    The default pytest-benchmark calibration would re-run multi-minute
    experiments dozens of times; pedantic mode pins it to a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
