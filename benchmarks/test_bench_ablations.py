"""Design-choice ablation benches (DESIGN.md §5: ABL-G/K/Z/B)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import (
    QUICK,
    run_bit_position_ablation,
    run_granularity_ablation,
    run_slope_ablation,
    run_zeta_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_granularity(benchmark, save_output):
    """ABL-G: finer bounds cost more words; neuron-wise leads at the top
    rate (the paper's core design argument)."""
    result = run_once(
        benchmark, lambda: run_granularity_ablation(preset=QUICK, rate_index=4)
    )
    save_output("ablation_granularity", result.to_text())
    data = result.data
    assert data["neuron"]["words"] > data["channel"]["words"] > data["layer"]["words"]
    assert data["neuron"]["faulty"] >= data["layer"]["faulty"] - 0.05


@pytest.mark.benchmark(group="ablations")
def test_slope(benchmark, save_output):
    """ABL-K: small absolute k distorts clean accuracy; relative-k is
    robust across the sweep."""
    result = run_once(
        benchmark,
        lambda: run_slope_ablation(
            preset=QUICK, slopes=(5.0, 40.0, 100.0)
        ),
    )
    save_output("ablation_slope", result.to_text())
    # A too-shallow slope (k=5: the descent band spans ~80% of each
    # bound) distorts clean accuracy; the default k=40 must beat it.
    data = result.data
    assert data["relative:40"]["clean"] >= data["relative:5"]["clean"]
    # The default configuration stays usable.
    assert data["relative:40"]["clean"] > 0.5


@pytest.mark.benchmark(group="ablations")
def test_zeta(benchmark, save_output):
    """ABL-Z: the Eq. 10 ζ trade — aggressive shrink buys no resilience on
    the scaled substrate (recorded as a reproduction finding)."""
    result = run_once(
        benchmark, lambda: run_zeta_ablation(preset=QUICK, zetas=(0.0, 0.05, 1.0))
    )
    save_output("ablation_zeta", result.to_text())
    # The δ constraint keeps every configuration's clean accuracy usable.
    for entry in result.data.values():
        assert entry["clean"] > 0.5


@pytest.mark.benchmark(group="ablations")
def test_bit_position(benchmark, save_output):
    """ABL-B: fraction-bit flips are harmless; high integer bits are
    catastrophic unprotected and largely recovered by FitAct."""
    result = run_once(
        benchmark,
        lambda: run_bit_position_ablation(preset=QUICK, bits=(0, 8, 16, 24, 30, 31)),
    )
    save_output("ablation_bits", result.to_text())
    none_low = result.data["0"]["none"]
    none_high = result.data["30"]["none"]
    fitact_high = result.data["30"]["fitact"]
    assert none_low > 0.4  # LSB flips harmless (≈ the clean accuracy)
    assert none_high < none_low - 0.2  # high bits catastrophic unprotected
    assert fitact_high > none_high + 0.1  # FitAct recovers most of it
