"""Replica-batched campaign throughput vs the per-trial path (CR bench).

The PR 8 acceptance: scheduling trials in replica groups — R lanes
sharing one compiled clean-prefix forward, each lane re-running only
the plan suffix downstream of its faulted layer — must lift campaign
trial throughput by >= 3x on resnet18 on a single core, while leaving
the accuracy/SDC stream bit-identical (asserted here before the clock
matters, same discipline as the RT bench).

Artifacts: ``benchmarks/outputs/campaign_replicas.txt`` (human table)
and ``benchmarks/outputs/campaign_replicas.json`` (machine-readable;
the CI ``bench-regression`` job compares it against
``benchmarks/baselines/campaign_replicas.json``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator
from repro.eval.reporting import format_table
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.fault.parallel import available_workers
from repro.models.registry import build_model
from repro.quant import quantize_module

TRIALS = 32
REPLICAS = 8
SPEC = BitFlipFaultModel.exact(1)
FLOOR = 3.0  # the acceptance bar: replica-batched >= 3x per-trial


def _campaign(replicas):
    model = quantize_module(
        build_model("resnet18", num_classes=10, scale=0.25, image_size=32, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=256, image_size=32, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=128, transform=Normalize(SYNTH_MEAN, SYNTH_STD)),
        runtime=True,
    )
    return FaultCampaign(
        FaultInjector(model),
        evaluator.bind(model),
        trials=TRIALS,
        seed=0,
        replicas=replicas,
    )


def _timed(replicas):
    campaign = _campaign(replicas)
    start = time.perf_counter()
    result = campaign.run(SPEC)
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="campaign")
def test_campaign_replica_throughput(benchmark, save_output):
    """CR: replica groups beat per-trial evaluation >= 3x, same bytes."""
    measured: dict[str, dict[str, float]] = {}
    rows = []

    def run_case():
        serial_s, serial = _timed("off")
        batched_s, batched = _timed(REPLICAS)
        # The speed claim is only meaningful because the stream is
        # bit-identical — assert that before the clock matters.
        assert serial.accuracies.tobytes() == batched.accuracies.tobytes()
        assert serial.flip_counts.tobytes() == batched.flip_counts.tobytes()
        speedup = serial_s / max(batched_s, 1e-12)
        measured[f"resnet18-replicas{REPLICAS}"] = {
            "speedup": round(speedup, 4),
            "serial_s": round(serial_s, 3),
            "batched_s": round(batched_s, 3),
            "trials": TRIALS,
            "replicas": REPLICAS,
        }
        rows.append(
            [
                f"resnet18 x{REPLICAS}",
                str(TRIALS),
                f"{serial_s / TRIALS * 1e3:.1f}",
                f"{batched_s / TRIALS * 1e3:.1f}",
                f"{speedup:.2f}x",
            ]
        )
        return measured

    benchmark.pedantic(run_case, rounds=1, iterations=1)

    cores = available_workers()
    text = "\n".join(
        [
            f"CR  Replica-batched campaign vs per-trial evaluation "
            f"({cores} usable core{'s' if cores != 1 else ''}; "
            "accuracy/SDC stream bit-identical)",
            format_table(
                ["campaign", "trials", "per-trial ms", "batched ms", "speedup"],
                rows,
            ),
            "speedup source: one shared clean-prefix forward per batch "
            "amortised over all lanes; each lane re-runs only the plan "
            "suffix downstream of its faulted layer (serial GEMM shapes "
            "throughout — see RPL010)",
        ]
    )
    save_output("campaign_replicas", text)
    outputs = Path(__file__).parent / "outputs"
    outputs.mkdir(exist_ok=True)
    (outputs / "campaign_replicas.json").write_text(
        json.dumps({"cores": cores, "cases": measured}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )

    for label, result in measured.items():
        assert result["speedup"] >= FLOOR, (
            f"{label}: replica batching delivers only {result['speedup']:.2f}x "
            f"(acceptance floor {FLOOR}x)"
        )
