"""Journaling overhead of store-backed campaigns vs in-memory ones.

The store's design target: journaling every trial (JSON line + flush)
must cost < 5% wall-clock next to real per-trial evaluation, so durable
campaigns are the default choice, not a trade-off.  The bench runs the
same sweep (2 rates x 10 trials, LeNet on a real evaluator) in memory
and through a store, asserts the results are bit-identical, and records
the measured overhead in ``benchmarks/outputs/campaign_store.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator
from repro.eval.reporting import format_table
from repro.fault import FaultCampaign, FaultInjector
from repro.models.registry import build_model
from repro.quant import quantize_module
from repro.store import CampaignStore

RATES = (1e-5, 1e-4)
TRIALS = 10
MAX_OVERHEAD = 0.05


def _campaign() -> FaultCampaign:
    model = quantize_module(
        build_model("lenet", num_classes=10, scale=1.0, image_size=16, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=1024, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=256, transform=Normalize(SYNTH_MEAN, SYNTH_STD))
    )
    return FaultCampaign(
        FaultInjector(model), evaluator.bind(model), trials=TRIALS, seed=0
    )


@pytest.mark.benchmark(group="store")
def test_store_journaling_overhead(benchmark, save_output, tmp_path):
    """STORE: journaling every trial costs < 5% next to real evaluation."""
    memory_start = time.perf_counter()
    in_memory = _campaign().run_sweep(RATES, tag="bench")
    memory_seconds = time.perf_counter() - memory_start

    def stored_sweep():
        campaign = _campaign()
        store = CampaignStore.for_campaign(
            tmp_path / "bench-store", campaign, meta={"clean_accuracy": 1.0}
        )
        with store:
            return campaign.run_sweep(RATES, tag="bench", store=store)

    stored_start = time.perf_counter()
    stored = benchmark.pedantic(stored_sweep, rounds=1, iterations=1)
    stored_seconds = time.perf_counter() - stored_start

    # Durability must not change results: same floats, same flips.
    for rate in RATES:
        np.testing.assert_array_equal(
            in_memory[rate].accuracies, stored[rate].accuracies
        )
        np.testing.assert_array_equal(
            in_memory[rate].flip_counts, stored[rate].flip_counts
        )

    overhead = stored_seconds / max(memory_seconds, 1e-9) - 1.0
    journaled = len(RATES) * TRIALS
    rows = [
        ["in-memory", f"{memory_seconds:.2f}", "-"],
        ["store-backed", f"{stored_seconds:.2f}", str(journaled)],
    ]
    text = "\n".join(
        [
            f"STORE  Campaign store journaling — {len(RATES)} rates x "
            f"{TRIALS} trials, LeNet/synth10",
            format_table(["backend", "seconds", "trials journaled"], rows),
            f"journaling overhead: {overhead:+.1%} of wall-clock "
            f"(target < {MAX_OVERHEAD:.0%}; results bit-identical)",
        ]
    )
    save_output("campaign_store", text)

    assert overhead < MAX_OVERHEAD, (
        f"store journaling cost {overhead:.1%} wall-clock overhead "
        f"(target < {MAX_OVERHEAD:.0%})"
    )
