"""Beyond-paper extension benches (DESIGN.md §5: EXT-A/E/F, ABL-W).

Each bench varies one axis the paper holds fixed — fault location
(activations), memory protection (SEC-DED ECC), fault spatial structure
(bursts, stuck-at), and word format — with the rest of the Fig. 5/6
setup unchanged.  Outputs land in ``benchmarks/outputs/`` and are the
source of the EXPERIMENTS.md extension section.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import (
    QUICK,
    prepare_context,
    run_activation_fault_comparison,
    run_ecc_comparison,
    run_fault_model_comparison,
    run_format_ablation,
    run_hard_deploy_ablation,
    run_layer_vulnerability,
    run_mobilenet_panel,
)


@pytest.fixture(scope="module")
def context():
    """One trained VGG16/synth10 base shared by every extension bench
    (and with the figure benches, via the on-disk state cache)."""
    return prepare_context("vgg16", "synth10", QUICK)


@pytest.mark.benchmark(group="extensions")
def test_ext_activation_faults(benchmark, save_output, context):
    """EXT-A: under transient activation faults every bounding scheme
    must beat unprotected at high upset counts; bounds still work when
    the corruption strikes feature maps."""
    result = run_once(
        benchmark,
        lambda: run_activation_fault_comparison(preset=QUICK, context=context),
    )
    save_output("ext_activation", result.to_text())
    data = result.data
    # At the heaviest upset count, bounded schemes beat unprotected.
    heavy = "n=64"
    assert data["fitact"][heavy] >= data["none"][heavy] - 0.05
    assert data["clipact"][heavy] >= data["none"][heavy] - 0.05


@pytest.mark.benchmark(group="extensions")
def test_ext_ecc_composition(benchmark, save_output, context):
    """EXT-E: ECC corrects sparse flips at ~22% memory; at dense rates
    multi-bit words escape and activation bounds take over."""
    result = run_once(
        benchmark, lambda: run_ecc_comparison(preset=QUICK, context=context)
    )
    save_output("ext_ecc", result.to_text())
    data = result.data
    rates = [k for k in data["none"] if k not in ("clean", "memory_mb")]
    low_rate = sorted(rates)[0]
    # ECC alone restores the unprotected model at the lower tested rate.
    assert data["none+ecc"][low_rate] >= data["none"][low_rate] - 0.02
    # Memory: ECC costs ~22% on every scheme.
    assert data["none+ecc"]["memory_mb"] > data["none"]["memory_mb"] * 1.2


@pytest.mark.benchmark(group="extensions")
def test_ext_fault_models(benchmark, save_output, context):
    """EXT-F: at a matched flip budget, FitAct's protection generalises
    from the paper's iid flips to bursts and stuck-at cells."""
    result = run_once(
        benchmark, lambda: run_fault_model_comparison(preset=QUICK, context=context)
    )
    save_output("ext_faultmodels", result.to_text())
    data = result.data
    for label, row in data.items():
        assert row["fitact"] >= row["none"] - 0.05, label
    # Stuck-at masking: effective flips below the iid budget.
    assert data["stuck-at-0"]["mean_flips"] < data["iid flips"]["mean_flips"]


@pytest.mark.benchmark(group="extensions")
def test_ext_mobilenet_panel(benchmark, save_output):
    """EXT-M: the paper's comparison on the architecture its motivation
    actually targets.  Channel-wise FitAct restores the ordering;
    neuron-wise initialisation over-fits depthwise feature maps (the
    recorded negative finding)."""
    result = run_once(benchmark, lambda: run_mobilenet_panel(preset=QUICK))
    save_output("ext_mobilenet", result.to_text())
    data = result.data
    rates = sorted((k for k in data if k != "clean"), key=float)
    mid, top = rates[2], rates[-1]
    # Channel-wise bounds recover most of the neuron-wise clean-accuracy
    # loss and win decisively under fault.
    assert data["clean"]["fitact-ch"] >= data["clean"]["fitact"] + 0.05
    assert data[mid]["fitact-ch"] >= data[mid]["none"] + 0.1
    assert data[top]["fitact-ch"] >= data[top]["none"] + 0.1
    assert data[top]["fitact-ch"] >= data[top]["ranger"] - 0.05
    # Neuron-wise still beats unprotected where faults bite hard — but
    # its clean-accuracy tax on depthwise maps is the recorded finding.
    assert data[top]["fitact"] >= data[top]["none"] + 0.1
    for row in data.values():
        for value in row.values():
            assert 0.0 <= value <= 1.0


@pytest.mark.benchmark(group="extensions")
def test_ext_layer_vulnerability(benchmark, save_output, context):
    """EXT-L: equal flip budgets confined per layer — early conv groups
    are the most vulnerable unprotected, and FitAct closes the gap."""
    result = run_once(
        benchmark, lambda: run_layer_vulnerability(preset=QUICK, context=context)
    )
    save_output("ext_layers", result.to_text())
    data = result.data
    for row in data.values():
        assert row["fitact"] >= row["none"] - 0.05
    # Some group must be meaningfully vulnerable unprotected (else the
    # experiment is vacuous at this budget).
    assert min(row["none"] for row in data.values()) < 0.5


@pytest.mark.benchmark(group="extensions")
def test_ablation_hard_deploy(benchmark, save_output, context):
    """ABL-H: the tuned bounds deploy as the hard piecewise form with
    matching accuracy; the recorded timings quantify the gate cost."""
    result = run_once(
        benchmark, lambda: run_hard_deploy_ablation(preset=QUICK, context=context)
    )
    save_output("ablation_harddeploy", result.to_text())
    smooth = result.data["smooth (FitReLU)"]
    hard = result.data["hard (FitReLU-Naive)"]
    assert abs(smooth["clean"] - hard["clean"]) < 0.1
    # Timing on a shared 2-core host is too noisy for a strict ordering
    # assertion between two ~25 ms medians (observed both ways across
    # runs); assert only that neither deployment form is pathologically
    # slower than the plain-ReLU reference, and let the saved artefact
    # record the measured ratios.
    plain_seconds = result.data["plain"]["seconds"]
    assert smooth["seconds"] < plain_seconds * 3
    assert hard["seconds"] < plain_seconds * 3


@pytest.mark.benchmark(group="extensions")
def test_ablation_word_format(benchmark, save_output, context):
    """ABL-W: narrower words expose fewer, lower-magnitude bits; Q15.16
    pays for its range with fault vulnerability that FitAct recovers."""
    result = run_once(
        benchmark, lambda: run_format_ablation(preset=QUICK, context=context)
    )
    save_output("ablation_format", result.to_text())
    data = result.data
    # Expected flips scale linearly with word width.
    assert data["q15.16:none"]["expected_flips"] > data["q7.8:none"][
        "expected_flips"
    ] > data["q3.4:none"]["expected_flips"]
    # FitAct recovers accuracy on the paper's format.
    assert data["q15.16:fitact"]["faulty"] >= data["q15.16:none"]["faulty"] - 0.05
