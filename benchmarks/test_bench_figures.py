"""Benches regenerating the paper's figures (DESIGN.md §5 index).

Run with ``pytest benchmarks/ --benchmark-only``.  Each bench executes
the experiment once at the QUICK preset, saves the text artefact, and
asserts the paper's qualitative *shape* (who wins, where the knees are).
Assertions are tolerant: QUICK uses few trials by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import (
    QUICK,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
)


@pytest.mark.benchmark(group="figures")
def test_fig1_bound_sweep(benchmark, save_output):
    """FIG1: resilience rises as the global bound shrinks, then clean
    accuracy collapses below the knee."""
    result = run_once(benchmark, lambda: run_fig1(preset=QUICK))
    save_output("fig1", result.to_text())
    accuracy = np.asarray(result.fault_accuracy)
    clean = np.asarray(result.clean_accuracy)
    # The best bound beats the loosest bound (bounding helps under fault).
    assert accuracy.max() >= accuracy[-1]
    # Over-tight bounds hurt fault-free accuracy: the smallest swept bound
    # must cost clean accuracy relative to the loosest.
    assert clean[0] <= clean[-1] + 1e-9


@pytest.mark.benchmark(group="figures")
def test_fig2_activation_distribution(benchmark, save_output):
    """FIG2: per-neuron activation maxima vary wildly (max >> median)."""
    result = run_once(benchmark, lambda: run_fig2(preset=QUICK))
    save_output("fig2", result.to_text())
    assert result.maxima.size > 100
    assert result.dispersion_ratio > 1.5


@pytest.mark.benchmark(group="figures")
def test_fig3_activation_shapes(benchmark, save_output):
    """FIG3: bounded activations squash the tail; FitReLU is the smooth
    variant of FitReLU-Naive."""
    result = run_once(benchmark, run_fig3)
    save_output("fig3", result.to_text())
    assert result.tail_value("ReLU") == pytest.approx(result.grid[-1])
    assert result.tail_value("GBReLU") == 0.0
    assert result.tail_value("FitReLU-Naive") == 0.0
    assert result.tail_value("FitReLU") < 0.01
    # Smooth and hard variants agree below the bound.
    below = result.grid < result.bound * 0.8
    np.testing.assert_allclose(
        result.curves["FitReLU"][below],
        result.curves["FitReLU-Naive"][below],
        atol=0.05,
    )


@pytest.mark.benchmark(group="campaigns")
def test_fig5_accuracy_distribution(benchmark, save_output):
    """FIG5: distribution boxes — FitAct stays high where Unprotected and
    Ranger have collapsed."""
    result = run_once(benchmark, lambda: run_fig5(preset=QUICK))
    save_output("fig5", result.to_text())
    sweep = result.sweep
    top_rate = sweep.rates[-1]
    mid_rate = sweep.rates[2]
    # Ordering at the highest rate: FitAct is best (paper's headline).
    fitact_top = sweep.sweeps["fitact"][top_rate].mean
    assert fitact_top >= sweep.sweeps["ranger"][top_rate].mean - 0.02
    assert fitact_top >= sweep.sweeps["none"][top_rate].mean
    # At the mid rate every protection beats unprotected.
    for method in ("fitact", "clipact", "ranger"):
        assert (
            sweep.sweeps[method][mid_rate].mean
            > sweep.sweeps["none"][mid_rate].mean
        ), method


@pytest.mark.benchmark(group="campaigns")
def test_fig6_average_accuracy(benchmark, save_output):
    """FIG6: the full model × dataset grid; protections beat unprotected
    everywhere, FitAct leads at the top rates on average."""
    result = run_once(benchmark, lambda: run_fig6(preset=QUICK))
    save_output("fig6", result.to_text())
    top_margin = []
    for (model_name, dataset_name), sweep in result.panels.items():
        mid_rate = sweep.rates[2]
        for method in ("fitact", "clipact"):
            assert (
                sweep.sweeps[method][mid_rate].mean
                >= sweep.sweeps["none"][mid_rate].mean - 0.02
            ), (model_name, dataset_name, method)
        top_rate = sweep.rates[-1]
        top_margin.append(
            sweep.sweeps["fitact"][top_rate].mean
            - sweep.sweeps["clipact"][top_rate].mean
        )
    # Averaged over all six panels, FitAct at the top rate roughly
    # matches Clip-Act.  At QUICK width-scales FitAct's λ words inflate
    # its own fault space by up to ~3× (ResNet50: 185k bound words vs
    # 96k weights — the paper's models sit near 8%), so it faces
    # proportionally more flips at equal rates; see EXPERIMENTS.md.
    assert float(np.mean(top_margin)) > -0.15
