"""Micro-benchmarks of the substrate's hot paths.

These use pytest-benchmark's normal calibration (they are fast and
side-effect free) and guard against performance regressions in the
kernels that dominate campaign wall-clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, no_grad
from repro.core import FitReLU
from repro.fault import BitFlipFaultModel, FaultInjector
from repro.models import build_model
from repro.nn import ReLU
from repro.quant import decode, encode, quantize_module

RNG = np.random.default_rng(0)


@pytest.mark.benchmark(group="micro")
def test_conv2d_forward(benchmark):
    x = Tensor(RNG.standard_normal((32, 16, 16, 16)).astype(np.float32))
    w = Tensor(RNG.standard_normal((32, 16, 3, 3)).astype(np.float32))

    def run():
        with no_grad():
            return conv2d(x, w, padding=1)

    out = benchmark(run)
    assert out.shape == (32, 32, 16, 16)


@pytest.mark.benchmark(group="micro")
def test_relu_throughput(benchmark):
    x = Tensor(RNG.standard_normal((64, 32, 16, 16)).astype(np.float32))
    act = ReLU()

    def run():
        with no_grad():
            return act(x)

    benchmark(run)


@pytest.mark.benchmark(group="micro")
def test_fitrelu_throughput(benchmark):
    """The Table I runtime overhead in isolation: FitReLU vs ReLU."""
    x = Tensor(RNG.standard_normal((64, 32, 16, 16)).astype(np.float32))
    bounds = np.abs(RNG.standard_normal((32, 16, 16))).astype(np.float32) + 0.5
    act = FitReLU(bounds)

    def run():
        with no_grad():
            return act(x)

    benchmark(run)


@pytest.mark.benchmark(group="micro")
def test_q15_16_roundtrip(benchmark):
    values = RNG.standard_normal(1_000_000).astype(np.float32)
    result = benchmark(lambda: decode(encode(values)))
    assert result.shape == values.shape


@pytest.mark.benchmark(group="micro")
def test_fault_injection_cycle(benchmark):
    """One full sample → inject → restore cycle on a real model."""
    model = quantize_module(build_model("lenet", scale=1.0, image_size=16, seed=0))
    injector = FaultInjector(model)
    spec = BitFlipFaultModel.exact(64)
    seeds = iter(range(10_000_000))

    def run():
        sites = injector.sample(spec, rng=next(seeds))
        with injector.inject(sites) as count:
            return count

    assert benchmark(run) == 64


@pytest.mark.benchmark(group="micro")
def test_model_forward_vgg16(benchmark):
    model = build_model("vgg16", scale=0.0625, seed=0)
    model.eval()
    x = Tensor(RNG.standard_normal((16, 3, 32, 32)).astype(np.float32))

    def run():
        with no_grad():
            return model(x)

    out = benchmark(run)
    assert out.shape == (16, 10)
