"""Disabled-instrumentation overhead bound (the obs side-band tax).

PR 7 put span/profiler hooks on the runtime, campaign, and serving hot
paths.  Disabled (the default), each instrumented section costs one
function call, one truth test, and a no-op context enter/exit.  This
bench measures that cost directly — a tight loop over a disabled
``span()`` — and bounds the *per-forward* tax: the measured per-section
cost times a deliberate overcount of instrumented sections per plan
forward must stay under the committed fraction
(``benchmarks/baselines/obs_overhead.json``, 2%) of the measured
forward time.

The ratio is machine-independent (both sides run in-process on the
same core), so the bound holds on heterogeneous CI runners.  The CI
``obs-smoke`` job runs this bench; ``benchmarks/outputs/
obs_overhead.json`` records the measured numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.models.registry import build_model
from repro.obs import reset_tracing, span, tracing_enabled
from repro.runtime import compile_model
from repro.utils.timing import time_callable

from benchmarks.conftest import run_once

BASELINE = Path(__file__).parent / "baselines" / "obs_overhead.json"
OUTPUT = Path(__file__).parent / "outputs" / "obs_overhead.json"

#: Disabled spans timed per measurement round.
SPAN_LOOP = 50_000


def _span_loop() -> None:
    for _ in range(SPAN_LOOP):
        with span("bench.noop", key=1):
            pass


def test_disabled_overhead_fraction(benchmark, save_output):
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    bound = float(baseline["max_overhead_fraction"])

    reset_tracing()
    assert not tracing_enabled()

    model = build_model(
        "lenet", num_classes=10, scale=1.0, image_size=16, seed=0
    )
    plan = compile_model(model, (32, 3, 16, 16))
    batch = np.zeros((32, 3, 16, 16), dtype=np.float32)

    def measure() -> dict[str, float]:
        span_stats = time_callable(_span_loop, repeats=5, warmup=1)
        forward_stats = time_callable(lambda: plan(batch), repeats=9, warmup=2)
        return {
            "per_span_seconds": span_stats["min"] / SPAN_LOOP,
            "forward_seconds": forward_stats["min"],
        }

    measured = run_once(benchmark, measure)
    # Deliberate overcount of instrumented sections on one forward:
    # the runtime.forward span plus, per kernel step, the prof guard in
    # the step loop and up to three phase guards inside the kernel —
    # each bounded above by a full disabled-span enter/exit (the guards
    # are cheaper: one attribute load and an `is not None` test).
    sections = 1 + 4 * len(plan.steps)
    overhead = measured["per_span_seconds"] * sections / measured["forward_seconds"]

    payload = {
        "per_span_seconds": measured["per_span_seconds"],
        "forward_seconds": measured["forward_seconds"],
        "sections_per_forward": sections,
        "overhead_fraction": overhead,
        "max_overhead_fraction": bound,
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    save_output(
        "obs_overhead",
        "\n".join(
            [
                "Disabled-instrumentation overhead (lenet, batch 32):",
                f"  per disabled span : {measured['per_span_seconds'] * 1e9:.0f} ns",
                f"  plan forward      : {measured['forward_seconds'] * 1e3:.3f} ms",
                f"  sections/forward  : {sections} (deliberate overcount)",
                f"  overhead fraction : {overhead:.5f} (bound {bound:.2f})",
            ]
        ),
    )
    assert overhead < bound, (
        f"disabled obs instrumentation costs {overhead:.2%} of a plan "
        f"forward (bound {bound:.0%}); see {OUTPUT}"
    )
