"""Serial vs parallel campaign wall-clock on a Fig. 5-sized sweep.

The tentpole's speedup proof: the same campaign (5 fault rates × K
trials on a real model) run through the serial executor and through a
4-worker process pool, asserting bit-identical results and recording
the measured wall-clock ratio in ``benchmarks/outputs/``.

The speedup assertion is gated on the host actually having >= 4 usable
cores — on a throttled CI box the bench still verifies determinism and
records the (honest) measurement.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator
from repro.eval.reporting import format_table
from repro.fault import FaultCampaign, FaultInjector, available_workers
from repro.models.registry import build_model
from repro.quant import quantize_module

RATES = (1e-6, 3e-6, 1e-5, 3e-5, 1e-4)
TRIALS = 8
WORKERS = 4


def _campaign(workers: int) -> FaultCampaign:
    model = quantize_module(
        build_model("lenet", num_classes=10, scale=1.0, image_size=16, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=1024, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=256, transform=Normalize(SYNTH_MEAN, SYNTH_STD))
    )
    return FaultCampaign(
        FaultInjector(model),
        evaluator.bind(model),
        trials=TRIALS,
        seed=0,
        workers=workers,
    )


@pytest.mark.benchmark(group="parallel")
def test_parallel_campaign_speedup(benchmark, save_output):
    """PAR: a 4-worker pool halves (or better) Fig. 5 sweep wall-clock."""
    serial_start = time.perf_counter()
    serial = _campaign(workers=0).run_sweep(RATES, tag="bench")
    serial_seconds = time.perf_counter() - serial_start

    def parallel_sweep():
        with _campaign(workers=WORKERS) as campaign:
            return campaign.run_sweep(RATES, tag="bench")

    parallel_start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_sweep, rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - parallel_start

    # The engine's core contract: parallel == serial, bit for bit.
    for rate in RATES:
        np.testing.assert_array_equal(
            serial[rate].accuracies, parallel[rate].accuracies
        )
        np.testing.assert_array_equal(
            serial[rate].flip_counts, parallel[rate].flip_counts
        )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    cores = available_workers()
    rows = [
        ["serial", "0", f"{serial_seconds:.2f}"],
        [f"process pool ({WORKERS} workers)", str(WORKERS), f"{parallel_seconds:.2f}"],
    ]
    text = "\n".join(
        [
            f"PAR  Parallel campaign engine — {len(RATES)} rates x {TRIALS} "
            f"trials, LeNet/synth10 ({cores} usable cores)",
            format_table(["backend", "workers", "seconds"], rows),
            f"speedup: {speedup:.2f}x (results bit-identical across backends)",
        ]
    )
    save_output("parallel_campaign", text)

    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {WORKERS} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
