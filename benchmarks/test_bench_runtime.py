"""Compiled inference runtime vs the module forward (RT bench).

The tentpole's speedup proof: identical eval batches pushed through the
autograd module path and through ``repro.runtime``'s compiled plan, per
model, asserting bit-identical logits and recording the wall-clock
ratio in ``benchmarks/outputs/runtime_speedup.txt``.

The container frequently has a single usable core, so no parallelism
multiplier is assumed: the runtime's win comes from removing autograd
object churn, python dispatch, and per-pass allocation — which holds on
one core — and the bench asserts the honest bound (>= 1x) while
recording the measured ratio and the core count in the artifact.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.core.fitrelu import FitReLU
from repro.core.surgery import find_activation_sites
from repro.eval.reporting import format_table
from repro.fault.parallel import available_workers
from repro.models.registry import build_model
from repro.runtime import compile_model

#: (label, registry name, scale, image size, batch, protect-with-FitReLU)
CASES = (
    ("lenet", "lenet", 1.0, 16, 128, False),
    ("lenet+fitact", "lenet", 1.0, 16, 128, True),
    ("resnet50", "resnet50", 0.125, 16, 32, False),
)
ROUNDS = 9


def _build(name: str, scale: float, size: int, protect: bool):
    model = build_model(name, num_classes=10, scale=scale, image_size=size, seed=0)
    if protect:
        for path in find_activation_sites(model):
            model.set_submodule(path, FitReLU(np.float32(1.5)))
    model.eval()
    return model


def _paired_medians(model, plan, x):
    """Interleaved timing rounds (median), so drift hits both paths alike."""
    module_times, plan_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with no_grad():
            model(Tensor(x))
        module_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        plan(x)
        plan_times.append(time.perf_counter() - start)
    return float(np.median(module_times)), float(np.median(plan_times))


@pytest.mark.benchmark(group="runtime")
def test_runtime_speedup(benchmark, save_output):
    """RT: the compiled plan beats the module forward on eval batches."""
    rng = np.random.default_rng(0)
    rows = []
    measured: dict[str, float] = {}

    def run_cases():
        for label, name, scale, size, batch, protect in CASES:
            model = _build(name, scale, size, protect)
            x = rng.standard_normal((batch, 3, size, size)).astype(np.float32)
            with no_grad():
                reference = model(Tensor(x)).data
            plan = compile_model(model, x.shape)
            # The speed claim is only meaningful because results are
            # bit-identical — assert that first.
            np.testing.assert_array_equal(plan(x), reference)
            module_s, plan_s = _paired_medians(model, plan, x)
            speedup = module_s / max(plan_s, 1e-12)
            measured[label] = speedup
            rows.append(
                [
                    label,
                    str(batch),
                    f"{module_s * 1e3:.2f}",
                    f"{plan_s * 1e3:.2f}",
                    f"{speedup:.2f}x",
                ]
            )
        return measured

    benchmark.pedantic(run_cases, rounds=1, iterations=1)

    cores = available_workers()
    text = "\n".join(
        [
            f"RT  Compiled inference runtime vs module forward "
            f"({cores} usable core{'s' if cores != 1 else ''}; logits bit-identical)",
            format_table(
                ["model", "batch", "module ms", "runtime ms", "speedup"], rows
            ),
            "speedup source: no autograd Tensor/Function churn, fused "
            "conv/linear+BN+activation epilogues, reused buffers",
        ]
    )
    save_output("runtime_speedup", text)

    # Honest single-core bound: the compiled path must not lose.  A
    # multiplier is only asserted where python-overhead removal is the
    # dominant term (LeNet); the GEMM-bound deep models just must win.
    for label, speedup in measured.items():
        assert speedup >= 1.0, f"{label}: compiled plan slower ({speedup:.2f}x)"
    assert measured["lenet"] >= 1.2, (
        f"lenet speedup collapsed: {measured['lenet']:.2f}x"
    )
