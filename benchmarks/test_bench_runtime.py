"""Compiled inference runtime vs the module forward (RT bench).

The runtime's speedup proof: identical eval batches pushed through the
autograd module path and through ``repro.runtime``'s compiled plan, per
model, asserting bit-identical logits and recording the wall-clock
ratio in ``benchmarks/outputs/runtime_speedup.txt`` (human table) and
``benchmarks/outputs/runtime_speedup.json`` (machine-readable; the
CI ``bench-regression`` job compares it against
``benchmarks/baselines/runtime_ratios.json``).

The container frequently has a single usable core, so no parallelism
multiplier is assumed: the runtime's win comes from removing autograd
object churn, python dispatch, per-pass allocation, and — since the
tiered conv kernels — the cache-hostile position-major im2col gather
(blocked K-major staging), the needless gather for 1x1 convolutions
(direct tier), and the unfused fallback at activation-fault sites
(native fault-site kernels).  All of that holds on one core; the bench
asserts the deep-model bound the tiered kernels were built for
(resnet18 at batch 128 >= 1.15x) while recording measured ratios and
the core count in the artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.core.fitrelu import FitReLU
from repro.core.surgery import find_activation_sites
from repro.eval.reporting import format_table
from repro.fault.activation import ActivationFaultInjector
from repro.fault.parallel import available_workers
from repro.models.registry import build_model
from repro.runtime import compile_model

#: (label, registry name, scale, image size, batch, mode)
#: mode: "plain" | "fitact" (FitReLU surgery) | "sites" (FitReLU surgery
#: plus disarmed activation-fault wrappers at every activation site —
#: the protected-campaign deployment shape).
CASES = (
    ("lenet", "lenet", 1.0, 16, 128, "plain"),
    ("lenet+fitact", "lenet", 1.0, 16, 128, "fitact"),
    ("lenet+fitact+sites", "lenet", 1.0, 16, 128, "sites"),
    ("resnet18-b128", "resnet18", 0.125, 32, 128, "plain"),
    ("resnet50", "resnet50", 0.125, 16, 32, "plain"),
)
ROUNDS = 9

#: Per-case floors asserted outright (beyond the >= 1x honest bound).
#: lenet: python-overhead removal dominates; resnet18-b128: the deep
#: GEMM-bound configuration the tiered conv kernels target (the old
#: monolithic im2col managed only ~1.03x); sites: fault wrappers must
#: not surrender the fused speedup (they fell back to module forwards
#: before the native fault-site kernel).
FLOORS = {"lenet": 1.2, "lenet+fitact+sites": 1.2, "resnet18-b128": 1.15}


def _build(name: str, scale: float, size: int, mode: str):
    model = build_model(name, num_classes=10, scale=scale, image_size=size, seed=0)
    if mode in ("fitact", "sites"):
        for path in find_activation_sites(model):
            model.set_submodule(path, FitReLU(np.float32(1.5)))
    if mode == "sites":
        ActivationFaultInjector(model)  # disarmed wrappers at every site
    model.eval()
    return model


def _paired_medians(model, plan, x):
    """Interleaved timing rounds (median), so drift hits both paths alike."""
    module_times, plan_times = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        with no_grad():
            model(Tensor(x))
        module_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        plan(x)
        plan_times.append(time.perf_counter() - start)
    return float(np.median(module_times)), float(np.median(plan_times))


@pytest.mark.benchmark(group="runtime")
def test_runtime_speedup(benchmark, save_output):
    """RT: the compiled plan beats the module forward on eval batches."""
    rng = np.random.default_rng(0)
    rows = []
    measured: dict[str, dict[str, float]] = {}

    def run_cases():
        for label, name, scale, size, batch, mode in CASES:
            model = _build(name, scale, size, mode)
            x = rng.standard_normal((batch, 3, size, size)).astype(np.float32)
            with no_grad():
                reference = model(Tensor(x)).data
            plan = compile_model(model, x.shape)
            # The speed claim is only meaningful because results are
            # bit-identical — assert that first.
            np.testing.assert_array_equal(plan(x), reference)
            module_s, plan_s = _paired_medians(model, plan, x)
            speedup = module_s / max(plan_s, 1e-12)
            measured[label] = {
                "speedup": round(speedup, 4),
                "module_ms": round(module_s * 1e3, 3),
                "plan_ms": round(plan_s * 1e3, 3),
            }
            rows.append(
                [
                    label,
                    str(batch),
                    f"{module_s * 1e3:.2f}",
                    f"{plan_s * 1e3:.2f}",
                    f"{speedup:.2f}x",
                ]
            )
        return measured

    benchmark.pedantic(run_cases, rounds=1, iterations=1)

    cores = available_workers()
    text = "\n".join(
        [
            f"RT  Compiled inference runtime vs module forward "
            f"({cores} usable core{'s' if cores != 1 else ''}; logits bit-identical)",
            format_table(
                ["model", "batch", "module ms", "runtime ms", "speedup"], rows
            ),
            "speedup source: no autograd Tensor/Function churn, fused "
            "conv/linear+BN+activation epilogues, reused buffers, tiered "
            "conv kernels (blocked K-major im2col gather, direct 1x1), "
            "native activation-fault-site kernels",
        ]
    )
    save_output("runtime_speedup", text)
    payload = {
        "cores": cores,
        "cases": measured,
    }
    outputs = Path(__file__).parent / "outputs"
    outputs.mkdir(exist_ok=True)
    (outputs / "runtime_speedup.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # Honest single-core bound: the compiled path must not lose — plus
    # explicit floors where a tier was built to fix a known bound.
    for label, result in measured.items():
        speedup = result["speedup"]
        assert speedup >= 1.0, f"{label}: compiled plan slower ({speedup:.2f}x)"
        floor = FLOORS.get(label)
        if floor is not None:
            assert speedup >= floor, (
                f"{label}: speedup collapsed to {speedup:.2f}x (floor {floor}x)"
            )
