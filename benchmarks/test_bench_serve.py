"""Serving benchmarks: micro-batching throughput + chaos-mode resilience.

Two acceptance proofs for the serving tentpole:

1. **SRV-T** — micro-batched serving sustains >= 2x the sample
   throughput of request-at-a-time evaluation on the same model.  The
   comparison is apples-to-apples: both sides run the identical
   forward-pass closure; only the batch geometry differs.  Batch-1
   forwards are dominated by per-call overhead, which is exactly the
   waste the batcher exists to amortise, so this holds even on a 1-core
   container.
2. **SRV-C** — under the same chaos configuration (same BER, same seed,
   same serving name so both runs derive the same per-batch seed
   stream) and identical traffic, a FitAct-protected checkpoint reports
   fewer SDC events in ``/metrics`` than the unprotected baseline.
   The concrete flip sites still differ — FitAct adds bound parameters,
   so the two fault spaces are different sizes — which matches how the
   offline campaigns compare protection schemes; the assertion is the
   statistical gap over 40 batches, not a site-for-site replay.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import ProtectionConfig, protect_model, save_protected
from repro.core.training import Trainer, TrainingConfig
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import forward_logits
from repro.eval.reporting import format_table
from repro.models.registry import build_model
from repro.serve import (
    ChaosConfig,
    MicroBatcher,
    ModelRegistry,
    ServeApp,
    ServeConfig,
)

NUM_CLASSES = 10
IMAGE_SIZE = 16
MAX_BATCH = 64
REQUESTS = 512
CLIENT_THREADS = 8
CHAOS_BATCHES = 40
CHAOS_BER = 3e-5


def _trained_model():
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    loader = DataLoader(
        SyntheticImageDataset(
            num_classes=NUM_CLASSES, num_samples=512, image_size=IMAGE_SIZE, seed=7
        ),
        batch_size=64,
        shuffle=True,
        rng=0,
        transform=Normalize(SYNTH_MEAN, SYNTH_STD),
    )
    Trainer(model, TrainingConfig(epochs=8, lr=0.1)).fit(loader)
    return model, loader


def _sample_inputs(count: int) -> np.ndarray:
    dataset = SyntheticImageDataset(
        num_classes=NUM_CLASSES,
        num_samples=count,
        image_size=IMAGE_SIZE,
        seed=3,
        split="test",
    )
    loader = DataLoader(
        dataset, batch_size=count, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
    )
    inputs, _ = next(iter(loader))
    return inputs.data.astype(np.float32)


@pytest.mark.benchmark(group="serve")
def test_micro_batching_throughput(benchmark, save_output):
    """SRV-T: batched serving >= 2x per-request sample throughput."""
    model, _ = _trained_model()
    inputs = _sample_inputs(REQUESTS)
    run = lambda stacked: forward_logits(model, stacked)  # noqa: E731

    # Per-request baseline: one forward pass per sample, as `repro
    # evaluate` (or a naive server) would issue them.
    start = time.perf_counter()
    for i in range(REQUESTS):
        run(inputs[i : i + 1])
    per_request_seconds = time.perf_counter() - start

    # Micro-batched: the same samples pushed through the batcher from
    # concurrent client threads.
    def batched() -> float:
        sizes: list[int] = []
        with MicroBatcher(
            run,
            max_batch=MAX_BATCH,
            max_latency=0.002,
            on_batch=lambda size, _s: sizes.append(size),
        ) as batcher:
            start = time.perf_counter()
            futures: list = []
            futures_lock = threading.Lock()

            def client(offset: int) -> None:
                local = []
                for i in range(offset, REQUESTS, CLIENT_THREADS):
                    local.append(batcher.submit(inputs[i : i + 1]))
                with futures_lock:
                    futures.extend(local)

            threads = [
                threading.Thread(target=client, args=(offset,))
                for offset in range(CLIENT_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for future in futures:
                future.result(timeout=60)
            elapsed = time.perf_counter() - start
        assert sum(sizes) == REQUESTS
        assert max(sizes) > 1, "batcher never coalesced anything"
        return elapsed

    batched_seconds = benchmark.pedantic(batched, rounds=1, iterations=1)

    per_request_rate = REQUESTS / per_request_seconds
    batched_rate = REQUESTS / batched_seconds
    speedup = batched_rate / per_request_rate
    rows = [
        ["per-request (batch=1)", f"{per_request_seconds:.2f}", f"{per_request_rate:,.0f}"],
        [f"micro-batched (<= {MAX_BATCH})", f"{batched_seconds:.2f}", f"{batched_rate:,.0f}"],
    ]
    text = "\n".join(
        [
            f"SRV-T  Serving throughput — {REQUESTS} single-sample requests, "
            f"LeNet/synth10, {CLIENT_THREADS} client threads",
            format_table(["path", "seconds", "samples/s"], rows),
            f"micro-batching speedup: {speedup:.2f}x",
        ]
    )
    save_output("serve_throughput", text)
    assert speedup >= 2.0, (
        f"micro-batching should at least double throughput, got {speedup:.2f}x"
    )


@pytest.mark.benchmark(group="serve")
def test_chaos_protected_beats_unprotected(benchmark, save_output, tmp_path):
    """SRV-C: protected checkpoint shows fewer SDCs in /metrics."""
    model, train_loader = _trained_model()
    meta = {
        "model": "lenet",
        "dataset": "synth10",
        "method": "none",
        "num_classes": NUM_CLASSES,
        "scale": 1.0,
        "image_size": IMAGE_SIZE,
        "seed": 0,
        "format": "Q15.16",
    }
    paths = {}
    paths["unprotected"] = save_protected(tmp_path / "plain.npz", model, meta=meta)
    protect_model(model, train_loader, ProtectionConfig(method="fitact"))
    paths["protected"] = save_protected(
        tmp_path / "fitact.npz", model, meta={**meta, "method": "fitact"}
    )

    inputs = _sample_inputs(32)

    def serve_chaos(label: str) -> dict[str, object]:
        registry = ModelRegistry(capacity=1)
        # Same serving name for both runs, so the chaos engine derives
        # the same per-batch seed stream for each checkpoint.
        registry.register("model", paths[label])
        app = ServeApp(
            registry,
            ServeConfig(
                max_batch=32,
                max_latency_ms=0.0,
                chaos=ChaosConfig(ber=CHAOS_BER, seed=1),
            ),
        )
        try:
            for _ in range(CHAOS_BATCHES):
                app.predict(inputs, model="model")
        finally:
            app.close()
        return app.metrics.chaos_snapshot("model")

    def both() -> dict[str, dict[str, object]]:
        return {name: serve_chaos(name) for name in ("unprotected", "protected")}

    snapshots = benchmark.pedantic(both, rounds=1, iterations=1)
    unprotected = snapshots["unprotected"]
    protected = snapshots["protected"]

    rows = [
        [
            name,
            str(snap["batches"]),
            str(snap["flips"]),
            str(snap["sdc_events"]),
            f"{snap['sdc_rate']:.2%}",
        ]
        for name, snap in snapshots.items()
    ]
    text = "\n".join(
        [
            f"SRV-C  Chaos serving — BER {CHAOS_BER:g}, {CHAOS_BATCHES} batches "
            f"x {inputs.shape[0]} samples, same chaos seed stream and traffic "
            "(fault spaces differ: FitAct adds bound parameters)",
            format_table(
                ["checkpoint", "batches", "flips", "SDC events", "SDC rate"], rows
            ),
            "protected (FitAct) vs unprotected SDC events: "
            f"{protected['sdc_events']} vs {unprotected['sdc_events']}",
        ]
    )
    save_output("serve_chaos", text)
    assert protected["injected_batches"] > 0
    assert protected["sdc_events"] < unprotected["sdc_events"], (
        f"FitAct protection should reduce SDCs under identical chaos traffic "
        f"(protected {protected['sdc_events']}, unprotected "
        f"{unprotected['sdc_events']})"
    )
