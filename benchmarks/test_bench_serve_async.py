"""Async front + multi-process plan lanes: throughput and p99 (SRV-A).

Three servings of the identical model under identical client load, all
over real HTTP sockets:

1. **threaded** — the legacy blocking front (``ReproServer``), serving
   in-process.  This is the denominator for every ratio.
2. **async** — the asyncio front door (``AsyncReproServer``), still
   serving in-process.  Same router, same bytes; the selector loop must
   not cost throughput versus one-thread-per-connection.
3. **process** — the asyncio front fanning micro-batches to
   ``WORKERS`` worker processes, each holding its own compiled
   :class:`~repro.runtime.InferencePlan`.

The machine-readable ratios land in ``outputs/serve_async.json`` for
the CI ``bench-regression`` job (baseline:
``baselines/serve_async.json``); the human table in
``outputs/serve_async.txt``.  p99 latency comes from the server's own
``repro_serve_latency_ms`` histogram (bucket-interpolated), so the
bench gates exactly what ``/v1/metrics`` reports.

The >= 2x multi-process acceptance floor only holds when there are
cores for the lanes to use; on the 1-core container the process case
measures IPC overhead, which the committed baseline captures honestly
(``cores`` is recorded in the JSON).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.checkpoint import save_protected
from repro.eval.reporting import format_table
from repro.models.registry import build_model
from repro.runtime import RuntimeConfig
from repro.serve import (
    AsyncReproServer,
    ModelRegistry,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeConfig,
    run_load,
)

NUM_CLASSES = 10
IMAGE_SIZE = 16
SAMPLES_PER_REQUEST = 8
REQUESTS = 64
CLIENT_THREADS = 8
WORKERS = 2


def _checkpoint(tmp_path: Path) -> Path:
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    return save_protected(
        tmp_path / "serve-async.npz",
        model,
        meta={
            "model": "lenet",
            "dataset": "synth10",
            "method": "none",
            "num_classes": NUM_CLASSES,
            "scale": 1.0,
            "image_size": IMAGE_SIZE,
            "seed": 0,
            "format": "Q15.16",
        },
    )


def _serve_and_load(
    server_cls, checkpoint: Path, **config_overrides
) -> dict[str, float]:
    """Serve one configuration, drive the load, return rate + p99."""
    registry = ModelRegistry(capacity=1, config=RuntimeConfig(enabled=True))
    registry.register("m", checkpoint)
    config = ServeConfig(
        max_batch=64,
        max_latency_ms=2.0,
        max_pending=4096,  # measuring throughput, not admission sheds
        **config_overrides,
    )
    inputs = (
        np.random.default_rng(3)
        .standard_normal((SAMPLES_PER_REQUEST, 3, IMAGE_SIZE, IMAGE_SIZE))
        .astype(np.float32)
    )
    app = ServeApp(registry, config)
    with server_cls(app) as server:
        client = ServeClient(server.url, timeout=120.0)
        client.wait_ready()
        # Warm-up: model load + plan compile (per worker lane in process
        # mode) must not be billed to the timed window.
        client.predict(inputs, model="m")
        report = run_load(
            client,
            inputs,
            requests=REQUESTS,
            concurrency=CLIENT_THREADS,
            model="m",
        )
        assert report.errors == 0, "load errors poison the ratio"
        assert report.sheds == 0, "sheds mean the queue bound was hit"
        assert report.requests == REQUESTS
        p99_ms = app.metrics.latency_quantile(0.99, endpoint="/v1/predict")
    return {
        "seconds": report.seconds,
        "samples_per_s": report.samples_per_second,
        "p99_ms": p99_ms,
    }


@pytest.mark.benchmark(group="serve")
def test_async_front_and_process_lanes(benchmark, save_output, tmp_path):
    """SRV-A: async front holds throughput; process lanes scale it."""
    checkpoint = _checkpoint(tmp_path)

    def measure() -> dict[str, dict[str, float]]:
        return {
            "threaded": _serve_and_load(ReproServer, checkpoint),
            "async": _serve_and_load(AsyncReproServer, checkpoint),
            "process": _serve_and_load(
                AsyncReproServer,
                checkpoint,
                workers=WORKERS,
                mp_start="fork",
            ),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    threaded = results["threaded"]
    async_front = results["async"]
    process = results["process"]

    async_speedup = async_front["samples_per_s"] / threaded["samples_per_s"]
    process_speedup = process["samples_per_s"] / threaded["samples_per_s"]
    p99_speedup = threaded["p99_ms"] / process["p99_ms"]
    cores = os.cpu_count() or 1

    rows = [
        [
            label,
            f"{result['seconds']:.2f}",
            f"{result['samples_per_s']:,.0f}",
            f"{result['p99_ms']:.1f}",
        ]
        for label, result in results.items()
    ]
    text = "\n".join(
        [
            f"SRV-A  Serving fronts — {REQUESTS} requests x "
            f"{SAMPLES_PER_REQUEST} samples, LeNet/synth10, "
            f"{CLIENT_THREADS} client threads, {cores} core(s)",
            format_table(["front", "seconds", "samples/s", "p99 ms"], rows),
            f"async front vs threaded:   {async_speedup:.2f}x throughput",
            f"process lanes ({WORKERS}w) vs threaded: "
            f"{process_speedup:.2f}x throughput, {p99_speedup:.2f}x p99",
        ]
    )
    save_output("serve_async", text)

    outputs = Path(__file__).parent / "outputs"
    outputs.mkdir(exist_ok=True)
    payload = {
        "cases": {
            "async-front": {
                "speedup": round(async_speedup, 4),
                "threaded_samples_per_s": round(threaded["samples_per_s"], 1),
                "async_samples_per_s": round(async_front["samples_per_s"], 1),
                "async_p99_ms": round(async_front["p99_ms"], 3),
            },
            "process-lanes": {
                "speedup": round(process_speedup, 4),
                "workers": WORKERS,
                "process_samples_per_s": round(process["samples_per_s"], 1),
                "process_p99_ms": round(process["p99_ms"], 3),
            },
            "process-p99": {
                "speedup": round(p99_speedup, 4),
                "threaded_p99_ms": round(threaded["p99_ms"], 3),
                "process_p99_ms": round(process["p99_ms"], 3),
            },
        },
        "cores": cores,
    }
    (outputs / "serve_async.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # The asyncio front shares the router and the inference path with
    # the threaded front; it must not tax throughput for the privilege
    # of not parking a thread per connection.
    assert async_speedup >= 0.5, (
        f"async front lost {1 - async_speedup:.0%} throughput vs threaded"
    )
    if cores >= 4:
        # The multi-process acceptance floor from the serving tentpole:
        # with cores to spare, two plan lanes must at least double the
        # single-process threaded throughput (the GIL bound).
        assert process_speedup >= 2.0, (
            f"{WORKERS} worker processes on {cores} cores should give "
            f">= 2x threaded throughput, got {process_speedup:.2f}x"
        )
    else:
        # One core: lanes only add IPC overhead; just prove the fan-out
        # path served everything (asserted above) at a sane rate.
        assert process_speedup > 0.1
