"""Benches regenerating Table I and the §VI-C1 training-overhead numbers."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.eval.experiments import QUICK, run_posttraining_overhead, run_table1


@pytest.mark.benchmark(group="overheads")
def test_table1_inference_overhead(benchmark, save_output):
    """TAB1: FitAct inference overheads stay modest.

    The paper reports <12% runtime / <6% memory on GPU-scale models; the
    numpy substrate pays relatively more runtime for the sigmoid gate
    (its convolutions are comparatively cheaper than cuDNN's), so the
    bench asserts a loose ceiling and records the measured ratios.
    """
    result = run_once(benchmark, lambda: run_table1(preset=QUICK))
    save_output("table1", result.to_text())
    assert len(result.rows) == 6
    for row in result.rows:
        # Width-scaling shrinks weights quadratically but λ words only
        # linearly, so the memory ratio is inflated at QUICK scale (the
        # paper's <6% is the scale-1.0 regime; see EXPERIMENTS.md).
        assert row.memory_overhead < 3.0, row.label
        assert row.runtime_overhead < 2.0, row.label
        # Protection must actually add memory (the λ words exist).
        assert row.memory_overhead > 0.0, row.label


@pytest.mark.benchmark(group="overheads")
def test_posttraining_overhead(benchmark, save_output):
    """§VI-C1: post-training is cheap relative to conventional training."""
    result = run_once(
        benchmark, lambda: run_posttraining_overhead(preset=QUICK)
    )
    save_output("posttraining", result.to_text())
    assert len(result.rows) == 3
    for row in result.rows:
        # Full-schedule ratio is epoch-budget dependent; per-epoch the
        # bound-learning pass must cost less than ~2 training epochs.
        assert float(row["per_epoch_ratio"]) < 2.0, row["model"]
