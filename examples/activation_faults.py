#!/usr/bin/env python3
"""Transient activation faults: testing bounds on Ranger's home turf.

The paper injects faults into *stored parameters*.  Ranger — one of its
baselines — was designed against transient soft errors that corrupt
*feature maps in flight*.  This example instruments every activation
site of a small protected model with the library's transient-fault
layers and sweeps the upsets-per-layer count for four schemes:

  unprotected ReLU | Ranger (saturate) | Clip-Act (zero) | neuron-wise

The corruption lands after one activation and before the next layer, so
only the *next* bounded activation can stop it — the same propagation
argument as the paper's Fig. 5, on a different fault location.

Run:  python examples/activation_faults.py
"""

from __future__ import annotations

from repro.core import ProtectionConfig, Trainer, TrainingConfig, evaluate_accuracy, protect_model
from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.eval.reporting import format_curves
from repro.fault import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultModel,
)
from repro.models import build_model
from repro.quant import quantize_module

UPSETS = (1, 4, 16, 64)
TRIALS = 5


def main() -> None:
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=16, seed=5)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=16, seed=5, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    base = build_model("lenet", num_classes=10, image_size=16, seed=0)
    Trainer(base, TrainingConfig(epochs=15, lr=0.05, momentum=0.95)).fit(train_loader)
    state = base.state_dict()
    print(
        f"[setup]  trained LeNet, clean accuracy "
        f"{evaluate_accuracy(base, test_loader):.2%}\n"
    )

    schemes = {
        "unprotected": None,
        "ranger": ProtectionConfig(method="ranger"),
        "clipact": ProtectionConfig(method="clipact"),
        "neuron-wise": ProtectionConfig(method="fitact-naive"),
    }
    series: dict[str, list[float]] = {}
    for label, config in schemes.items():
        model = build_model("lenet", num_classes=10, image_size=16, seed=0)
        model.load_state_dict(state)
        if config is not None:
            protect_model(model, train_loader, config)
        quantize_module(model)

        injector = ActivationFaultInjector(model)
        campaign = ActivationFaultCampaign(
            injector,
            lambda m=model: evaluate_accuracy(m, test_loader),
            trials=TRIALS,
            seed=0,
        )
        series[label] = [
            campaign.run(ActivationFaultModel.exact(n), tag=label).mean
            for n in UPSETS
        ]
        print(f"[swept]  {label}: {['%.1f%%' % (100 * v) for v in series[label]]}")

    print()
    print(
        format_curves(
            [str(n) for n in UPSETS],
            series,
            x_label="upsets/layer/pass",
            title="Mean accuracy under transient activation faults",
        )
    )
    print(
        "\nReading: at high upset counts the bounded schemes hold while\n"
        "the unprotected model collapses; saturate-to-bound (Ranger)\n"
        "passes large corrupted values one layer further than\n"
        "squash-to-zero (Clip-Act), and per-neuron bounds clip closest\n"
        "to each neuron's true range."
    )


if __name__ == "__main__":
    main()
