#!/usr/bin/env python3
"""Deploying a protected model: checkpoint save/load and the CLI.

A FitAct-protected model is more than weights: the surgery manifest —
which activation class sits where, with which slope/bounds — must
travel with the state.  This example:

1. trains + protects a small model (full FitAct: profile, surgery,
   bound post-training);
2. saves it with ``save_protected`` and reloads it with
   ``load_protected``, verifying bit-identical outputs;
3. re-evaluates the reloaded model under faults;
4. prints the equivalent ``python -m repro`` commands.

Run:  python examples/checkpoint_roundtrip.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    FitActConfig,
    FitActPipeline,
    PostTrainingConfig,
    ProtectionConfig,
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
    load_protected,
    save_protected,
)
from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models import build_model
from repro.quant import quantize_module


def main() -> None:
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=16, seed=9)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=16, seed=9, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    # ------------------------------------------------------------------
    # Train + protect (the full two-stage FitAct pipeline).
    # ------------------------------------------------------------------
    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    Trainer(model, TrainingConfig(epochs=15, lr=0.05, momentum=0.95)).fit(train_loader)

    pipeline = FitActPipeline(
        FitActConfig(
            protection=ProtectionConfig(method="fitact"),
            post_training=PostTrainingConfig(epochs=3, lr=0.01, zeta=0.05, delta=0.02),
        )
    )
    result = pipeline.protect(model, train_loader, test_loader)
    quantize_module(model)
    clean = evaluate_accuracy(model, test_loader)
    print(f"[fitact] protected model, clean accuracy {clean:.2%}")
    print("[fitact] " + result.summary().replace("\n", "\n[fitact] "))

    # ------------------------------------------------------------------
    # Save → load → verify.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "lenet-fitact.npz"
        save_protected(
            path,
            model,
            meta={"method": "fitact", "clean_accuracy": clean, "dataset": "synth10"},
        )
        print(f"[save]   {path.name}: {path.stat().st_size:,} bytes")

        reloaded, meta = load_protected(
            path,
            lambda: build_model("lenet", num_classes=10, image_size=16, seed=0),
        )
        print(f"[load]   meta: {meta}")

        inputs, _ = next(iter(test_loader))
        if np.array_equal(model(inputs).data, reloaded(inputs).data):
            print("[verify] outputs bit-identical after the round trip")
        else:
            raise SystemExit("round trip mismatch — this is a bug")

        # --------------------------------------------------------------
        # The reloaded model is fully functional: fault campaign.
        # --------------------------------------------------------------
        campaign = FaultCampaign(
            FaultInjector(reloaded),
            lambda: evaluate_accuracy(reloaded, test_loader),
            trials=4,
            seed=0,
        )
        for n_flips in (8, 64):
            run = campaign.run(BitFlipFaultModel.exact(n_flips))
            print(
                f"[fault]  {n_flips} flips: mean {run.mean:.2%} "
                f"(min {run.min:.2%} over {run.trials} trials)"
            )

    print(
        "\nThe CLI wraps this same flow:\n"
        "  python -m repro protect  --model lenet --method fitact "
        "--preset smoke --out ckpt.npz\n"
        "  python -m repro evaluate --checkpoint ckpt.npz --rates 1e-6 1e-5"
    )


if __name__ == "__main__":
    main()
