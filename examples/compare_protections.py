#!/usr/bin/env python3
"""Compare all protection schemes on a paper model (Fig. 5/6 workload).

Trains (or loads from cache) a scaled AlexNet/VGG16/ResNet50 on
SynthCIFAR, protects it with FitAct / Clip-Act / Ranger, and sweeps the
fault rates, printing the mean-accuracy curves and box statistics.

Run:  python examples/compare_protections.py --model vgg16 --dataset synth10
      python examples/compare_protections.py --preset full --model resnet50
"""

from __future__ import annotations

import argparse

from repro.eval.experiments import get_preset, prepare_context
from repro.eval.experiments.fig5_accuracy_distribution import METHOD_LABELS
from repro.eval.experiments.runner import run_method_sweep
from repro.eval.reporting import format_curves, percent
from repro.models import MODEL_NAMES
from repro.utils import set_verbosity


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg16", choices=sorted(MODEL_NAMES))
    parser.add_argument("--dataset", default="synth10", choices=["synth10", "synth100"])
    parser.add_argument("--preset", default="quick", choices=["smoke", "quick", "full"])
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["fitact", "clipact", "ranger", "none"],
        choices=["fitact", "fitact-naive", "clipact", "ranger", "none"],
    )
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.verbose:
        set_verbosity("INFO")

    preset = get_preset(args.preset)
    print(f"preparing {args.model}/{args.dataset} at preset '{preset.name}' ...")
    context = prepare_context(args.model, args.dataset, preset)
    print(f"reference clean accuracy: {percent(context.reference_accuracy)}")

    sweep = run_method_sweep(
        context, methods=tuple(args.methods), trials=args.trials, tag="compare"
    )

    series = {
        METHOD_LABELS.get(m, m): sweep.mean_accuracy(m) for m in args.methods
    }
    print()
    print(
        format_curves(
            [f"{r:.1e}" for r in sweep.rates],
            series,
            x_label="fault rate",
            title=(
                f"Mean accuracy under faults — {args.model}/{args.dataset} "
                f"({sweep.sweeps[args.methods[0]][sweep.rates[0]].trials} trials; "
                "E[flips]: "
                + ", ".join(f"{sweep.expected_flips[r]:.1f}" for r in sweep.rates)
                + ")"
            ),
        )
    )
    print("\nclean accuracy per scheme: " + ", ".join(
        f"{METHOD_LABELS.get(m, m)} {percent(sweep.clean_accuracy[m])}"
        for m in args.methods
    ))


if __name__ == "__main__":
    main()
