#!/usr/bin/env python3
"""Protect a user-defined architecture with FitAct.

Shows the extension path a downstream user takes: define a custom
``repro.nn`` model, register it, train it, and harden it with the same
one-call protection API the paper models use — surgery finds every ReLU
site automatically.

Run:  python examples/custom_model.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import (
    FitActConfig,
    FitActPipeline,
    PostTrainingConfig,
    Trainer,
    TrainingConfig,
    bound_modules,
    evaluate_accuracy,
)
from repro.data import (
    DataLoader,
    Normalize,
    SYNTH_MEAN,
    SYNTH_STD,
    SyntheticImageDataset,
)
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models import register_model
from repro.utils.rng import derive_seed, new_rng


class WideShallowNet(nn.Module):
    """A deliberately non-standard topology: parallel conv branches whose
    outputs are concatenated — surgery must still find all three ReLUs."""

    def __init__(self, num_classes: int = 10, image_size: int = 16, seed: int = 0,
                 **_: object) -> None:
        super().__init__()
        rng = new_rng(derive_seed(seed, "wideshallow"))
        self.branch_a = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1, rng=rng), nn.ReLU(), nn.MaxPool2d(2)
        )
        self.branch_b = nn.Sequential(
            nn.Conv2d(3, 8, 5, padding=2, rng=rng), nn.ReLU(), nn.MaxPool2d(2)
        )
        spatial = image_size // 2
        self.head = nn.Sequential(
            nn.Flatten(),
            nn.Linear(16 * spatial * spatial, 32, rng=rng),
            nn.ReLU(),
            nn.Linear(32, num_classes, rng=rng),
        )

    def forward(self, x):
        from repro.autograd import concat

        a = self.branch_a(x)
        b = self.branch_b(x)
        return self.head(concat([a, b], axis=1))


def main() -> None:
    register_model("wide-shallow", lambda **kw: WideShallowNet(**kw))

    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=600, image_size=16, seed=5)
    test_set = SyntheticImageDataset(num_samples=240, image_size=16, seed=5, split="test")
    train_loader = DataLoader(train_set, batch_size=64, shuffle=True, rng=0,
                              transform=normalize)
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    model = WideShallowNet(seed=0)
    Trainer(model, TrainingConfig(epochs=12, lr=0.1)).fit(train_loader)
    clean = evaluate_accuracy(model, test_loader)
    print(f"custom model clean accuracy: {clean:.2%}")

    pipeline = FitActPipeline(FitActConfig(post_training=PostTrainingConfig(epochs=3)))
    result = pipeline.protect(model, train_loader, test_loader)
    protected_sites = bound_modules(model)
    print(f"protected activation sites: {sorted(protected_sites)}")
    print(result.summary())

    injector = FaultInjector(model)
    campaign = FaultCampaign(
        injector, lambda: evaluate_accuracy(model, test_loader), trials=5, seed=7
    )
    heavy = campaign.run(BitFlipFaultModel.exact(50))
    print(f"accuracy under 50 bit-flips: {heavy.mean:.2%} "
          f"(clean {result.protected_accuracy:.2%})")


if __name__ == "__main__":
    main()
