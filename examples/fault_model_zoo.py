#!/usr/bin/env python3
"""Tour of the fault-model zoo: iid flips, bursts, stuck-at cells, ECC.

The paper evaluates one fault model — uniform transient bit-flips in
parameter memory.  This example runs a small protected model against
every fault model the library implements, at a matched damage budget,
plus a SEC-DED ECC memory in front of the same injector:

1. train a LeNet on SynthCIFAR-10 and protect it with neuron-wise
   bounds (FitReLU-Naive: profiled bounds, no post-training, so the
   example stays fast);
2. run campaigns under iid flips, 4-bit bursts, stuck-at-0/1 cells;
3. re-run the iid campaign behind a Hamming(39,32) SEC-DED memory and
   print the decoder's correction statistics.

Run:  python examples/fault_model_zoo.py
"""

from __future__ import annotations

from repro.core import ProtectionConfig, Trainer, TrainingConfig, evaluate_accuracy, protect_model
from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.eval.reporting import format_table, percent
from repro.fault import (
    BitFlipFaultModel,
    BurstFaultModel,
    ECCProtectedInjector,
    FaultCampaign,
    FaultInjector,
    StuckAtFaultModel,
    ecc_memory_bytes,
)
from repro.models import build_model
from repro.quant import model_memory_bytes, quantize_module

BUDGET = 24  # flips per trial, matched across fault models
TRIALS = 6


def main() -> None:
    # ------------------------------------------------------------------
    # A trained, bounded, quantised model.
    # ------------------------------------------------------------------
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=16, seed=3)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=16, seed=3, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    Trainer(model, TrainingConfig(epochs=15, lr=0.05, momentum=0.95)).fit(train_loader)
    protect_model(model, train_loader, ProtectionConfig(method="fitact-naive"))
    quantize_module(model)
    clean = evaluate_accuracy(model, test_loader)
    print(f"[setup]  neuron-wise bounded LeNet, clean accuracy {clean:.2%}\n")

    injector = FaultInjector(model)
    campaign = FaultCampaign(
        injector,
        lambda: evaluate_accuracy(model, test_loader),
        trials=TRIALS,
        seed=0,
    )

    # ------------------------------------------------------------------
    # The zoo, at a matched budget of BUDGET flips per trial.
    # ------------------------------------------------------------------
    zoo = {
        "iid flips": BitFlipFaultModel.exact(BUDGET),
        "burst L=4": BurstFaultModel.exact(4, BUDGET // 4),
        "burst L=8": BurstFaultModel.exact(8, BUDGET // 8),
        "stuck-at-0": StuckAtFaultModel.exact(0, BUDGET),
        "stuck-at-1": StuckAtFaultModel.exact(1, BUDGET),
    }
    rows = []
    for label, fault_model in zoo.items():
        result = campaign.run(fault_model, tag=label)
        rows.append(
            [
                label,
                percent(result.mean),
                percent(result.min),
                f"{result.flip_counts.mean():.1f}",
            ]
        )
    print(
        format_table(
            ["fault model", "mean acc", "worst trial", "mean flips"],
            rows,
            title=f"Fault-model zoo ({BUDGET}-flip budget, {TRIALS} trials)",
        )
    )
    print(
        "\nNote the stuck-at rows: masking drops the *effective* flip\n"
        "count below the budget (a stuck cell already holding the stuck\n"
        "value corrupts nothing), and stuck-at-1 damage concentrates in\n"
        "positive words' high bits.\n"
    )

    # ------------------------------------------------------------------
    # The same memory behind SEC-DED ECC.
    # ------------------------------------------------------------------
    ecc = ECCProtectedInjector(injector)
    ecc_campaign = FaultCampaign(
        ecc, lambda: evaluate_accuracy(model, test_loader), trials=TRIALS, seed=0
    )
    result = ecc_campaign.run(BitFlipFaultModel.exact(BUDGET), tag="ecc")
    outcome = ecc.lifetime_outcome
    print(
        format_table(
            ["memory", "mean acc", "worst trial", "memory bytes"],
            [
                [
                    "plain",
                    percent(campaign.run(zoo["iid flips"], tag="plain").mean),
                    "-",
                    f"{model_memory_bytes(model):,}",
                ],
                [
                    "SEC-DED(39,32)",
                    percent(result.mean),
                    percent(result.min),
                    f"{ecc_memory_bytes(model):,}",
                ],
            ],
            title="ECC versus plain memory (same raw fault budget)",
        )
    )
    print(
        f"\ndecoder: {outcome.summary()}\n"
        "Isolated flips vanish (corrected); only multi-bit words reach\n"
        "the parameters — at this sparse budget that is nearly none,\n"
        "bought with ~22% extra memory."
    )


if __name__ == "__main__":
    main()
