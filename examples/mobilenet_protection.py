#!/usr/bin/env python3
"""Protecting a depthwise-separable network (MobileNetV1).

The paper evaluates dense architectures (AlexNet/VGG16/ResNet50);
MobileNet is what actually ships on the edge devices it motivates with.
Depthwise convolutions change the fault-propagation picture: each
depthwise filter touches exactly one channel, so a corrupted depthwise
weight damages one feature map, while a corrupted *pointwise* (1×1)
weight mixes into every spatial position of one output channel.

This example trains a narrow CIFAR MobileNetV1 on SynthCIFAR-10,
protects it with neuron-wise bounds, and compares bit-flip resilience
against the unprotected copy — including a per-group vulnerability
split between depthwise and pointwise weights.

Run:  python examples/mobilenet_protection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ProtectionConfig, Trainer, TrainingConfig, evaluate_accuracy, protect_model
from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.eval.reporting import format_table, percent
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models import build_model
from repro.quant import quantize_module

TRIALS = 5
FLIP_BUDGETS = (8, 32, 128)


def main() -> None:
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=32, seed=21)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=32, seed=21, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    model = build_model("mobilenet", num_classes=10, scale=0.125, seed=0)
    print(f"[setup]  mobilenet x0.125: {model.num_parameters():,} parameters")
    report = Trainer(model, TrainingConfig(epochs=10, lr=0.1, momentum=0.9)).fit(
        train_loader
    )
    print(f"[train]  {report.summary()}")
    state = model.state_dict()

    variants = {}
    for label, method in (("unprotected", "none"), ("neuron-wise", "fitact-naive")):
        variant = build_model("mobilenet", num_classes=10, scale=0.125, seed=0)
        variant.load_state_dict(state)
        if method != "none":
            protect_model(variant, train_loader, ProtectionConfig(method=method))
        quantize_module(variant)
        variants[label] = variant
    clean = evaluate_accuracy(variants["unprotected"], test_loader)
    print(f"[eval]   clean accuracy {clean:.2%}\n")

    # ------------------------------------------------------------------
    # Whole-memory campaigns at growing flip budgets.
    # ------------------------------------------------------------------
    rows = []
    for budget in FLIP_BUDGETS:
        cells = [str(budget)]
        for label, variant in variants.items():
            campaign = FaultCampaign(
                FaultInjector(variant),
                lambda v=variant: evaluate_accuracy(v, test_loader),
                trials=TRIALS,
                seed=0,
            )
            cells.append(percent(campaign.run(BitFlipFaultModel.exact(budget)).mean))
        rows.append(cells)
    print(
        format_table(
            ["flips/trial", *variants.keys()],
            rows,
            title="Mean accuracy under parameter bit-flips",
        )
    )

    # ------------------------------------------------------------------
    # Depthwise vs pointwise vulnerability (unprotected model).
    # ------------------------------------------------------------------
    unprotected = variants["unprotected"]

    def depthwise_filter(name: str) -> bool:
        return ".depthwise." in name

    def pointwise_filter(name: str) -> bool:
        return ".pointwise." in name

    campaign = FaultCampaign(
        FaultInjector(unprotected),
        lambda: evaluate_accuracy(unprotected, test_loader),
        trials=TRIALS,
        seed=0,
    )
    rows = []
    for label, param_filter in (
        ("depthwise 3x3", depthwise_filter),
        ("pointwise 1x1", pointwise_filter),
    ):
        result = campaign.run(
            BitFlipFaultModel.exact(32, param_filter=param_filter), tag=label
        )
        rows.append([label, percent(result.mean), percent(result.min)])
    print()
    print(
        format_table(
            ["weight group (32 flips)", "mean acc", "worst trial"],
            rows,
            title="Unprotected vulnerability by weight role",
        )
    )
    print(
        "\nReading: pointwise weights dominate the parameter count and\n"
        "their corruption spreads across channels; neuron-wise bounds on\n"
        "every ReLU recover most of the loss either way."
    )


if __name__ == "__main__":
    main()
