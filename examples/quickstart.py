#!/usr/bin/env python3
"""Quickstart: train a small CNN, protect it with FitAct, measure resilience.

Walks the paper's whole workflow (Fig. 4) in about a minute on a laptop:

1. stage 1 — conventional accuracy training of a CNN on SynthCIFAR;
2. stage 2 — FitAct: profile activations, swap ReLU → FitReLU with
   per-neuron bounds, post-train the bounds;
3. evaluation — inject random Q15.16 bit-flips at increasing fault rates
   and compare accuracy against the unprotected model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    FitActConfig,
    FitActPipeline,
    PostTrainingConfig,
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
)
from repro.data import (
    DataLoader,
    Normalize,
    SYNTH_MEAN,
    SYNTH_STD,
    SyntheticImageDataset,
)
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models import build_model
from repro.quant import quantize_module


def main() -> None:
    # ------------------------------------------------------------------
    # Data: SynthCIFAR-10 (the offline CIFAR-10 stand-in).
    # ------------------------------------------------------------------
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=16, seed=11)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=16, seed=11, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    # ------------------------------------------------------------------
    # Stage 1: conventional training for accuracy (ΘA).
    # ------------------------------------------------------------------
    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    report = Trainer(
        model, TrainingConfig(epochs=15, lr=0.05, momentum=0.95)
    ).fit(train_loader)
    print(f"[train]   {report.summary()}")
    reference = evaluate_accuracy(model, test_loader)
    print(f"[train]   clean test accuracy: {reference:.2%}")

    # Keep an unprotected copy for comparison.
    unprotected = build_model("lenet", num_classes=10, image_size=16, seed=0)
    unprotected.load_state_dict(model.state_dict())
    quantize_module(unprotected)

    # ------------------------------------------------------------------
    # Stage 2: FitAct — surgery + bound post-training (ΘR).
    # ------------------------------------------------------------------
    pipeline = FitActPipeline(
        FitActConfig(post_training=PostTrainingConfig(epochs=3))
    )
    result = pipeline.protect(model, train_loader, test_loader)
    print("[fitact]  " + result.summary().replace("\n", "\n[fitact]  "))

    # ------------------------------------------------------------------
    # Evaluation: bit-flip campaigns at increasing fault rates.
    # ------------------------------------------------------------------
    print(f"\n{'fault rate':>12} {'E[flips]':>9} {'unprotected':>12} {'FitAct':>8}")
    for rate in (1e-6, 1e-5, 1e-4):
        row = []
        for label, target in (("unprotected", unprotected), ("fitact", model)):
            injector = FaultInjector(target)
            campaign = FaultCampaign(
                injector,
                lambda t=target: evaluate_accuracy(t, test_loader),
                trials=5,
                seed=42,
            )
            outcome = campaign.run(BitFlipFaultModel.at_rate(rate), tag=label)
            row.append(outcome.mean)
        flips = rate * FaultInjector(model).total_bits
        print(f"{rate:>12.0e} {flips:>9.1f} {row[0]:>12.2%} {row[1]:>8.2%}")

    print(
        "\nFitAct keeps accuracy where the unprotected model collapses — "
        "the paper's Fig. 5/6 effect at quickstart scale."
    )


if __name__ == "__main__":
    main()
