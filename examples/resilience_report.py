#!/usr/bin/env python3
"""Vulnerability assessment report for a trained model.

Pulls the library's analysis tools together into the report a
safety-engineering team would actually want before deployment:

1. bit-position profile — which bits of a Q15.16 word are critical;
2. layer profile — which parameter groups are most exposed;
3. outcome classification — masked / degraded / critical trial
   fractions with Wilson confidence intervals;
4. the protection decision — the same numbers after FitAct-style
   neuron-wise bounding.

Run:  python examples/resilience_report.py
"""

from __future__ import annotations

from repro.core import ProtectionConfig, Trainer, TrainingConfig, evaluate_accuracy, protect_model
from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.eval.reporting import format_table, percent
from repro.fault import (
    BitFlipFaultModel,
    FaultCampaign,
    FaultInjector,
    bit_position_vulnerability,
    classify_outcomes,
    critical_bit_threshold,
    mean_confidence_interval,
    parameter_group_vulnerability,
    wilson_interval,
)
from repro.models import build_model
from repro.quant import quantize_module

TRIALS = 5
BITS = (0, 12, 20, 26, 30, 31)


def main() -> None:
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_set = SyntheticImageDataset(num_samples=800, image_size=16, seed=13)
    test_set = SyntheticImageDataset(
        num_samples=300, image_size=16, seed=13, split="test"
    )
    train_loader = DataLoader(
        train_set, batch_size=64, shuffle=True, rng=0, transform=normalize
    )
    test_loader = DataLoader(test_set, batch_size=128, transform=normalize)

    model = build_model("lenet", num_classes=10, image_size=16, seed=0)
    Trainer(model, TrainingConfig(epochs=15, lr=0.05, momentum=0.95)).fit(train_loader)
    quantize_module(model)
    clean = evaluate_accuracy(model, test_loader)
    print(f"=== Resilience report: LeNet/SynthCIFAR-10, clean {clean:.2%} ===\n")

    injector = FaultInjector(model)
    campaign = FaultCampaign(
        injector,
        lambda: evaluate_accuracy(model, test_loader),
        trials=TRIALS,
        seed=0,
    )

    # ------------------------------------------------------------------
    # 1. Bit-position profile (16 flips per trial, one bit index each).
    # ------------------------------------------------------------------
    profile = bit_position_vulnerability(campaign, list(BITS), flips_per_trial=16)
    rows = [
        [str(bit), percent(result.mean), percent(result.min)]
        for bit, result in profile.items()
    ]
    print(
        format_table(
            ["bit", "mean acc", "worst trial"],
            rows,
            title="1. Bit-position vulnerability (16 flips/trial)",
        )
    )
    threshold = critical_bit_threshold(profile, baseline=clean, tolerance=0.02)
    print(f"   first critical bit index: {threshold}\n")

    # ------------------------------------------------------------------
    # 2. Layer profile (flips confined per parameter group).
    # ------------------------------------------------------------------
    owners: list[str] = []
    for name, _ in model.named_parameters():
        if name.endswith(".weight"):
            owners.append(name[: -len("weight")])
    groups = parameter_group_vulnerability(campaign, owners, flips_per_trial=8)
    rows = [
        [prefix.rstrip("."), percent(result.mean)]
        for prefix, result in groups.items()
    ]
    print(
        format_table(
            ["parameter group", "mean acc (8 flips)"],
            rows,
            title="2. Layer vulnerability",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 3. Outcome classification at a deployment-relevant budget.
    # ------------------------------------------------------------------
    result = campaign.run(BitFlipFaultModel.exact(24), tag="assessment")
    breakdown = classify_outcomes(result, baseline=clean)
    low, high = mean_confidence_interval(result)
    sdc_low, sdc_high = wilson_interval(
        breakdown.degraded + breakdown.critical, breakdown.trials
    )
    print("3. Outcome classification (24 flips/trial)")
    print(f"   {breakdown.summary()}")
    print(f"   mean accuracy {result.mean:.2%}  (95% CI [{low:.2%}, {high:.2%}])")
    print(f"   P(observable corruption) in [{sdc_low:.2%}, {sdc_high:.2%}] (Wilson)\n")

    # ------------------------------------------------------------------
    # 4. After protection.
    # ------------------------------------------------------------------
    protect_model(model, train_loader, ProtectionConfig(method="fitact-naive"))
    quantize_module(model)
    injector.refresh()
    protected_clean = evaluate_accuracy(model, test_loader)
    result = campaign.run(BitFlipFaultModel.exact(24), tag="protected")
    breakdown = classify_outcomes(result, baseline=protected_clean)
    print("4. Same budget with neuron-wise bounds")
    print(f"   clean {protected_clean:.2%}")
    print(f"   {breakdown.summary()}")
    print(f"   mean accuracy {result.mean:.2%}")


if __name__ == "__main__":
    main()
