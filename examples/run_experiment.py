#!/usr/bin/env python3
"""Regenerate any paper artefact by id (the DESIGN.md §5 index).

Run:  python examples/run_experiment.py fig5
      python examples/run_experiment.py table1 --preset quick
      python examples/run_experiment.py --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.experiments import EXPERIMENTS, get_preset
from repro.utils import set_verbosity


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"artefact id: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument("--preset", default="quick", choices=["smoke", "quick", "full"])
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        help=(
            "fault-campaign worker processes (0 = serial; N >= 2 fans "
            "trials out over a process pool with bit-identical results)"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--output", help="also write the result text to this file")
    parser.add_argument("--json", help="write the result data as JSON to this file")
    parser.add_argument(
        "--csv", help="write tabular results as CSV to this file (tables only)"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.list or not args.experiment:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    if args.verbose:
        set_verbosity("INFO")

    runner = EXPERIMENTS[args.experiment]
    preset = get_preset(args.preset)
    if args.workers:
        preset = preset.with_overrides(workers=args.workers)
    start = time.perf_counter()
    if args.experiment == "fig3":
        result = runner()  # fig3 is preset-independent (pure function plot)
    else:
        result = runner(preset=preset)
    elapsed = time.perf_counter() - start

    text = result.to_text()
    print(text)
    print(f"\n[{args.experiment} @ {preset.name}: {elapsed:.1f}s]")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if args.json:
        from repro.eval.export import save_json

        save_json(args.json, result)
    if args.csv:
        from repro.eval.export import save_csv

        save_csv(args.csv, result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
