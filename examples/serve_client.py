#!/usr/bin/env python3
"""Drive a running ``repro serve`` instance: predict, load-test, metrics.

Point it at a server started with, e.g.::

    repro protect --model lenet --method fitact --out lenet-fitact.npz --preset smoke
    repro serve --checkpoint lenet-fitact.npz --port 8123 --chaos-ber 1e-5

then::

    python examples/serve_client.py --url http://127.0.0.1:8123

It discovers the hosted models over the typed ``/v1`` protocol, sends a
batch of SynthCIFAR samples to ``POST /v1/predict``, fires a short
concurrent load burst so the micro-batcher has something to coalesce,
and finishes by printing the ``/v1/metrics`` snapshot — including the
chaos SDC counters when the server runs with ``--chaos-ber`` and the
admission shed counters when the burst overruns ``--max-pending``.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.data import DataLoader, Normalize, SYNTH_MEAN, SYNTH_STD
from repro.data.synthetic import SyntheticImageDataset
from repro.serve import ServeClient, run_load


def model_ready_inputs(image_size: int, count: int) -> np.ndarray:
    """Normalised SynthCIFAR samples shaped like the server expects."""
    dataset = SyntheticImageDataset(
        num_classes=10,
        num_samples=count,
        image_size=image_size,
        seed=5,
        split="test",
    )
    loader = DataLoader(
        dataset, batch_size=count, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
    )
    inputs, _ = next(iter(loader))
    return inputs.data.astype(np.float32)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default="http://127.0.0.1:8123", help="server base URL"
    )
    parser.add_argument("--model", default=None, help="model name (optional)")
    parser.add_argument(
        "--requests", type=int, default=32, help="load-burst request count"
    )
    parser.add_argument(
        "--concurrency", type=int, default=6, help="load-burst client threads"
    )
    args = parser.parse_args()

    client = ServeClient(args.url, timeout=60.0)
    health = client.wait_ready()
    print(
        f"server ready: {list(health.models)} "
        f"(chaos ber: {health.chaos_ber}, workers: {health.workers})"
    )

    listing = client.models()
    target = args.model or listing.models[0].name
    info = next(m for m in listing.models if m.name == target)
    # /v1/models reports the expected input geometry whether or not the
    # model is resident yet (the server peeks at the manifest).
    if info.input_shape is None:
        raise SystemExit(
            f"server reports no input geometry for {target!r}; is the "
            "checkpoint a repro-protect one?"
        )
    image_size = info.input_shape[1]

    # The synthesiser needs >= 1 sample per class; slice the batch down.
    inputs = model_ready_inputs(image_size, count=20)[:4]
    response = client.predict(inputs, model=target)
    print(f"predict[{target}]: predictions {list(response.predictions)}")

    report = run_load(
        client,
        inputs,
        requests=args.requests,
        concurrency=args.concurrency,
        model=target,
    )
    print(f"load burst: {report.summary()}")
    if report.sheds:
        print(
            f"admission shed {report.sheds} request(s) with 429 + "
            "Retry-After — the bounded queue working as designed"
        )
    if report.errors:
        print("load burst saw errors; inspect the server log")
        return 1

    metrics = client.metrics()
    print("metrics:")
    print(json.dumps(metrics, indent=2))
    batch_mean = metrics["batches"]["sizes"]["mean"]
    print(f"achieved mean batch size: {batch_mean:.1f}")
    for name, chaos in metrics.get("chaos", {}).items():
        print(
            f"chaos[{name}]: {chaos['injected_batches']}/{chaos['batches']} "
            f"batches injected, {chaos['flips']} flips, "
            f"{chaos['sdc_events']} SDC events "
            f"(rate {chaos['sdc_rate']:.2%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
