"""Setuptools shim.

``pip install -e .`` in a fully offline environment (no wheel package
available for PEP-517 builds) falls back to this legacy entry point:
``python setup.py develop`` installs the package in editable mode.
"""

from setuptools import setup

setup()
