"""repro — a from-scratch reproduction of FitAct (DATE 2022).

FitAct hardens DNN inference against memory bit-flips by giving every
neuron its own *post-trainable* activation bound.  This package rebuilds
the paper's full stack on numpy: an autograd engine (:mod:`repro.autograd`),
a neural-network layer library (:mod:`repro.nn`), optimisers
(:mod:`repro.optim`), synthetic CIFAR-like data (:mod:`repro.data`), the
Q15.16 fixed-point codec (:mod:`repro.quant`), a bit-flip fault injector
(:mod:`repro.fault`), the CIFAR model zoo (:mod:`repro.models`), the FitAct
contribution itself plus the Clip-Act/Ranger baselines (:mod:`repro.core`),
the paper's evaluation harness (:mod:`repro.eval`), a compiled inference
runtime for campaigns and serving (:mod:`repro.runtime`), and a batched
HTTP serving stack with live fault injection (:mod:`repro.serve`).

Quickstart::

    from repro import nn, optim
    from repro.models import build_model
    from repro.core import FitActPipeline, ProtectionConfig

    model = build_model("vgg16", num_classes=10, scale=0.25)
    # ... train, then:
    # pipeline = FitActPipeline(ProtectionConfig(method="fitact"))
    # protected = pipeline.protect(model, train_loader)
"""

from repro import autograd
from repro.autograd import Tensor, no_grad

__version__ = "1.0.0"

__all__ = ["Tensor", "__version__", "autograd", "no_grad"]
