"""``python -m repro`` — see :mod:`repro.cli`."""

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main())
