"""Invariant-enforcing static analysis (``repro lint``).

PRs 3-5 established correctness invariants — bit-exactness, plan
staleness signalling, thread-safe eval mode, deterministic journaling —
that previously lived only in prose.  This package turns them into
machine-checked rules: an AST lint engine with a rule registry
(``RPL001``..``RPL008``), per-line suppression comments, a committed
baseline for grandfathered findings, text/JSON reporters, and CI exit
codes.  See ``docs/INVARIANTS.md`` for the invariant catalogue and
which PR established each one.

Entry points: the ``repro lint`` CLI subcommand, or programmatically::

    from repro.analysis import lint_paths
    result = lint_paths(["src", "tests"], baseline="lint-baseline.json")
    assert not result.findings
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import LintError, LintResult, lint_paths, lint_text
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintError",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_text",
    "render_json",
    "render_text",
]
