"""Small AST helpers shared by the rule pack."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "call_name", "is_type_checking_test", "walk_skipping"]


def dotted_name(node: ast.expr) -> str | None:
    """``"np.random.default_rng"`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None for computed callees."""
    return dotted_name(call.func)


def is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``typing.TYPE_CHECKING`` guard."""
    name = dotted_name(test)
    return name is not None and (
        name == "TYPE_CHECKING" or name.endswith(".TYPE_CHECKING")
    )


def walk_skipping(
    node: ast.AST, skip: tuple[type[ast.AST], ...]
) -> list[ast.AST]:
    """Like :func:`ast.walk`, but does not descend into ``skip`` nodes.

    The root itself is never skipped (so a rule can walk *inside* a
    ClassDef while excluding nested classes).
    """
    found: list[ast.AST] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        for child in ast.iter_child_nodes(current):
            if isinstance(child, skip):
                continue
            found.append(child)
            stack.append(child)
    return found
