"""Committed baseline for grandfathered lint findings.

The baseline file (``lint-baseline.json`` at the repo root) holds
findings that predate a rule — audited, justified, and accepted rather
than fixed.  Entries match on ``(rule, path, hash-of-source-line)``, so
they survive unrelated edits that shift line numbers but go stale the
moment the offending line itself changes — a changed line must be
re-audited, not silently re-grandfathered.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.errors import ReproError

__all__ = ["Baseline", "BaselineEntry", "line_hash"]

_VERSION = 1


def line_hash(text: str) -> str:
    """Short content digest of one (whitespace-stripped) source line."""
    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding; ``note`` records the justification."""

    rule: str
    path: str
    line: int
    hash: str
    note: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.hash)

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "hash": self.hash,
            "note": self.note,
        }


class Baseline:
    """In-memory view of a baseline file; matching is hash-based."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = list(entries or [])
        self._matched: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Baseline":
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls()
        except json.JSONDecodeError as error:
            raise ReproError(f"baseline {path!r} is not valid JSON: {error}")
        if payload.get("version") != _VERSION:
            raise ReproError(
                f"baseline {path!r}: unsupported version "
                f"{payload.get('version')!r} (expected {_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                line=int(raw.get("line", 0)),
                hash=str(raw["hash"]),
                note=str(raw.get("note", "")),
            )
            for raw in payload.get("entries", [])
        ]
        return cls(entries)

    def matches(self, finding: Finding, source_line: str) -> bool:
        """Whether ``finding`` is grandfathered (records the hit)."""
        key = (finding.rule, finding.path, line_hash(source_line))
        for entry in self.entries:
            if entry.key() == key:
                self._matched.add(key)
                return True
        return False

    def unused(self) -> list[BaselineEntry]:
        """Entries that matched nothing — fixed or drifted; prune them."""
        return [e for e in self.entries if e.key() not in self._matched]

    @staticmethod
    def write(
        path: str | os.PathLike[str],
        findings: list[tuple[Finding, str]],
        notes: dict[tuple[str, str], str] | None = None,
    ) -> int:
        """Write a baseline covering ``(finding, source_line)`` pairs.

        ``notes`` maps ``(rule, path)`` to a justification carried into
        the entries; existing notes survive ``--update-baseline`` runs
        because callers pass the previous baseline's notes through.
        """
        notes = notes or {}
        entries = []
        for finding, source_line in sorted(
            findings, key=lambda pair: pair[0].sort_key()
        ):
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    hash=line_hash(source_line),
                    note=notes.get((finding.rule, finding.path), ""),
                ).to_json()
            )
        payload = {"version": _VERSION, "entries": entries}
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return len(entries)
