"""Lint engine: file discovery, parsing, rule dispatch, filtering.

The pipeline per file: parse -> run every applicable rule -> drop
findings suppressed by ``# repro-lint: disable=`` comments -> drop
findings matched by the committed baseline.  Files that fail to parse
become :class:`LintError` records (the CLI maps them to exit code 2)
rather than tracebacks — a syntax error in one file must not hide
findings in the rest of the tree.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis.baseline import Baseline
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, all_rules
from repro.analysis.suppress import suppressed_rules

__all__ = ["LintError", "LintResult", "lint_paths", "lint_text"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass(frozen=True)
class LintError:
    """A file the engine could not read or parse (CLI exit code 2)."""

    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path


@dataclass
class LintResult:
    """Everything one lint run produced, pre-rendered for reporters."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    baseline: Baseline = field(default_factory=Baseline)
    #: (finding, source line) pairs before baseline filtering — what
    #: ``--update-baseline`` writes.
    unfiltered: list[tuple[Finding, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        if self.findings:
            return 1
        return 0


def _display_path(path: str) -> str:
    """Posix-normalised path, relative to cwd when possible.

    Keeps finding paths stable across invocation styles so baseline
    entries (committed with repo-relative paths) match.
    """
    cwd = os.getcwd()
    absolute = os.path.abspath(path)
    if absolute.startswith(cwd + os.sep):
        path = os.path.relpath(absolute, cwd)
    return path.replace(os.sep, "/")


def discover_files(paths: list[str]) -> tuple[list[str], list[LintError]]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    files: list[str] = []
    errors: list[LintError] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(_display_path(path))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(_display_path(os.path.join(dirpath, name)))
        else:
            errors.append(
                LintError(path=_display_path(path), line=0, message="no such file or directory")
            )
    return sorted(set(files)), errors


def lint_text(
    source: str,
    path: str,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob (suppression comments honoured).

    ``path`` drives rule scoping exactly as an on-disk path would
    (``"src/repro/store/x.py"`` gets the store rules); the baseline is
    not consulted.  Raises :class:`SyntaxError` on unparsable source —
    callers that need error records use :func:`lint_paths`.
    """
    findings, _ = _lint_source(source, _display_path(path), rules or all_rules())
    return findings


def _lint_source(
    source: str, path: str, rules: list[Rule]
) -> tuple[list[Finding], int]:
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        module=FileContext.module_of(path),
        tree=tree,
        lines=tuple(source.splitlines()),
    )
    raw: list[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    suppressions = suppressed_rules(source)
    findings: list[Finding] = []
    suppressed = 0
    for finding in sorted(raw, key=Finding.sort_key):
        if finding.rule in suppressions.get(finding.line, frozenset()):
            suppressed += 1
            continue
        findings.append(finding)
    return findings, suppressed


def lint_paths(
    paths: list[str],
    baseline: str | os.PathLike[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintResult:
    """Lint files/directories; returns findings, errors, and counters."""
    active_rules = rules or all_rules()
    files, errors = discover_files(paths)
    result = LintResult(errors=list(errors))
    result.baseline = Baseline.load(baseline) if baseline is not None else Baseline()
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            result.errors.append(
                LintError(path=path, line=0, message=f"cannot read: {error.strerror}")
            )
            continue
        result.files += 1
        try:
            findings, suppressed = _lint_source(source, path, active_rules)
        except SyntaxError as error:
            result.errors.append(
                LintError(
                    path=path,
                    line=int(error.lineno or 0),
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        result.suppressed += suppressed
        lines = source.splitlines()
        for finding in findings:
            source_line = (
                lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
            )
            result.unfiltered.append((finding, source_line))
            if result.baseline.matches(finding, source_line):
                result.baselined += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.errors.sort(key=lambda e: (e.path, e.line))
    return result
