"""Finding and file-context types shared by the engine and every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["FileContext", "Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``col`` are 1-based; :attr:`location` renders the
    ``path:line:col`` form terminals and editors treat as clickable.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class FileContext:
    """One parsed file, as rules see it.

    ``module`` is the path relative to the ``repro`` package root
    (``"optim/sgd.py"``) when the file lives under a ``repro/``
    directory, else ``None`` — rules scope themselves with it, so the
    same rule pack runs over ``src/repro/**``, ``tests/**``, and fixture
    trees alike.
    """

    path: str
    module: str | None
    tree: ast.Module
    lines: tuple[str, ...]

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    @staticmethod
    def module_of(path: str) -> str | None:
        parts = path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return None
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        rest = parts[anchor + 1 :]
        return "/".join(rest) if rest else None

    @property
    def package(self) -> str | None:
        """First path segment under ``repro/`` (``"optim"``), or the
        module stem for top-level files (``"errors"``)."""
        if self.module is None:
            return None
        head = self.module.split("/", 1)[0]
        return head[: -len(".py")] if head.endswith(".py") else head
