"""Rule base class and the RPL rule registry."""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar, TypeVar

from repro.analysis.findings import FileContext, Finding
from repro.errors import ConfigurationError

__all__ = ["Rule", "all_rules", "get_rule", "register"]


class Rule:
    """One invariant checker: an AST visitor over a single file.

    Subclasses set :attr:`rule_id` (``"RPL00x"``) and :attr:`summary`,
    scope themselves via :meth:`applies`, and yield findings from
    :meth:`check`.  Rules must be pure functions of the file context —
    the engine runs them in file order and sorts findings, so output is
    deterministic regardless of traversal details.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)) + 1,
            rule=self.rule_id,
            message=message,
        )


_RULES: dict[str, Rule] = {}

_RuleT = TypeVar("_RuleT", bound=type[Rule])


def register(cls: _RuleT) -> _RuleT:
    """Class decorator adding a rule (by its ``rule_id``) to the registry."""
    if not cls.rule_id:
        raise ConfigurationError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _RULES:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id}")
    _RULES[cls.rule_id] = cls()
    return cls


def _load() -> None:
    # Importing the package registers every rule module exactly once.
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, in rule-id order."""
    _load()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _load()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ConfigurationError(f"unknown rule {rule_id!r}") from None
