"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.registry import all_rules

__all__ = ["render_json", "render_text"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-facing report: one clickable ``path:line:col`` per finding."""
    lines: list[str] = []
    for error in result.errors:
        lines.append(f"{error.location}: error: {error.message}")
    for finding in result.findings:
        lines.append(f"{finding.location}: {finding.rule} {finding.message}")
    for entry in result.baseline.unused():
        lines.append(
            f"warning: stale baseline entry {entry.rule} {entry.path}:{entry.line} "
            "matches nothing (fixed or edited?) — refresh with --update-baseline"
        )
    plural = "" if len(result.findings) == 1 else "s"
    lines.append(
        f"{len(result.findings)} finding{plural} in {result.files} files "
        f"({result.suppressed} suppressed, {result.baselined} baselined"
        + (f", {len(result.errors)} unparsable" if result.errors else "")
        + ")"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-facing report (the CI artifact); schema is versioned."""
    payload: dict[str, object] = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "rules": {rule.rule_id: rule.summary for rule in all_rules()},
        "files": result.files,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.findings
        ],
        "errors": [
            {"path": error.path, "line": error.line, "message": error.message}
            for error in result.errors
        ],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": [entry.to_json() for entry in result.baseline.unused()],
        "exit_code": result.exit_code(),
    }
    return json.dumps(payload, indent=2, sort_keys=False)
