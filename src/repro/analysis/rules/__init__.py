"""The RPL rule pack; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    rpl001_param_data,
    rpl002_training_flag,
    rpl003_raw_gemm,
    rpl004_nondeterminism,
    rpl005_json_exact,
    rpl006_layering,
    rpl007_pickle_safety,
    rpl008_restore_leak,
    rpl009_raw_timing,
    rpl010_replica_row_split,
)
