"""RPL001 — raw ``param.data`` writes that bypass plan invalidation.

Compiled inference plans (PR 3) read parameter arrays live but cache
BatchNorm-folded constants; the staleness probe only notices *replaced*
arrays when the identity check runs, and the explicit
``invalidate_runtime_plans`` signal is the contract every mutation path
must honour.  A stray ``something.data = ...`` (or in-place
``something.data += ...``) elsewhere silently desynchronises plans from
the module tree — exactly the corruption the bit-exactness tests exist
to prevent.

Whitelisted modules own the contract: ``nn/module.py``
(``load_state_dict`` invalidates) and ``fault/injector.py``
(``apply``/``restore`` invalidate).  Audited writes elsewhere carry an
inline disable with justification or a baseline entry.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_WHITELIST = {"nn/module.py", "fault/injector.py"}


def _data_attribute(target: ast.expr) -> ast.Attribute | None:
    """The ``X.data`` attribute node of a write target, if that's what
    it is and ``X`` is not ``self`` (``self.data = ...`` is a plain
    instance attribute, e.g. datasets)."""
    if not isinstance(target, ast.Attribute) or target.attr != "data":
        return None
    if isinstance(target.value, ast.Name) and target.value.id == "self":
        return None
    return target


@register
class ParamDataWriteRule(Rule):
    rule_id = "RPL001"
    summary = (
        "raw `X.data` write outside the plan-invalidation whitelist "
        "(nn/module.py, fault/injector.py)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.module not in _WHITELIST

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                targets = [node.target]
            for target in targets:
                attribute = _data_attribute(target)
                if attribute is None:
                    continue
                owner = dotted_name(attribute.value) or "<expr>"
                yield self.finding(
                    ctx,
                    target,
                    f"raw write to `{owner}.data` bypasses compiled-plan "
                    "invalidation; route through load_state_dict, or call "
                    "repro.nn.invalidate_runtime_plans(model) after the write",
                )
