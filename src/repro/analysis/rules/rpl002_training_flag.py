"""RPL002 — direct ``Module.training`` assignment outside ``nn/module.py``.

The PR 3 race fix: inference paths must never flip the *shared*
``training`` flag (a set-eval/restore dance in one serve thread leaves
another thread's forward running BatchNorm in training mode).  The
thread-local ``eval_mode()`` context is the only sanctioned way to get
eval semantics for a forward; ``Module.train()``/``.eval()`` remain for
genuine global mode changes and funnel through the one whitelisted
setter in ``nn/module.py``.

This rule applies to tests too — serve tests run real threads and are
just as capable of reintroducing the race.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register


@register
class TrainingFlagRule(Rule):
    rule_id = "RPL002"
    summary = (
        "direct `.training` assignment (thread-unsafe); use eval_mode() "
        "or Module.train()/.eval()"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module != "nn/module.py"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "training":
                    owner = dotted_name(target.value) or "<expr>"
                    yield self.finding(
                        ctx,
                        target,
                        f"direct assignment to `{owner}.training` races "
                        "concurrent forwards; use the thread-local "
                        "eval_mode() context for inference, or "
                        "Module.train()/.eval() for a real mode change",
                    )
