"""RPL003 — raw GEMM calls in ``runtime/`` outside the approved kernels.

Bit-exactness with the module forward holds because every compiled-path
GEMM hands BLAS the *exact* matrix product the module performs — never
row-split, never reassociated (PR 4 measured OpenBLAS accumulating K
differently per shape; splitting a BLAS call is NOT float32-bit-exact).
The approved call sites live in ``runtime/kernels.py``, next to the
documentation of that contract.  Any other ``np.dot``/``np.matmul``/
``np.einsum``/``@`` in the runtime package is a new GEMM that has not
signed it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_APPROVED_MODULE = "runtime/kernels.py"
_GEMM_FUNCTIONS = {"dot", "matmul", "einsum", "tensordot", "inner", "vdot"}


@register
class RawGemmRule(Rule):
    rule_id = "RPL003"
    summary = (
        "raw GEMM in runtime/ outside kernels.py (the never-row-split "
        "bit-exactness contract)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.module is not None
            and ctx.module.startswith("runtime/")
            and ctx.module != _APPROVED_MODULE
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 2
                    and parts[0] in {"np", "numpy"}
                    and parts[1] in _GEMM_FUNCTIONS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"raw `{name}` in the runtime package; GEMMs must go "
                        "through the approved helpers in runtime/kernels.py, "
                        "which guarantee the BLAS call is never row-split "
                        "(bit-exactness contract)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    ctx,
                    node,
                    "raw `@` matmul in the runtime package; GEMMs must go "
                    "through the approved helpers in runtime/kernels.py "
                    "(never-row-split bit-exactness contract)",
                )
