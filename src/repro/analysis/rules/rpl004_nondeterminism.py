"""RPL004 — nondeterminism in journaled paths (``fault/``, ``store/``,
``coord/``).

The byte-identical resume contract (PR 5): a campaign interrupted and
resumed — or sharded and merged — must reproduce the straight run's
journal and report byte for byte.  PR 10 extends the contract to the
coordination layer: a multi-worker, steal-heavy, crash-interrupted
drain must journal the same records a serial run would, so ``coord/``
is held to the same bar (its lease staleness clock is the *filesystem's*
— ``fs_now`` — precisely so no local wall-clock read decides protocol
state).  That only holds if nothing on the journaled path consults
ambient state:

- ``time.time()``/``time.time_ns()`` — wall clock.  Durations belong in
  ``time.perf_counter()`` feeding non-identity fields
  (``TrialOutcome.seconds`` is ``compare=False``); timestamps must be
  passed in by the caller.
- the stdlib ``random`` module — process-global, seed-shared state.
  All randomness flows through explicitly seeded ``np.random.Generator``
  streams (``repro.utils.rng``).
- ``np.random.default_rng()`` with no seed — OS entropy.
- iterating a ``set`` — order varies with hash seeding across
  processes; anything feeding serialised output must ``sorted()`` first.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_WALL_CLOCK = {"time.time", "time.time_ns"}


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in {"set", "frozenset"}
    return False


@register
class NondeterminismRule(Rule):
    rule_id = "RPL004"
    summary = (
        "nondeterminism on a journaled path (wall clock, global random "
        "state, unseeded rng, set iteration)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.module.startswith(
            ("coord/", "fault/", "store/")
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib `random` in a journaled path shares "
                            "process-global state; use explicitly seeded "
                            "np.random.Generator streams (repro.utils.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib `random` in a journaled path shares "
                        "process-global state; use explicitly seeded "
                        "np.random.Generator streams (repro.utils.rng)",
                    )
            elif isinstance(node, ast.For):
                if _is_set_expression(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iterating a set: order varies with hash seeding "
                        "across processes and would leak into journaled/"
                        "serialised output; wrap in sorted()",
                    )
            elif isinstance(node, ast.comprehension):
                if _is_set_expression(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "comprehension over a set: order varies with hash "
                        "seeding across processes; wrap in sorted()",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        name = call_name(node)
        if name is None:
            return
        if name in _WALL_CLOCK:
            yield self.finding(
                ctx,
                node,
                f"`{name}()` reads the wall clock on a journaled path; "
                "durations use time.perf_counter() into non-identity "
                "fields, timestamps are passed in by the caller",
            )
        elif name.split(".")[0] == "random" and "." in name:
            yield self.finding(
                ctx,
                node,
                f"`{name}()` uses the process-global random state; use an "
                "explicitly seeded np.random.Generator (repro.utils.rng)",
            )
        elif (
            name in {"np.random.default_rng", "numpy.random.default_rng"}
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                ctx,
                node,
                "unseeded np.random.default_rng() draws OS entropy; "
                "journaled paths must derive seeds deterministically "
                "(repro.utils.rng.derive_seed)",
            )
