"""RPL005 — raw ``json.dump(s)`` in ``store/`` bypassing the exact encoder.

The store's float contract: every float written to disk round-trips to
the bit-identical float64 on load (``repr`` shortest round-trip), and
values that *cannot* round-trip through JSON (NaN, +/-Infinity — which
``json`` happily emits as non-standard tokens) are rejected at write
time, not discovered at resume time.  ``repro.store.encoding`` is the
one chokepoint enforcing that; raw ``json.dump``/``json.dumps`` calls
in the store package sidestep it.  (``json.load(s)`` is fine — reading
is exact by construction.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_ENCODER_MODULE = "store/encoding.py"


@register
class ExactJsonRule(Rule):
    rule_id = "RPL005"
    summary = (
        "raw json.dump(s) in store/ bypasses the exact-float encoder "
        "(repro.store.encoding)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.module is not None
            and ctx.module.startswith("store/")
            and ctx.module != _ENCODER_MODULE
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in {"json.dump", "json.dumps"}:
                function = name.split(".")[1]
                yield self.finding(
                    ctx,
                    node,
                    f"raw `{name}` bypasses the exact-float encoder; use "
                    f"repro.store.encoding.exact_json_{function} (rejects "
                    "non-round-trippable NaN/Infinity at write time)",
                )
