"""RPL006 — import layering, driven by the declared layer DAG below.

The dependency architecture, bottom to top: numerics (``autograd``) →
modelling (``nn``, ``quant``, ``optim``, ``models``, ``data``) →
training (``core``) → fault machinery (``fault``) → compiled inference
(``runtime``) → persistence (``store``) → evaluation (``eval``) →
serving (``serve``) → coordination (``coord``) → entry points
(``cli``).  Lower layers must never
import higher ones — in particular ``nn``/``runtime``/``fault`` must
not reach into ``serve``/``cli``/``store`` — or the ROADMAP's
multi-host control plane inherits an import cycle instead of a layer
boundary.

``if TYPE_CHECKING:`` imports are exempt (annotation-only references,
erased at runtime, are how a lower layer *names* a higher-layer type —
``fault.campaign`` referring to ``store.CampaignStore`` in a signature
is fine; constructing one is not).  Function-local imports are checked:
they are real runtime dependencies, merely deferred.

New packages must be added to :data:`LAYER_DAG` explicitly — an
undeclared package is itself a finding, so the DAG cannot silently rot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import is_type_checking_test
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_ANY = frozenset({"*"})

#: package -> repro sub-packages it may import (``*`` = unrestricted).
LAYER_DAG: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    "utils": frozenset({"errors"}),
    "autograd": frozenset({"errors", "utils"}),
    "nn": frozenset({"autograd", "errors", "utils"}),
    "quant": frozenset({"autograd", "errors", "nn", "utils"}),
    "optim": frozenset({"autograd", "errors", "nn", "utils"}),
    "data": frozenset({"autograd", "errors", "utils"}),
    "models": frozenset({"autograd", "errors", "nn", "utils"}),
    "core": frozenset(
        {"autograd", "data", "errors", "models", "nn", "optim", "quant", "utils"}
    ),
    "obs": frozenset({"errors", "utils"}),
    "fault": frozenset(
        {"autograd", "core", "errors", "nn", "obs", "quant", "utils"}
    ),
    "runtime": frozenset(
        {"autograd", "core", "errors", "fault", "models", "nn", "obs", "utils"}
    ),
    "store": frozenset({"errors", "fault", "obs", "utils"}),
    "eval": frozenset(
        {
            "autograd",
            "core",
            "data",
            "errors",
            "fault",
            "models",
            "nn",
            "quant",
            "runtime",
            "utils",
        }
    ),
    "analysis": frozenset({"errors", "utils"}),
    # serve imports store for exactly one thing: the exact-float JSON
    # encoder (store/encoding.py) behind the /v1 protocol, so served
    # logits round-trip bit-for-bit like journaled records do.  store
    # sits below eval in the DAG, so this adds no cycle.
    "serve": frozenset(
        {
            "core",
            "errors",
            "eval",
            "fault",
            "models",
            "nn",
            "obs",
            "quant",
            "runtime",
            "store",
            "utils",
        }
    ),
    # coord layers the lease/work-stealing control plane over the store;
    # its watch front mounts serve's Router (lazily, in WatchApp) so the
    # /v1/campaign status view rides the same transport as inference.
    "coord": frozenset(
        {"errors", "fault", "obs", "serve", "store", "utils"}
    ),
    "cli": _ANY,
    # The repro facade (src/repro/__init__.py) re-exports the public
    # surface; __main__ just dispatches into the CLI.
    "__init__": _ANY,
    "__main__": frozenset({"cli"}),
}


def _imported_packages(node: ast.Import | ast.ImportFrom) -> list[str]:
    """Top-level repro sub-packages an import statement pulls in."""
    targets: list[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                targets.append(parts[1])
    else:
        if node.level or node.module is None:
            return []  # relative: stays inside the importer's package
        parts = node.module.split(".")
        if parts[0] != "repro":
            return []
        if len(parts) > 1:
            targets.append(parts[1])
        else:
            # ``from repro import nn, fault`` names packages directly.
            targets.extend(alias.name for alias in node.names)
    return targets


class _ImportVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.imports: list[tuple[ast.stmt, str]] = []

    def visit_If(self, node: ast.If) -> None:
        if is_type_checking_test(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for target in _imported_packages(node):
            self.imports.append((node, target))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for target in _imported_packages(node):
            self.imports.append((node, target))


@register
class LayeringRule(Rule):
    rule_id = "RPL006"
    summary = "import crosses the declared layer DAG (see LAYER_DAG)"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        package = ctx.package
        if package is None:
            return
        allowed = LAYER_DAG.get(package)
        if allowed is None:
            yield Finding(
                path=ctx.path,
                line=1,
                col=1,
                rule=self.rule_id,
                message=(
                    f"package `{package}` is not in the declared layer DAG; "
                    "add it to LAYER_DAG in rules/rpl006_layering.py with "
                    "its allowed imports"
                ),
            )
            return
        if allowed is _ANY or "*" in allowed:
            return
        visitor = _ImportVisitor()
        visitor.visit(ctx.tree)
        for node, target in visitor.imports:
            if target == package or target in allowed:
                continue
            yield self.finding(
                ctx,
                node,
                f"layering violation: `{package}` may not import "
                f"`repro.{target}` (allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'}); if the "
                "dependency is intentional, amend LAYER_DAG in the same "
                "change that justifies it",
            )
