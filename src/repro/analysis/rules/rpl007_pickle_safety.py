"""RPL007 — live-resource holders without a ``__getstate__``.

Spawn-based campaign pools pickle whatever the trial closure reaches:
models, injectors, evaluators.  Locks, threads, executors, and compiled
plans either fail to pickle with an opaque error deep inside
``multiprocessing``, or — worse — pickle a snapshot that silently
duplicates live state in the worker.  Every class that acquires such a
resource must decide its pickling story explicitly in ``__getstate__``:
drop the resource and rebuild lazily (``Module``, ``Evaluator``,
``FaultInjector`` all do), or refuse loudly with a clear message
(plans, the serving stack).

Detection is per class body: creating a ``threading`` primitive, a
``concurrent.futures`` executor, or a compiled plan (``compile_model``)
anywhere inside the class — including via a dataclass
``field(default_factory=threading.Lock)`` — without a ``__getstate__``
defined in the same body.  A class inheriting its ``__getstate__``
suppresses the line with a comment naming the base class.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name, walk_skipping
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_THREADING_FACTORIES = {
    "Lock",
    "RLock",
    "Thread",
    "Event",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
}
_EXECUTOR_FACTORIES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}
_PLAN_FACTORIES = {"compile_model"}


def _resource_kind(name: str | None) -> str | None:
    """What live resource a callee/reference creates, if any."""
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[0] == "threading" and parts[1] in _THREADING_FACTORIES:
        return f"a threading.{parts[1]}"
    if parts[-1] in _EXECUTOR_FACTORIES:
        return f"a {parts[-1]}"
    if parts[-1] in _PLAN_FACTORIES:
        return "a compiled plan"
    return None


@register
class PickleSafetyRule(Rule):
    rule_id = "RPL007"
    summary = (
        "class holds locks/threads/executors/compiled plans without a "
        "__getstate__ (spawn-pool pickle safety)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            resource = self._held_resource(node)
            if resource is None:
                continue
            if self._defines_getstate(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"class `{node.name}` holds {resource} but defines no "
                "__getstate__; decide its pickling story — drop the "
                "resource and rebuild lazily, or refuse with a clear "
                "TypeError — before a spawn pool decides for you",
            )

    @staticmethod
    def _held_resource(node: ast.ClassDef) -> str | None:
        # Walk the class body without descending into nested classes
        # (they are checked as their own ClassDef).
        for child in walk_skipping(node, skip=(ast.ClassDef,)):
            if isinstance(child, ast.Call):
                kind = _resource_kind(dotted_name(child.func))
                if kind is not None:
                    return kind
            elif isinstance(child, ast.keyword) and child.arg == "default_factory":
                kind = _resource_kind(dotted_name(child.value))
                if kind is not None:
                    return kind
        return None

    @staticmethod
    def _defines_getstate(node: ast.ClassDef) -> bool:
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__getstate__"
            for stmt in node.body
        )
