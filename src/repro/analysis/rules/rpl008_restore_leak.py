"""RPL008 — injector-style ``try`` whose ``except`` can leak faults.

``FaultInjector.apply`` promises all-or-nothing: a failure mid-apply
restores the clean state before propagating.  The same shape recurs
wherever code flips parameter state and evaluates under it (chaos
engine, campaign trials): if an ``except`` handler swallows the error
and falls through without restoring, the model silently keeps its
injected faults — every subsequent "clean" measurement is corrupt, the
exact silent-wrongness FT-ClipAct warns resilience numbers against.

A ``try`` is injector-style when its body writes ``X.data``, calls
``flip_bits``, or calls ``.apply()``/``.inject()`` on something named
like an injector.  Compliant handlers re-raise or call a
``restore``-like method; a ``finally`` that restores also satisfies the
rule.  (Prefer the ``injector.inject()`` context manager, which makes
the question moot.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_MUTATOR_METHODS = {"apply", "inject"}
_RESTORE_NAMES = {"rollback", "reset"}


def _is_injectorish(name: str | None) -> bool:
    return name is not None and "injector" in name.lower()


def _mutates_fault_state(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr == "data":
                        if not (
                            isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            return True
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if parts[-1] == "flip_bits":
                    return True
                if len(parts) > 1 and parts[-1] in _MUTATOR_METHODS:
                    receiver = ".".join(parts[:-1])
                    if _is_injectorish(receiver) or receiver == "self":
                        return True
    return False


def _handler_restores(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            terminal = name.split(".")[-1]
            if "restore" in terminal or terminal in _RESTORE_NAMES:
                return True
    return False


@register
class RestoreLeakRule(Rule):
    rule_id = "RPL008"
    summary = (
        "except block in injector-style try can exit without restoring "
        "flipped state"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            if node.finalbody:
                continue  # restoration in finally covers every exit path
            if not _mutates_fault_state(node.body):
                continue
            for handler in node.handlers:
                if _handler_restores(handler):
                    continue
                yield self.finding(
                    ctx,
                    handler,
                    "this except block can exit with injected faults still "
                    "applied: call restore() (or re-raise) in the handler, "
                    "move restoration to a finally, or use the "
                    "injector.inject() context manager",
                )
