"""RPL009 — raw clock reads outside the observability layer.

PR 7 routes timing through two audited funnels: ``repro.obs`` (spans,
the kernel profiler's ``now()``) and ``repro.utils.timing`` (the
``Timer``/``time_callable`` benchmarking helpers).  A raw
``time.perf_counter()`` sprinkled anywhere else is invisible to the
tracer — it produces a number nothing can correlate, export, or assert
an overhead bound on — and in journaled paths it is one typo away from
an RPL004 wall-clock violation.

New timing therefore goes through ``repro.obs.span``, a profiler hook,
or ``utils.timing``; the handful of legitimate pre-existing callers
(serve queue deadlines, campaign trial seconds, training wall-time
reporting) are grandfathered in the lint baseline, and a deliberate
new site carries an inline ``# repro-lint: disable=RPL009`` with a
justifying comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

#: Every clock-reading call in ``time`` (sleep is pacing, not reading).
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: Modules that *are* the timing funnel.
_FUNNELS = ("obs/", "utils/timing")


@register
class RawTimingRule(Rule):
    rule_id = "RPL009"
    summary = (
        "raw clock read outside repro.obs / utils.timing (route timing "
        "through spans, profiler hooks, or the Timer helpers)"
    )

    def applies(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        return not ctx.module.startswith(_FUNNELS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}()` reads a clock outside the observability "
                    "layer; use repro.obs.span / a profiler hook / "
                    "utils.timing, or disable with a justifying comment",
                )
