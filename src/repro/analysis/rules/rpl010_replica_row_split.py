"""RPL010 — no subscripted operands into ``runtime/`` GEMM calls.

Replica-batched evaluation (:mod:`repro.runtime.replica`) is bit-exact
only because every lane executes GEMMs with *exactly* the serial shapes
and operands: PR 4 measured that BLAS selects shape-dependent
micro-kernels whose K-accumulation order differs, so slicing rows out
of (or into) a shared-weight GEMM changes float32 bits.  A GEMM whose
operand — or ``out=`` target — is a subscript expression
(``x[lane]``, ``acts[i:j]``) is a row-split call: it hands BLAS a
*slice* of the tensor the serial path would multiply whole, which is
precisely the shape change the replica path must never introduce.

Lanes that need partial work re-run whole plan *suffixes*
(:meth:`ReplicaPlan.lane_forward <repro.runtime.replica.ReplicaPlan>`)
instead of splitting any single call.  Unlike RPL003 (which bans raw
GEMMs outside the approved ``runtime/kernels.py``), this rule also
covers the approved module: the contract binds the kernels themselves.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.astutil import call_name
from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import Rule, register

_GEMM_FUNCTIONS = {"dot", "matmul", "einsum", "tensordot", "inner", "vdot"}


def _is_sliced(node: ast.expr) -> bool:
    return isinstance(node, ast.Subscript)


@register
class ReplicaRowSplitRule(Rule):
    rule_id = "RPL010"
    summary = (
        "subscripted operand into a runtime/ GEMM (a row-split of the "
        "shared-weight BLAS call; replica lanes re-run suffixes instead)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.module.startswith("runtime/")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                parts = name.split(".")
                if not (
                    len(parts) == 2
                    and parts[0] in {"np", "numpy"}
                    and parts[1] in _GEMM_FUNCTIONS
                ):
                    continue
                sliced = [arg for arg in node.args if _is_sliced(arg)]
                sliced.extend(
                    kw.value
                    for kw in node.keywords
                    if kw.value is not None and _is_sliced(kw.value)
                )
                for operand in sliced:
                    yield self.finding(
                        ctx,
                        operand,
                        f"subscripted operand into `{name}`: slicing a GEMM "
                        "operand (or its out= target) row-splits the BLAS "
                        "call, which is not float32-bit-exact across shapes; "
                        "replica lanes must re-run whole plan suffixes with "
                        "serial shapes instead",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                for operand in (node.left, node.right):
                    if _is_sliced(operand):
                        yield self.finding(
                            ctx,
                            operand,
                            "subscripted operand into `@`: slicing a GEMM "
                            "operand row-splits the BLAS call, which is not "
                            "float32-bit-exact across shapes; replica lanes "
                            "must re-run whole plan suffixes with serial "
                            "shapes instead",
                        )
