"""Per-line suppression comments: ``# repro-lint: disable=RPL001``.

A trailing comment suppresses matching findings on its own line; a
standalone comment line suppresses them on the next line (so long
statements can carry their justification above, not beside).  Multiple
rule ids are comma-separated: ``disable=RPL001,RPL004``.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["suppressed_rules"]

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressed_rules(source: str) -> dict[int, frozenset[str]]:
    """Map of line number -> rule ids suppressed on that line.

    Parsed from the token stream (not regex over raw lines), so
    directives inside string literals do not suppress anything.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        row = token.start[0]
        line = token.line.strip()
        target = row + 1 if line.startswith("#") else row
        suppressions.setdefault(target, set()).update(ids)
    return {line: frozenset(ids) for line, ids in suppressions.items()}
