"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate replacing PyTorch's autograd for the
FitAct reproduction: a :class:`Tensor` type, a library of differentiable
primitives, and gradient-mode switches for cheap inference.

>>> from repro.autograd import Tensor
>>> x = Tensor([1.0, -2.0, 3.0], requires_grad=True)
>>> (x.relu().sum()).backward()
>>> x.grad.tolist()
[1.0, 0.0, 1.0]
"""

from repro.autograd import ops_basic, ops_conv, ops_nn, ops_reduce, ops_shape
from repro.autograd.function import Function, unbroadcast
from repro.autograd.grad_mode import enable_grad, is_grad_enabled, no_grad
from repro.autograd.numeric import gradcheck, numeric_gradient
from repro.autograd.ops_basic import (
    add,
    div,
    exp,
    log,
    matmul,
    maximum,
    minimum,
    mul,
    neg,
    sqrt,
    sub,
    where,
)
from repro.autograd.ops_conv import avg_pool2d, conv2d, max_pool2d
from repro.autograd.ops_nn import leaky_relu, log_softmax, relu, sigmoid, softmax, tanh
from repro.autograd.ops_shape import concat, gather, getitem, pad2d, reshape, transpose
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "Function",
    "Tensor",
    "add",
    "as_tensor",
    "avg_pool2d",
    "concat",
    "conv2d",
    "div",
    "enable_grad",
    "exp",
    "gather",
    "getitem",
    "gradcheck",
    "is_grad_enabled",
    "leaky_relu",
    "log",
    "log_softmax",
    "matmul",
    "max_pool2d",
    "maximum",
    "minimum",
    "mul",
    "neg",
    "no_grad",
    "numeric_gradient",
    "ops_basic",
    "ops_conv",
    "ops_nn",
    "ops_reduce",
    "ops_shape",
    "pad2d",
    "relu",
    "reshape",
    "sigmoid",
    "softmax",
    "sqrt",
    "sub",
    "tanh",
    "transpose",
    "unbroadcast",
    "where",
]
