"""Differentiable operation base class.

Every primitive op is a :class:`Function` subclass implementing
``forward`` (on raw numpy arrays) and ``backward`` (returning one gradient
array — or ``None`` — per tensor input, in positional order).
:meth:`Function.apply` handles unwrapping tensors, running the forward,
and linking the result into the autograd graph when recording is enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.autograd.grad_mode import is_grad_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autograd.tensor import Tensor

__all__ = ["Function", "unbroadcast"]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    Elementwise ops broadcast their inputs; the gradient w.r.t. an input
    must therefore be summed over every axis the forward pass broadcast.

    >>> unbroadcast(np.ones((4, 3)), (3,)).tolist()
    [4.0, 4.0, 4.0]
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    squeeze_axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if squeeze_axes:
        grad = grad.sum(axis=squeeze_axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable primitives.

    Subclasses implement:

    - ``forward(*raw_args, **kwargs) -> np.ndarray`` where tensor inputs
      arrive as raw ``np.ndarray`` and other arguments pass through.
      Intermediate values needed by the backward pass are stashed with
      :meth:`save_for_backward` or as attributes on ``self``.
    - ``backward(grad_out) -> tuple[np.ndarray | None, ...]`` returning one
      entry per *tensor* input, in the positional order they were passed.
    """

    def __init__(self) -> None:
        self.parents: tuple["Tensor", ...] = ()
        self.saved: tuple[np.ndarray, ...] = ()

    def save_for_backward(self, *arrays: np.ndarray) -> None:
        self.saved = arrays

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray | None, ...]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        """Run the op, wrapping the result in a Tensor linked to the graph."""
        from repro.autograd.tensor import Tensor

        fn = cls()
        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = fn.forward(*raw_args, **kwargs)
        needs_grad = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
        out = Tensor(out_data, requires_grad=needs_grad)
        if needs_grad:
            fn.parents = tuple(tensor_inputs)
            out._fn = fn
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__}>"
