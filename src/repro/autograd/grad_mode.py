"""Global gradient-recording switch.

Inference (fault-injection campaigns run thousands of forward passes) must
not pay for graph construction, so ops consult :func:`is_grad_enabled`
before linking themselves into the autograd graph.

>>> from repro.autograd import no_grad, is_grad_enabled
>>> with no_grad():
...     assert not is_grad_enabled()
>>> assert is_grad_enabled()
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["enable_grad", "is_grad_enabled", "no_grad"]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return getattr(_state, "enabled", True)


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables gradient recording."""
    previous = is_grad_enabled()
    _state.enabled = False
    try:
        yield
    finally:
        _state.enabled = previous


@contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables gradient recording inside no_grad."""
    previous = is_grad_enabled()
    _state.enabled = True
    try:
        yield
    finally:
        _state.enabled = previous
