"""Numeric gradient checking — the autograd test oracle.

Compares analytic gradients against central finite differences computed in
float64.  Used throughout ``tests/autograd`` and handy when adding new
primitives.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck", "numeric_gradient"]


def numeric_gradient(
    fn: Callable[[Sequence[np.ndarray]], float],
    inputs: Sequence[np.ndarray],
    which: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``inputs[which]``."""
    arrays = [np.array(arr, dtype=np.float64) for arr in inputs]
    target = arrays[which]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(arrays)
        flat[i] = original - eps
        lower = fn(arrays)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    ``fn`` maps input Tensors to a Tensor of any shape; the check reduces
    the output with a fixed random weighting so every output element
    participates.  Raises ``AssertionError`` with a diagnostic on mismatch.
    """
    rng = np.random.default_rng(0)
    inputs64 = [np.array(arr, dtype=np.float64) for arr in inputs]

    # Analytic pass.
    tensors = [Tensor(arr, requires_grad=True, dtype=np.float64) for arr in inputs64]
    out = fn(*tensors)
    weights = rng.standard_normal(out.shape)
    (out * Tensor(weights, dtype=np.float64)).sum().backward()
    analytic = [t.grad if t.grad is not None else np.zeros_like(t.data) for t in tensors]

    def scalar_fn(arrays: Sequence[np.ndarray]) -> float:
        ts = [Tensor(arr, dtype=np.float64) for arr in arrays]
        result = fn(*ts)
        return float((result.data * weights).sum())

    for index in range(len(inputs64)):
        numeric = numeric_gradient(scalar_fn, inputs64, index, eps=eps)
        if not np.allclose(analytic[index], numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic[index] - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic[index]}\nnumeric:\n{numeric}"
            )
    return True
