"""Elementwise arithmetic and matmul primitives with analytic gradients."""

from __future__ import annotations

import builtins
from typing import Any

import numpy as np

from repro.autograd.function import Function, unbroadcast
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError

__all__ = [
    "abs",
    "add",
    "div",
    "exp",
    "log",
    "matmul",
    "maximum",
    "minimum",
    "mul",
    "neg",
    "pow",
    "sqrt",
    "sub",
    "where",
]


class _Add(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a_shape, self.b_shape = a.shape, b.shape
        return a + b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return unbroadcast(grad_out, self.a_shape), unbroadcast(grad_out, self.b_shape)


class _Sub(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.a_shape, self.b_shape = a.shape, b.shape
        return a - b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return unbroadcast(grad_out, self.a_shape), unbroadcast(-grad_out, self.b_shape)


class _Mul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, b = self.saved
        return unbroadcast(grad_out * b, a.shape), unbroadcast(grad_out * a, b.shape)


class _Div(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, b = self.saved
        grad_a = unbroadcast(grad_out / b, a.shape)
        grad_b = unbroadcast(-grad_out * a / (b * b), b.shape)
        return grad_a, grad_b


class _Neg(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        return (-grad_out,)


class _Pow(Function):
    """Tensor raised to a *constant* scalar exponent."""

    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.exponent = float(exponent)
        self.save_for_backward(a)
        return a**self.exponent

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (a,) = self.saved
        return (grad_out * self.exponent * a ** (self.exponent - 1.0),)


class _Exp(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        return (grad_out * out,)


class _Log(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (a,) = self.saved
        return (grad_out / a,)


class _Sqrt(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        return (grad_out / (2.0 * out),)


class _Abs(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (sign,) = self.saved
        return (grad_out * sign,)


class _Maximum(Function):
    """Elementwise max; ties send the full gradient to the first input
    (a fixed subgradient choice, matching ``np.maximum`` result identity)."""

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = a >= b
        self.save_for_backward(mask)
        self.a_shape, self.b_shape = a.shape, b.shape
        return np.maximum(a, b)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        (mask,) = self.saved
        grad_a = unbroadcast(grad_out * mask, self.a_shape)
        grad_b = unbroadcast(grad_out * ~mask, self.b_shape)
        return grad_a, grad_b


class _Minimum(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = a <= b
        self.save_for_backward(mask)
        self.a_shape, self.b_shape = a.shape, b.shape
        return np.minimum(a, b)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        (mask,) = self.saved
        grad_a = unbroadcast(grad_out * mask, self.a_shape)
        grad_b = unbroadcast(grad_out * ~mask, self.b_shape)
        return grad_a, grad_b


class _Where(Function):
    """``where(cond, a, b)`` with a non-differentiable boolean condition."""

    def forward(self, condition: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(condition)
        self.a_shape, self.b_shape = a.shape, b.shape
        return np.where(condition, a, b)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        (condition,) = self.saved
        grad_a = unbroadcast(grad_out * condition, self.a_shape)
        grad_b = unbroadcast(grad_out * ~condition, self.b_shape)
        return grad_a, grad_b


class _MatMul(Function):
    """Matrix product supporting 2-D and batched (>2-D) operands."""

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim < 2 or b.ndim < 2:
            raise ShapeError(
                f"matmul requires >=2-D operands, got {a.ndim}-D and {b.ndim}-D"
            )
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        a, b = self.saved
        grad_a = grad_out @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad_out
        # Batched matmul broadcasts leading dims; fold them back.
        grad_a = unbroadcast(grad_a, a.shape)
        grad_b = unbroadcast(grad_b, b.shape)
        return grad_a, grad_b


def add(a: Any, b: Any) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    return _Add.apply(as_tensor(a), as_tensor(b))


def sub(a: Any, b: Any) -> Tensor:
    """Elementwise ``a - b`` with numpy broadcasting."""
    return _Sub.apply(as_tensor(a), as_tensor(b))


def mul(a: Any, b: Any) -> Tensor:
    """Elementwise ``a * b`` with numpy broadcasting."""
    return _Mul.apply(as_tensor(a), as_tensor(b))


def div(a: Any, b: Any) -> Tensor:
    """Elementwise ``a / b`` with numpy broadcasting."""
    return _Div.apply(as_tensor(a), as_tensor(b))


def neg(a: Any) -> Tensor:
    """Elementwise negation."""
    return _Neg.apply(as_tensor(a))


def pow(a: Any, exponent: float) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Raise a tensor to a constant scalar ``exponent``."""
    return _Pow.apply(as_tensor(a), float(exponent))


def exp(a: Any) -> Tensor:
    """Elementwise natural exponential."""
    return _Exp.apply(as_tensor(a))


def log(a: Any) -> Tensor:
    """Elementwise natural logarithm."""
    return _Log.apply(as_tensor(a))


def sqrt(a: Any) -> Tensor:
    """Elementwise square root."""
    return _Sqrt.apply(as_tensor(a))


def abs(a: Any) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient 0 at the kink)."""
    return _Abs.apply(as_tensor(a))


def maximum(a: Any, b: Any) -> Tensor:
    """Elementwise maximum of two tensors (or tensor and scalar)."""
    return _Maximum.apply(as_tensor(a), as_tensor(b))


def minimum(a: Any, b: Any) -> Tensor:
    """Elementwise minimum of two tensors (or tensor and scalar)."""
    return _Minimum.apply(as_tensor(a), as_tensor(b))


def where(condition: Any, a: Any, b: Any) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b``.

    ``condition`` is a plain boolean array — no gradient flows through it.
    """
    condition = np.asarray(condition.data if isinstance(condition, Tensor) else condition)
    if condition.dtype != builtins.bool and condition.dtype != np.bool_:
        condition = condition.astype(np.bool_)
    return _Where.apply(condition, as_tensor(a), as_tensor(b))


def matmul(a: Any, b: Any) -> Tensor:
    """Matrix multiply ``a @ b`` (2-D or batched)."""
    return _MatMul.apply(as_tensor(a), as_tensor(b))
