"""Convolution and pooling primitives (im2col/col2im based).

The forward lowers each convolution to one large matrix multiply — the
standard im2col trick — which is the only way to get competitive
throughput from numpy.  The backward reuses the saved column matrix for
the weight gradient and scatter-adds the column gradient back into the
(padded) input with a small loop over kernel offsets.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError

__all__ = ["as_pair", "avg_pool2d", "conv2d", "max_pool2d"]

IntPair = int | tuple[int, int]


def as_pair(value: IntPair, name: str) -> tuple[int, int]:
    """Normalise an int-or-pair geometry argument to a 2-tuple of ints."""
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise ShapeError(f"{name} must be an int or 2-tuple, got {value!r}")
    return pair


# Internal alias kept for the call sites below.
_pair = as_pair


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive output size {out} for input {size}, kernel {kernel}, "
            f"stride {stride}, padding {padding}"
        )
    return out


def _pad_spatial(x: np.ndarray, ph: int, pw: int, fill: float = 0.0) -> np.ndarray:
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=fill)


def _strided_windows(
    x: np.ndarray, kh: int, kw: int, sh: int, sw: int
) -> np.ndarray:
    """View of shape (N, C, OH, OW, kh, kw) over a padded NCHW array."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw]


def _scatter_windows(
    grad_windows: np.ndarray,
    in_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """col2im: scatter-add window gradients back into the input layout.

    ``grad_windows`` has shape (N, C, kh, kw, OH, OW).  Overlapping windows
    (stride < kernel) accumulate correctly because each kernel offset is
    added separately.
    """
    n, c, h, w = in_shape
    oh, ow = grad_windows.shape[-2:]
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=grad_windows.dtype)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += grad_windows[
                :, :, i, j
            ]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


class _Conv2d(Function):
    """2-D cross-correlation (the deep-learning "convolution").

    Supports grouped convolution: with G groups the input channels split
    into G blocks of C/G, the O filters into G blocks of O/G, and block g
    of the output sees only block g of the input (``groups == C`` is the
    depthwise convolution of the MobileNet family).  ``groups == 1`` runs
    the plain single-GEMM path; grouped shapes use one batched einsum.
    """

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: tuple[int, int],
        padding: tuple[int, int],
        groups: int = 1,
    ) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"conv2d expects NCHW input, got {x.ndim}-D")
        if weight.ndim != 4:
            raise ShapeError(f"conv2d expects OIHW weight, got {weight.ndim}-D")
        if groups < 1:
            raise ShapeError(f"groups must be >= 1, got {groups}")
        if x.shape[1] != weight.shape[1] * groups:
            raise ShapeError(
                f"input channels {x.shape[1]} != weight in-channels "
                f"{weight.shape[1]} x groups {groups}"
            )
        if weight.shape[0] % groups:
            raise ShapeError(
                f"out-channels {weight.shape[0]} not divisible by groups {groups}"
            )
        n, c, h, w = x.shape
        out_channels, _, kh, kw = weight.shape
        sh, sw = stride
        ph, pw = padding
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)

        padded = _pad_spatial(x, ph, pw)
        windows = _strided_windows(padded, kh, kw, sh, sw)
        if groups == 1:
            # (N, C, OH, OW, kh, kw) -> (N*OH*OW, C*kh*kw)
            cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
                n * oh * ow, c * kh * kw
            )
            w_mat = weight.reshape(out_channels, -1)
            out = cols @ w_mat.T
        else:
            cg = c // groups
            og = out_channels // groups
            # (N, C, OH, OW, kh, kw) -> (P, G, Cg*kh*kw), channel blocks
            # stay contiguous because C = G*Cg in group order.
            cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5)).reshape(
                n * oh * ow, groups, cg * kh * kw
            )
            w_mat = weight.reshape(groups, og, cg * kh * kw)
            out = np.einsum("pgk,gok->pgo", cols, w_mat).reshape(
                n * oh * ow, out_channels
            )
        if bias is not None:
            out += bias
        out = out.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2)

        self.has_bias = bias is not None
        self.stride, self.padding = stride, padding
        self.groups = groups
        self.in_shape = x.shape
        self.weight_shape = weight.shape
        self.save_for_backward(cols, w_mat)
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray | None, ...]:
        cols, w_mat = self.saved
        n, _, oh, ow = grad_out.shape
        out_channels, _, kh, kw = self.weight_shape
        c = self.in_shape[1]
        sh, sw = self.stride
        ph, pw = self.padding
        groups = self.groups

        grad_mat = np.ascontiguousarray(grad_out.transpose(0, 2, 3, 1)).reshape(
            n * oh * ow, out_channels
        )
        if groups == 1:
            grad_weight = (grad_mat.T @ cols).reshape(self.weight_shape)
            grad_cols = grad_mat @ w_mat
        else:
            og = out_channels // groups
            grad3 = grad_mat.reshape(n * oh * ow, groups, og)
            grad_weight = np.einsum("pgo,pgk->gok", grad3, cols).reshape(
                self.weight_shape
            )
            grad_cols = np.einsum("pgo,gok->pgk", grad3, w_mat).reshape(
                n * oh * ow, c * kh * kw
            )
        grad_windows = grad_cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
        grad_x = _scatter_windows(
            np.ascontiguousarray(grad_windows), self.in_shape, kh, kw, sh, sw, ph, pw
        )
        if self.has_bias:
            grad_bias = grad_mat.sum(axis=0)
            return grad_x, grad_weight, grad_bias
        return grad_x, grad_weight


class _MaxPool2d(Function):
    def forward(
        self,
        x: np.ndarray,
        kernel: tuple[int, int],
        stride: tuple[int, int],
        padding: tuple[int, int],
    ) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"max_pool2d expects NCHW input, got {x.ndim}-D")
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        n, c, h, w = x.shape
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        padded = _pad_spatial(x, ph, pw, fill=-np.inf)
        windows = _strided_windows(padded, kh, kw, sh, sw)
        flat = np.ascontiguousarray(windows).reshape(n, c, oh, ow, kh * kw)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

        self.kernel, self.stride, self.padding = kernel, stride, padding
        self.in_shape = x.shape
        self.save_for_backward(argmax)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (argmax,) = self.saved
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, oh, ow = grad_out.shape
        flat = np.zeros((n, c, oh, ow, kh * kw), dtype=grad_out.dtype)
        np.put_along_axis(flat, argmax[..., None], grad_out[..., None], axis=-1)
        grad_windows = flat.reshape(n, c, oh, ow, kh, kw).transpose(0, 1, 4, 5, 2, 3)
        grad_x = _scatter_windows(
            np.ascontiguousarray(grad_windows), self.in_shape, kh, kw, sh, sw, ph, pw
        )
        return (grad_x,)


class _AvgPool2d(Function):
    def forward(
        self,
        x: np.ndarray,
        kernel: tuple[int, int],
        stride: tuple[int, int],
        padding: tuple[int, int],
    ) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"avg_pool2d expects NCHW input, got {x.ndim}-D")
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        n, c, h, w = x.shape
        _out_size(h, kh, sh, ph)
        _out_size(w, kw, sw, pw)
        padded = _pad_spatial(x, ph, pw)
        windows = _strided_windows(padded, kh, kw, sh, sw)
        out = windows.mean(axis=(-2, -1))

        self.kernel, self.stride, self.padding = kernel, stride, padding
        self.in_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, oh, ow = grad_out.shape
        share = grad_out / float(kh * kw)
        grad_windows = np.broadcast_to(
            share[:, :, None, None, :, :], (n, c, kh, kw, oh, ow)
        )
        grad_x = _scatter_windows(
            np.ascontiguousarray(grad_windows), self.in_shape, kh, kw, sh, sw, ph, pw
        )
        return (grad_x,)


def conv2d(
    x: Any,
    weight: Any,
    bias: Any = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution over an NCHW tensor with an OIHW weight.

    ``groups > 1`` runs a grouped convolution (weight in-channels are
    per-group: shape ``(O, C/groups, kh, kw)``); ``groups == C`` is the
    depthwise convolution.
    """
    stride = _pair(stride, "stride")
    padding = _pair(padding, "padding")
    if bias is None:
        return _Conv2d.apply(
            as_tensor(x), as_tensor(weight), None, stride, padding, int(groups)
        )
    return _Conv2d.apply(
        as_tensor(x), as_tensor(weight), as_tensor(bias), stride, padding, int(groups)
    )


def max_pool2d(
    x: Any, kernel: IntPair, stride: IntPair | None = None, padding: IntPair = 0
) -> Tensor:
    """Max pooling; ``stride`` defaults to the kernel size."""
    kernel = _pair(kernel, "kernel")
    stride = kernel if stride is None else _pair(stride, "stride")
    padding = _pair(padding, "padding")
    return _MaxPool2d.apply(as_tensor(x), kernel, stride, padding)


def avg_pool2d(
    x: Any, kernel: IntPair, stride: IntPair | None = None, padding: IntPair = 0
) -> Tensor:
    """Average pooling; ``stride`` defaults to the kernel size.

    Padding zeros are included in the divisor (PyTorch's
    ``count_include_pad=True`` default).
    """
    kernel = _pair(kernel, "kernel")
    stride = kernel if stride is None else _pair(stride, "stride")
    padding = _pair(padding, "padding")
    return _AvgPool2d.apply(as_tensor(x), kernel, stride, padding)
