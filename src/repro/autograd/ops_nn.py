"""Neural-network primitives: activations and stable (log-)softmax."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor

__all__ = ["leaky_relu", "log_softmax", "relu", "sigmoid", "softmax", "tanh"]


class _ReLU(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (mask,) = self.saved
        return (grad_out * mask,)


class _LeakyReLU(Function):
    def forward(self, a: np.ndarray, negative_slope: float) -> np.ndarray:
        self.slope = float(negative_slope)
        mask = a > 0
        self.save_for_backward(mask)
        return np.where(mask, a, self.slope * a)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (mask,) = self.saved
        return (np.where(mask, grad_out, self.slope * grad_out),)


class _Sigmoid(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation avoids overflow in exp.
        out = np.empty_like(a)
        positive = a >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
        exp_a = np.exp(a[~positive])
        out[~positive] = exp_a / (1.0 + exp_a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        return (grad_out * out * (1.0 - out),)


class _Tanh(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        return (grad_out * (1.0 - out * out),)


class _LogSoftmax(Function):
    """Log-softmax along ``axis`` via the logsumexp trick."""

    def forward(self, a: np.ndarray, axis: int) -> np.ndarray:
        self.axis = axis
        shifted = a - a.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_norm
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        softmax = np.exp(out)
        return (grad_out - softmax * grad_out.sum(axis=self.axis, keepdims=True),)


class _Softmax(Function):
    def forward(self, a: np.ndarray, axis: int) -> np.ndarray:
        self.axis = axis
        shifted = a - a.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (out,) = self.saved
        inner = (grad_out * out).sum(axis=self.axis, keepdims=True)
        return (out * (grad_out - inner),)


def relu(a: Any) -> Tensor:
    """``max(0, x)`` — the baseline activation the paper hardens."""
    return _ReLU.apply(as_tensor(a))


def leaky_relu(a: Any, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    return _LeakyReLU.apply(as_tensor(a), negative_slope)


def sigmoid(a: Any) -> Tensor:
    """Numerically stable logistic sigmoid.

    FitReLU (paper Eq. 6) is built from this primitive, so its stability
    for large ``|x|`` matters: faulty activations can reach ~1e4.
    """
    return _Sigmoid.apply(as_tensor(a))


def tanh(a: Any) -> Tensor:
    """Hyperbolic tangent."""
    return _Tanh.apply(as_tensor(a))


def log_softmax(a: Any, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    return _LogSoftmax.apply(as_tensor(a), axis)


def softmax(a: Any, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    return _Softmax.apply(as_tensor(a), axis)
