"""Reduction primitives (sum/mean/max/min) with analytic gradients."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor

__all__ = ["max", "mean", "min", "sum"]

Axis = int | tuple[int, ...] | None


def _normalize_axis(axis: Axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad: np.ndarray, shape: tuple[int, ...], axes: tuple[int, ...], keepdims: bool) -> np.ndarray:
    """Reinsert reduced axes as size-1 dims so grad broadcasts to ``shape``."""
    if not keepdims:
        for axis in sorted(axes):
            grad = np.expand_dims(grad, axis)
    return np.broadcast_to(grad, shape)


class _Sum(Function):
    def forward(self, a: np.ndarray, axis: Axis, keepdims: bool) -> np.ndarray:
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        return a.sum(axis=self.axes, keepdims=keepdims)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        grad = _expand_reduced(grad_out, self.in_shape, self.axes, self.keepdims)
        return (np.ascontiguousarray(grad),)


class _Mean(Function):
    def forward(self, a: np.ndarray, axis: Axis, keepdims: bool) -> np.ndarray:
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.count = int(np.prod([a.shape[ax] for ax in self.axes])) if self.axes else 1
        return a.mean(axis=self.axes, keepdims=keepdims)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        grad = _expand_reduced(grad_out, self.in_shape, self.axes, self.keepdims)
        return (np.ascontiguousarray(grad) / self.count,)


class _MinMaxBase(Function):
    """Shared machinery for max/min: route gradient to extremum positions.

    Ties split the gradient equally among tied positions, a symmetric
    subgradient choice that keeps gradcheck well-behaved away from exact
    ties.
    """

    _reducer = None  # set by subclass: np.max or np.min

    def forward(self, a: np.ndarray, axis: Axis, keepdims: bool) -> np.ndarray:
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        out = type(self)._reducer(a, axis=self.axes, keepdims=True)
        self.save_for_backward(a, out)
        if not keepdims:
            return out.reshape(self._squeezed_shape(a.shape))
        return out

    def _squeezed_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(n for i, n in enumerate(shape) if i not in self.axes)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        a, out = self.saved
        mask = (a == out).astype(a.dtype)
        tie_counts = mask.sum(axis=self.axes, keepdims=True)
        grad = grad_out
        if not self.keepdims:
            for axis in sorted(self.axes):
                grad = np.expand_dims(grad, axis)
        return (mask * (grad / tie_counts),)


class _Max(_MinMaxBase):
    _reducer = staticmethod(np.max)


class _Min(_MinMaxBase):
    _reducer = staticmethod(np.min)


def sum(a: Any, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over ``axis`` (all axes when ``None``)."""
    return _Sum.apply(as_tensor(a), axis, keepdims)


def mean(a: Any, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over ``axis`` (all axes when ``None``)."""
    return _Mean.apply(as_tensor(a), axis, keepdims)


def max(a: Any, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over ``axis``; gradient splits equally among ties."""
    return _Max.apply(as_tensor(a), axis, keepdims)


def min(a: Any, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Minimum over ``axis``; gradient splits equally among ties."""
    return _Min.apply(as_tensor(a), axis, keepdims)
