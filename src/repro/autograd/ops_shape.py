"""Shape-manipulation primitives: reshape, transpose, indexing, pad, concat."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError

__all__ = ["concat", "gather", "getitem", "pad2d", "reshape", "transpose"]


class _Reshape(Function):
    def forward(self, a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        return (grad_out.reshape(self.in_shape),)


class _Transpose(Function):
    def forward(self, a: np.ndarray, axes: tuple[int, ...] | None) -> np.ndarray:
        self.axes = tuple(range(a.ndim))[::-1] if axes is None else tuple(axes)
        return np.transpose(a, self.axes)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        inverse = np.argsort(self.axes)
        return (np.transpose(grad_out, inverse),)


class _GetItem(Function):
    """Basic and integer-array indexing with scatter-add backward."""

    def forward(self, a: np.ndarray, index: Any) -> np.ndarray:
        self.in_shape = a.shape
        self.in_dtype = a.dtype
        self.index = index
        return a[index]

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        grad = np.zeros(self.in_shape, dtype=grad_out.dtype)
        # add.at handles repeated indices correctly (scatter-add).
        np.add.at(grad, self.index, grad_out)
        return (grad,)


class _Gather(Function):
    """``take_along_axis`` with scatter-add backward.

    Used by the cross-entropy loss to pick the log-probability of the
    target class per sample.
    """

    def forward(self, a: np.ndarray, index: np.ndarray, axis: int) -> np.ndarray:
        self.in_shape = a.shape
        self.axis = axis
        self.save_for_backward(index)
        return np.take_along_axis(a, index, axis=axis)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        (index,) = self.saved
        grad = np.zeros(self.in_shape, dtype=grad_out.dtype)
        # No np.put_along_axis accumulation mode; build advanced index.
        indices = list(np.indices(index.shape, sparse=False))
        indices[self.axis] = index
        np.add.at(grad, tuple(indices), grad_out)
        return (grad,)


class _Pad2d(Function):
    """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""

    def forward(self, a: np.ndarray, padding: tuple[int, int, int, int]) -> np.ndarray:
        top, bottom, left, right = padding
        self.padding = padding
        pad_spec = [(0, 0)] * (a.ndim - 2) + [(top, bottom), (left, right)]
        return np.pad(a, pad_spec)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray]:
        top, bottom, left, right = self.padding
        h_stop = grad_out.shape[-2] - bottom
        w_stop = grad_out.shape[-1] - right
        return (grad_out[..., top:h_stop, left:w_stop],)


class _Concat(Function):
    def forward(self, *arrays: np.ndarray, axis: int) -> np.ndarray:
        self.axis = axis
        self.split_points = np.cumsum([arr.shape[axis] for arr in arrays])[:-1]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(np.split(grad_out, self.split_points, axis=self.axis))


def reshape(a: Any, shape: Sequence[int]) -> Tensor:
    """Reshape to ``shape`` (supports a single -1 wildcard)."""
    return _Reshape.apply(as_tensor(a), tuple(shape))


def transpose(a: Any, axes: Sequence[int] | None = None) -> Tensor:
    """Permute axes (full reversal when ``axes`` is None)."""
    return _Transpose.apply(as_tensor(a), None if axes is None else tuple(axes))


def getitem(a: Any, index: Any) -> Tensor:
    """Index/slice a tensor; gradient scatter-adds into the source."""
    if isinstance(index, Tensor):
        index = index.data.astype(np.int64)
    return _GetItem.apply(as_tensor(a), index)


def gather(a: Any, index: Any, axis: int) -> Tensor:
    """Differentiable ``np.take_along_axis``."""
    index = np.asarray(index.data if isinstance(index, Tensor) else index, dtype=np.int64)
    return _Gather.apply(as_tensor(a), index, axis)


def pad2d(a: Any, padding: int | tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the two trailing axes.

    ``padding`` is either a single symmetric amount or
    ``(top, bottom, left, right)``.
    """
    if isinstance(padding, int):
        padding = (padding, padding, padding, padding)
    if len(padding) != 4:
        raise ShapeError(f"padding must be int or 4-tuple, got {padding!r}")
    return _Pad2d.apply(as_tensor(a), tuple(int(p) for p in padding))


def concat(tensors: Sequence[Any], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    return _Concat.apply(*tensors, axis=axis)
