"""The :class:`Tensor` — a numpy array with reverse-mode autodiff.

Tensors form a DAG through the :class:`~repro.autograd.function.Function`
objects that produced them; calling :meth:`Tensor.backward` on a scalar
output walks the DAG in reverse topological order and accumulates
gradients into the ``.grad`` of every *leaf* tensor that requires them
(mirroring PyTorch's convention that intermediate gradients are not
retained).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autograd.function import Function

__all__ = ["Tensor", "as_tensor"]

DEFAULT_DTYPE = np.float32

ArrayLike = Any  # anything np.asarray accepts


class Tensor:
    """A multi-dimensional array supporting reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Integer input is converted to the
        default float dtype unless ``dtype`` says otherwise.
    requires_grad:
        Whether gradients should be accumulated into this tensor's
        ``.grad`` during :meth:`backward`.
    dtype:
        Optional explicit numpy dtype.
    """

    __slots__ = ("data", "grad", "requires_grad", "_fn")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: np.dtype | type | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        was_ndarray = isinstance(data, (np.ndarray, np.generic))
        array = np.asarray(data, dtype=dtype)
        if dtype is None:
            if array.dtype.kind in "iub":
                array = array.astype(DEFAULT_DTYPE)
            elif not was_ndarray and array.dtype == np.float64:
                # Python floats default to the library dtype; explicit
                # ndarrays keep theirs (float64 gradchecks rely on this).
                array = array.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._fn: "Function | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        """True when this tensor was not produced by a differentiable op."""
        return self._fn is None

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_note})"

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        out = Tensor(self.data)
        out.requires_grad = False
        return out

    def copy(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def astype(self, dtype: np.dtype | type) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # ------------------------------------------------------------------
    # Gradient management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (valid only for single-element outputs,
        matching the usual scalar-loss convention).
        """
        if not self.requires_grad:
            raise GraphError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise GraphError(
                    f"backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise GraphError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        topo = self._topological_order()
        pending: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node._fn is None:
                if node.requires_grad:
                    node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._fn.backward(node_grad)
            parents = node._fn.parents
            if len(parent_grads) != len(parents):
                raise GraphError(
                    f"{type(node._fn).__name__}.backward returned "
                    f"{len(parent_grads)} gradients for {len(parents)} inputs"
                )
            for parent, parent_grad in zip(parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = np.asarray(parent_grad)
                key = id(parent)
                if key in pending:
                    pending[key] = pending[key] + parent_grad
                else:
                    pending[key] = parent_grad

    def _topological_order(self) -> list["Tensor"]:
        """Iterative post-order DFS over the graph rooted at ``self``."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node._fn is not None:
                for parent in node._fn.parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Arithmetic operators (implemented in ops modules, bound lazily below)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.sub(as_tensor(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.div(as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.matmul(self, other)

    def __getitem__(self, index: Any) -> "Tensor":
        from repro.autograd import ops_shape

        return ops_shape.getitem(self, index)

    # Comparisons yield raw boolean arrays (no gradient flows through them).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Method-style ops
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops_reduce

        return ops_reduce.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops_reduce

        return ops_reduce.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops_reduce

        return ops_reduce.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        from repro.autograd import ops_reduce

        return ops_reduce.min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.autograd import ops_shape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops_shape.reshape(self, shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        from repro.autograd import ops_shape

        return ops_shape.transpose(self, axes)

    def exp(self) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.exp(self)

    def log(self) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.log(self)

    def sqrt(self) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.sqrt(self)

    def abs(self) -> "Tensor":
        from repro.autograd import ops_basic

        return ops_basic.abs(self)

    def sigmoid(self) -> "Tensor":
        from repro.autograd import ops_nn

        return ops_nn.sigmoid(self)

    def tanh(self) -> "Tensor":
        from repro.autograd import ops_nn

        return ops_nn.tanh(self)

    def relu(self) -> "Tensor":
        from repro.autograd import ops_nn

        return ops_nn.relu(self)


def _raw(value: ArrayLike) -> np.ndarray | float:
    return value.data if isinstance(value, Tensor) else value


def as_tensor(value: ArrayLike, dtype: np.dtype | type | None = None) -> Tensor:
    """Coerce ``value`` to a Tensor (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
