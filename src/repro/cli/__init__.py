"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-models``        model zoo with parameter counts
``list-experiments``   paper figures/tables and ablations by id
``info``               one model's layer tree, sites, and memory
``train``              train (or load cached) base weights
``protect``            apply a protection scheme and save a checkpoint
``evaluate``           clean + under-fault accuracy of a checkpoint
``experiment``         regenerate a paper artefact by id
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
