"""``python -m repro.cli`` entry point (used by CI's smoke campaign)."""

from repro.cli.main import main

if __name__ == "__main__":
    raise SystemExit(main())
