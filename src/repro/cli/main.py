"""Argument parsing and command dispatch for the ``repro`` CLI.

Every command is a plain function taking the parsed namespace and
returning a process exit code, so tests drive :func:`main` directly
with argv lists and assert on captured stdout.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _preset_from_args(args: argparse.Namespace):
    """Resolve the preset name plus any size overrides from the CLI."""
    from repro.eval.experiments import get_preset

    preset = get_preset(args.preset)
    overrides = {}
    if getattr(args, "train_samples", None) is not None:
        overrides["train_samples"] = args.train_samples
    if getattr(args, "test_samples", None) is not None:
        overrides["test_samples"] = args.test_samples
    if getattr(args, "epochs", None) is not None:
        overrides["train_epochs"] = args.epochs
    if getattr(args, "post_epochs", None) is not None:
        overrides["post_epochs"] = args.post_epochs
    if getattr(args, "trials", None) is not None:
        overrides["trials"] = args.trials
    if getattr(args, "image_size", None) is not None:
        overrides["image_size"] = args.image_size
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if overrides:
        preset = preset.with_overrides(**overrides)
    return preset


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_preset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="quick",
        help="experiment size preset: smoke | quick | full (default: quick)",
    )
    parser.add_argument("--train-samples", type=int, help="override training set size")
    parser.add_argument("--test-samples", type=int, help="override test set size")
    parser.add_argument("--epochs", type=int, help="override training epochs")
    parser.add_argument("--post-epochs", type=int, help="override post-training epochs")
    parser.add_argument("--trials", type=int, help="override fault-campaign trials")
    parser.add_argument("--image-size", type=int, help="override input resolution")
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        help=(
            "fault-campaign worker processes (0 = serial; N >= 2 runs "
            "trials on a process pool with bit-identical results)"
        ),
    )


def _evaluator_for(
    dataset_name: str,
    preset,
    runtime: bool = False,
    gemm_workers: "int | str | None" = None,
):
    """Build the test-set evaluator the experiment contexts use."""
    from repro.data.loader import DataLoader
    from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
    from repro.data.transforms import Normalize
    from repro.eval.evaluator import Evaluator
    from repro.eval.experiments.context import DATASETS
    from repro.utils.rng import derive_seed

    num_classes = DATASETS[dataset_name]
    test_set = SyntheticImageDataset(
        num_classes=num_classes,
        num_samples=preset.test_samples,
        image_size=preset.image_size,
        seed=derive_seed(preset.seed, "data", dataset_name),
        split="test",
    )
    loader = DataLoader(
        test_set,
        batch_size=max(preset.batch_size, 128),
        transform=Normalize(SYNTH_MEAN, SYNTH_STD),
    )
    return Evaluator(
        loader,
        max_batches=preset.eval_batches,
        runtime=runtime,
        gemm_workers=gemm_workers,
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list_models(args: argparse.Namespace) -> int:
    from repro.eval.reporting import format_table
    from repro.models.registry import MODEL_NAMES, PAPER_MODELS, build_model

    rows = []
    for name in sorted(MODEL_NAMES):
        model = build_model(
            name,
            num_classes=args.classes,
            scale=args.scale,
            image_size=args.image_size,
            seed=0,
        )
        tag = "paper" if name in PAPER_MODELS else "extra"
        rows.append([name, tag, f"{model.num_parameters():,}"])
    print(
        format_table(
            ["model", "origin", f"parameters (scale {args.scale:g})"],
            rows,
            title="Model zoo",
        )
    )
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    from repro.eval.experiments import EXPERIMENTS
    from repro.eval.reporting import format_table

    rows = []
    for exp_id, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()
        rows.append([exp_id, doc[0] if doc else ""])
    print(format_table(["id", "description"], rows, title="Experiments"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.surgery import find_activation_sites
    from repro.models.registry import build_model
    from repro.quant.model import model_memory_bytes

    model = build_model(
        args.model,
        num_classes=args.classes,
        scale=args.scale,
        image_size=args.image_size,
        seed=0,
    )
    sites = find_activation_sites(model)
    print(f"model       : {args.model} (scale {args.scale:g})")
    print(f"parameters  : {model.num_parameters():,}")
    print(f"memory      : {model_memory_bytes(model) / 1e6:.2f} MB (Q15.16)")
    print(f"ReLU sites  : {len(sites)}")
    if args.verbose:
        print(model)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.experiments import prepare_context

    preset = _preset_from_args(args)
    context = prepare_context(args.model, args.dataset, preset)
    print(
        f"trained {args.model}/{args.dataset} ({preset.name} preset): "
        f"accuracy {context.reference_accuracy:.2%} "
        f"in {context.training_seconds:.1f}s (cached runs report the "
        f"original training time)"
    )
    return 0


def _cmd_protect(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import save_protected
    from repro.eval.experiments import prepare_context
    from repro.quant.formats import parse_format

    from repro.core.checkpoint import model_input_channels

    preset = _preset_from_args(args)
    fmt = parse_format(args.format)
    context = prepare_context(args.model, args.dataset, preset)
    model, info = context.protected_model(args.method, fmt=fmt)
    in_channels = model_input_channels(model)
    meta = {
        "model": args.model,
        "dataset": args.dataset,
        "method": args.method,
        "num_classes": context.num_classes,
        "scale": preset.scale_for(args.model),
        "image_size": preset.image_size,
        "in_channels": in_channels,
        "seed": preset.seed,
        "clean_accuracy": info["clean_accuracy"],
        "format": str(fmt),
    }
    written = save_protected(args.out, model, meta=meta)
    print(
        f"protected {args.model}/{args.dataset} with {args.method}: "
        f"clean accuracy {info['clean_accuracy']:.2%} -> {written}"
    )
    return 0


def _checkpoint_format(meta: dict[str, object]):
    """Manifest quantisation format, warning on stderr when absent."""
    from repro.core.checkpoint import checkpoint_format

    return checkpoint_format(
        meta, warn=lambda message: print(f"warning: {message}", file=sys.stderr)
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import load_protected_auto
    from repro.fault.campaign import FaultCampaign
    from repro.fault.injector import FaultInjector

    from repro.errors import ConfigurationError

    if args.runtime_threads is not None and not args.runtime:
        raise ConfigurationError(
            "--runtime-threads threads the compiled runtime's kernels; "
            "pass --runtime as well"
        )
    preset = _preset_from_args(args)
    model, meta = load_protected_auto(args.checkpoint)
    preset = preset.with_overrides(image_size=int(meta["image_size"]))
    # 0 = "auto" (one thread per usable core); None = serial default.
    gemm_workers: "int | str | None" = args.runtime_threads
    if gemm_workers == 0:
        gemm_workers = "auto"
    evaluator = _evaluator_for(
        str(meta["dataset"]), preset, runtime=args.runtime, gemm_workers=gemm_workers
    )
    clean = evaluator.accuracy(model)
    runtime_note = " [compiled runtime]" if args.runtime else ""
    print(
        f"checkpoint {args.checkpoint}: {meta['model']}/{meta['dataset']} "
        f"({meta['method']}){runtime_note}"
    )
    print(f"clean accuracy: {clean:.2%}")
    if not args.rates:
        return 0
    from repro.fault.fault_model import BitFlipFaultModel

    with FaultCampaign(
        FaultInjector(model, fmt=_checkpoint_format(meta)),
        evaluator.bind(model),
        trials=preset.trials,
        seed=preset.seed,
        workers=preset.workers,
    ) as campaign:
        for rate in args.rates:
            result = campaign.run(BitFlipFaultModel.at_rate(rate))
            print(
                f"rate {rate:.1e}: mean {result.mean:.2%}  median "
                f"{result.median:.2%}  min {result.min:.2%}  "
                f"({result.trials} trials, mean {result.flip_counts.mean():.1f} flips)"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import (
        ChaosConfig,
        ModelRegistry,
        ReproServer,
        ServeApp,
        ServeConfig,
    )

    registry = ModelRegistry(capacity=args.registry_capacity, runtime=args.runtime)
    for spec in args.checkpoint:
        if "=" in spec:
            name, path = spec.split("=", 1)
        else:
            import os

            name = os.path.splitext(os.path.basename(spec))[0]
            path = spec
        registry.register(name, path)

    chaos = None
    if args.chaos_ber is not None:
        chaos = ChaosConfig(ber=args.chaos_ber, seed=args.chaos_seed)
    app = ServeApp(
        registry,
        ServeConfig(
            max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            batch_workers=args.batch_workers,
            chaos=chaos,
        ),
    )
    preload_note = ""
    if args.preload:
        warmed = app.preload()
        preload_note = f", preloaded {len(warmed)} model{'s' if len(warmed) != 1 else ''}"
    server = ReproServer(app, host=args.host, port=args.port)
    server.start()
    chaos_note = f", chaos ber {chaos.ber:g}" if chaos else ""
    runtime_note = ", compiled runtime" if args.runtime else ""
    print(
        f"serving {', '.join(registry.names())} on {server.url} "
        f"(max batch {args.max_batch}, max latency {args.max_latency_ms:g}ms"
        f"{chaos_note}{runtime_note}{preload_note})",
        flush=True,
    )

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    print("shutting down...", flush=True)
    server.stop()
    print("shutdown complete", flush=True)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from repro.eval.experiments import EXPERIMENTS

    if args.id not in EXPERIMENTS:
        print(
            f"unknown experiment {args.id!r}; run 'repro list-experiments'",
            file=sys.stderr,
        )
        return 2
    runner = EXPERIMENTS[args.id]
    preset = _preset_from_args(args)  # validates the preset name either way
    kwargs = {}
    if "preset" in inspect.signature(runner).parameters:
        kwargs["preset"] = preset
    result = runner(**kwargs)
    print(result.to_text())
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "FitAct reproduction: error-resilient DNNs via fine-grained "
            "post-trainable activation functions (DATE 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-models", help="model zoo with parameter counts")
    p.add_argument("--scale", type=float, default=0.125, help="width multiplier")
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--image-size", type=int, default=32)
    p.set_defaults(func=_cmd_list_models)

    p = sub.add_parser("list-experiments", help="experiment registry by id")
    p.set_defaults(func=_cmd_list_experiments)

    p = sub.add_parser("info", help="one model's structure and memory")
    p.add_argument("--model", required=True)
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--image-size", type=int, default=32)
    p.add_argument("--verbose", action="store_true", help="print the module tree")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("train", help="train (or load cached) base weights")
    p.add_argument("--model", required=True)
    p.add_argument("--dataset", default="synth10", help="synth10 | synth100")
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("protect", help="protect a trained model, save checkpoint")
    p.add_argument("--model", required=True)
    p.add_argument("--dataset", default="synth10")
    p.add_argument(
        "--method",
        default="fitact",
        help="fitact | fitact-naive | clipact | ranger | tanh | none",
    )
    p.add_argument("--out", required=True, help="checkpoint path (.npz)")
    p.add_argument(
        "--format",
        default="Q15.16",
        help=(
            "fixed-point quantisation format, e.g. Q15.16 or Q7.8; "
            "recorded in the checkpoint manifest so 'evaluate' injects "
            "faults into the matching bit-space (default: Q15.16)"
        ),
    )
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_protect)

    p = sub.add_parser("evaluate", help="evaluate a protected checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument(
        "--rates",
        type=float,
        nargs="*",
        default=(),
        help="fault rates for an under-fault campaign (e.g. 1e-6 3e-6)",
    )
    p.add_argument(
        "--runtime",
        action="store_true",
        help=(
            "evaluate through the compiled inference runtime "
            "(repro.runtime; bit-identical results, faster trials)"
        ),
    )
    p.add_argument(
        "--runtime-threads",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "thread the runtime's conv GEMM pipelines across N workers "
            "(0 = one per usable core; default: serial — results are "
            "bit-identical either way); requires --runtime"
        ),
    )
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "serve", help="serve protected checkpoints over HTTP (batched)"
    )
    p.add_argument(
        "--checkpoint",
        required=True,
        action="append",
        metavar="[NAME=]PATH",
        help=(
            "protected checkpoint to serve; repeat for multiple models "
            "(name defaults to the file stem)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8080,
        help="listening port (0 = ephemeral; the resolved port is printed)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="samples per coalesced forward pass (default: 32)",
    )
    p.add_argument(
        "--max-latency-ms",
        type=float,
        default=5.0,
        help="how long an open batch waits for more requests (default: 5)",
    )
    p.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="batch-execution threads per model (default: 1)",
    )
    p.add_argument(
        "--registry-capacity",
        type=int,
        default=4,
        help="models resident at once before LRU eviction (default: 4)",
    )
    p.add_argument(
        "--chaos-ber",
        type=float,
        default=None,
        help=(
            "enable chaos mode: per-bit fault rate injected into the live "
            "model around every batch (e.g. 1e-5); SDC counters appear "
            "in /metrics"
        ),
    )
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="base seed for the deterministic chaos fault stream",
    )
    p.add_argument(
        "--runtime",
        action="store_true",
        help=(
            "compile each resident checkpoint into the inference "
            "runtime's fast path (bit-identical predictions, lower "
            "batch latency; chaos-compatible)"
        ),
    )
    p.add_argument(
        "--preload",
        action="store_true",
        help=(
            "load checkpoints, compile runtime plans, and build serving "
            "lanes at startup (up to the registry capacity) instead of "
            "inside the first request; reported in /healthz"
        ),
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("experiment", help="regenerate a paper artefact by id")
    p.add_argument("--id", required=True, help="see 'repro list-experiments'")
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    np.seterr(over="ignore")  # faulty Q15.16 extremes overflow exp() benignly
    try:
        return int(args.func(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
