"""Argument parsing and command dispatch for the ``repro`` CLI.

Every command is a plain function taking the parsed namespace and
returning a process exit code, so tests drive :func:`main` directly
with argv lists and assert on captured stdout.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _preset_from_args(args: argparse.Namespace):
    """Resolve the preset name plus any size overrides from the CLI."""
    from repro.eval.experiments import get_preset

    preset = get_preset(args.preset)
    overrides = {}
    if getattr(args, "train_samples", None) is not None:
        overrides["train_samples"] = args.train_samples
    if getattr(args, "test_samples", None) is not None:
        overrides["test_samples"] = args.test_samples
    if getattr(args, "epochs", None) is not None:
        overrides["train_epochs"] = args.epochs
    if getattr(args, "post_epochs", None) is not None:
        overrides["post_epochs"] = args.post_epochs
    if getattr(args, "trials", None) is not None:
        overrides["trials"] = args.trials
    if getattr(args, "image_size", None) is not None:
        overrides["image_size"] = args.image_size
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if overrides:
        preset = preset.with_overrides(**overrides)
    return preset


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _replicas_spec(text: str) -> "int | str":
    """``--replicas`` values: a lane count, ``auto``, or ``off``."""
    if text in ("auto", "off"):
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, 'auto', or 'off', got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_preset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="quick",
        help="experiment size preset: smoke | quick | full (default: quick)",
    )
    parser.add_argument("--train-samples", type=int, help="override training set size")
    parser.add_argument("--test-samples", type=int, help="override test set size")
    parser.add_argument("--epochs", type=int, help="override training epochs")
    parser.add_argument("--post-epochs", type=int, help="override post-training epochs")
    parser.add_argument("--trials", type=int, help="override fault-campaign trials")
    parser.add_argument("--image-size", type=int, help="override input resolution")
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        help=(
            "fault-campaign worker processes (0 = serial; N >= 2 runs "
            "trials on a process pool with bit-identical results)"
        ),
    )


def _runtime_config(
    runtime: bool = False, runtime_threads: "int | None" = None
):
    """The CLI's single :class:`RuntimeConfig` construction path.

    Every command that touches the compiled runtime funnels its flags
    through here, so the flag-to-config mapping (``--runtime-threads 0``
    meaning "auto") lives in exactly one place.
    """
    from repro.runtime import RuntimeConfig

    workers: "int | str | None" = runtime_threads
    if workers == 0:
        workers = "auto"  # 0 = one thread per usable core
    return RuntimeConfig(enabled=bool(runtime), gemm_workers=workers)


def _evaluator_for(
    dataset_name: str,
    preset,
    config=None,
):
    """Build the test-set evaluator the experiment contexts use."""
    from repro.data.loader import DataLoader
    from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
    from repro.data.transforms import Normalize
    from repro.eval.evaluator import Evaluator
    from repro.eval.experiments.context import DATASETS
    from repro.utils.rng import derive_seed

    num_classes = DATASETS[dataset_name]
    test_set = SyntheticImageDataset(
        num_classes=num_classes,
        num_samples=preset.test_samples,
        image_size=preset.image_size,
        seed=derive_seed(preset.seed, "data", dataset_name),
        split="test",
    )
    loader = DataLoader(
        test_set,
        batch_size=max(preset.batch_size, 128),
        transform=Normalize(SYNTH_MEAN, SYNTH_STD),
    )
    return Evaluator(loader, max_batches=preset.eval_batches, config=config)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list_models(args: argparse.Namespace) -> int:
    from repro.eval.reporting import format_table
    from repro.models.registry import MODEL_NAMES, PAPER_MODELS, build_model

    rows = []
    for name in sorted(MODEL_NAMES):
        model = build_model(
            name,
            num_classes=args.classes,
            scale=args.scale,
            image_size=args.image_size,
            seed=0,
        )
        tag = "paper" if name in PAPER_MODELS else "extra"
        rows.append([name, tag, f"{model.num_parameters():,}"])
    print(
        format_table(
            ["model", "origin", f"parameters (scale {args.scale:g})"],
            rows,
            title="Model zoo",
        )
    )
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    from repro.eval.experiments import EXPERIMENTS
    from repro.eval.reporting import format_table

    rows = []
    for exp_id, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()
        rows.append([exp_id, doc[0] if doc else ""])
    print(format_table(["id", "description"], rows, title="Experiments"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.surgery import find_activation_sites
    from repro.models.registry import build_model
    from repro.quant.model import model_memory_bytes

    model = build_model(
        args.model,
        num_classes=args.classes,
        scale=args.scale,
        image_size=args.image_size,
        seed=0,
    )
    sites = find_activation_sites(model)
    print(f"model       : {args.model} (scale {args.scale:g})")
    print(f"parameters  : {model.num_parameters():,}")
    print(f"memory      : {model_memory_bytes(model) / 1e6:.2f} MB (Q15.16)")
    print(f"ReLU sites  : {len(sites)}")
    if args.verbose:
        print(model)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.eval.experiments import prepare_context

    preset = _preset_from_args(args)
    context = prepare_context(args.model, args.dataset, preset)
    print(
        f"trained {args.model}/{args.dataset} ({preset.name} preset): "
        f"accuracy {context.reference_accuracy:.2%} "
        f"in {context.training_seconds:.1f}s (cached runs report the "
        f"original training time)"
    )
    return 0


def _cmd_protect(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import save_protected
    from repro.eval.experiments import prepare_context
    from repro.quant.formats import parse_format

    from repro.core.checkpoint import model_input_channels

    preset = _preset_from_args(args)
    fmt = parse_format(args.format)
    context = prepare_context(args.model, args.dataset, preset)
    model, info = context.protected_model(args.method, fmt=fmt)
    in_channels = model_input_channels(model)
    meta = {
        "model": args.model,
        "dataset": args.dataset,
        "method": args.method,
        "num_classes": context.num_classes,
        "scale": preset.scale_for(args.model),
        "image_size": preset.image_size,
        "in_channels": in_channels,
        "seed": preset.seed,
        "clean_accuracy": info["clean_accuracy"],
        "format": str(fmt),
    }
    written = save_protected(args.out, model, meta=meta)
    print(
        f"protected {args.model}/{args.dataset} with {args.method}: "
        f"clean accuracy {info['clean_accuracy']:.2%} -> {written}"
    )
    return 0


def _checkpoint_format(meta: dict[str, object]):
    """Manifest quantisation format, warning on stderr when absent."""
    from repro.core.checkpoint import checkpoint_format

    return checkpoint_format(
        meta, warn=lambda message: print(f"warning: {message}", file=sys.stderr)
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import load_protected_auto
    from repro.fault.campaign import FaultCampaign
    from repro.fault.injector import FaultInjector

    from repro.errors import ConfigurationError

    if args.runtime_threads is not None and not args.runtime:
        raise ConfigurationError(
            "--runtime-threads threads the compiled runtime's kernels; "
            "pass --runtime as well"
        )
    preset = _preset_from_args(args)
    model, meta = load_protected_auto(args.checkpoint)
    preset = preset.with_overrides(image_size=int(meta["image_size"]))
    evaluator = _evaluator_for(
        str(meta["dataset"]),
        preset,
        config=_runtime_config(args.runtime, args.runtime_threads),
    )
    clean = evaluator.accuracy(model)
    runtime_note = " [compiled runtime]" if args.runtime else ""
    print(
        f"checkpoint {args.checkpoint}: {meta['model']}/{meta['dataset']} "
        f"({meta['method']}){runtime_note}"
    )
    print(f"clean accuracy: {clean:.2%}")
    if not args.rates:
        return 0
    from repro.fault.fault_model import BitFlipFaultModel

    with FaultCampaign(
        FaultInjector(model, fmt=_checkpoint_format(meta)),
        evaluator.bind(model),
        trials=preset.trials,
        seed=preset.seed,
        workers=preset.workers,
    ) as campaign:
        for rate in args.rates:
            result = campaign.run(BitFlipFaultModel.at_rate(rate))
            print(
                f"rate {rate:.1e}: mean {result.mean:.2%}  median "
                f"{result.median:.2%}  min {result.min:.2%}  "
                f"({result.trials} trials, mean {result.flip_counts.mean():.1f} flips)"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import (
        AsyncReproServer,
        ChaosConfig,
        ModelRegistry,
        ReproServer,
        ServeApp,
        ServeConfig,
    )

    registry = ModelRegistry(
        capacity=args.registry_capacity, config=_runtime_config(args.runtime)
    )
    for spec in args.checkpoint:
        if "=" in spec:
            name, path = spec.split("=", 1)
        else:
            import os

            name = os.path.splitext(os.path.basename(spec))[0]
            path = spec
        registry.register(name, path)

    chaos = None
    if args.chaos_ber is not None:
        chaos = ChaosConfig(ber=args.chaos_ber, seed=args.chaos_seed)
    app = ServeApp(
        registry,
        ServeConfig(
            max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            batch_workers=args.batch_workers,
            chaos=chaos,
            max_pending=args.max_pending,
            model_pending=args.model_pending,
            workers=args.workers,
            mp_start=args.mp_start,
            slo_p99_ms=args.slo_p99_ms,
            drain_timeout_s=args.drain_timeout_s,
        ),
    )
    preload_note = ""
    if args.preload:
        warmed = app.preload()
        rotated = len(app.health()["preload_rotated"])
        preload_note = f", preloaded {len(warmed)} model{'s' if len(warmed) != 1 else ''}"
        if rotated:
            preload_note += f" ({rotated} rotated beyond capacity)"
    server_cls = AsyncReproServer if args.front == "async" else ReproServer
    server = server_cls(app, host=args.host, port=args.port)
    server.start()
    chaos_note = f", chaos ber {chaos.ber:g}" if chaos else ""
    runtime_note = ", compiled runtime" if args.runtime else ""
    front_note = ", async front" if args.front == "async" else ""
    workers_note = (
        f", {args.workers} worker process{'es' if args.workers != 1 else ''} "
        f"({args.mp_start})"
        if args.workers
        else ""
    )
    slo_note = (
        f", SLO p99 {args.slo_p99_ms:g}ms" if args.slo_p99_ms is not None else ""
    )
    print(
        f"serving {', '.join(registry.names())} on {server.url} "
        f"(max batch {args.max_batch}, max latency {args.max_latency_ms:g}ms"
        f"{chaos_note}{runtime_note}{front_note}{workers_note}{slo_note}"
        f"{preload_note})",
        flush=True,
    )

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    # SIGTERM drain: stop accepting, finish in-flight batches across
    # every lane (and worker process), then exit.
    print("shutting down...", flush=True)
    server.stop()
    print("shutdown complete", flush=True)
    return 0


# ----------------------------------------------------------------------
# Campaign commands (durable stores: run / resume / status / merge / report)
# ----------------------------------------------------------------------
def _parse_shard_spec(text: str | None) -> "tuple[int, int] | None":
    """CLI ``i/n`` (1-based, like pytest --shard) → internal (i-1, n)."""
    from repro.errors import ConfigurationError

    if text is None:
        return None
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(f"--shard expects i/n (e.g. 1/4), got {text!r}")
    if count < 1 or not 1 <= index <= count:
        raise ConfigurationError(f"--shard {text!r} out of range")
    return (index - 1, count)


def _campaign_for_meta(
    run_meta: dict[str, object],
    shard: "tuple[int, int] | None",
    workers: int | None = None,
    replicas: "int | str | None" = None,
):
    """Rebuild the (campaign, evaluator) pair a store's meta describes.

    The deterministic reconstruction both ``campaign run`` and
    ``campaign resume`` share: checkpoint → model (``load_protected_auto``),
    preset sizes → evaluator test set, manifest format → injector.
    ``workers`` and ``replicas`` only change scheduling, never results,
    so resume may override either.
    """
    from repro.core.checkpoint import load_protected_auto
    from repro.eval.experiments import get_preset
    from repro.fault.campaign import FaultCampaign
    from repro.fault.injector import FaultInjector

    model, meta = load_protected_auto(str(run_meta["checkpoint"]))
    preset = get_preset(str(run_meta["preset"])).with_overrides(
        trials=int(run_meta["trials"]),
        test_samples=int(run_meta["test_samples"]),
        image_size=int(meta["image_size"]),
    )
    evaluator = _evaluator_for(
        str(meta["dataset"]),
        preset,
        config=_runtime_config(bool(run_meta.get("runtime", False))),
    )
    injector = FaultInjector(model, fmt=_checkpoint_format(meta))
    campaign = FaultCampaign(
        injector,
        evaluator.bind(model),
        trials=preset.trials,
        seed=int(run_meta["seed"]),
        workers=workers if workers is not None else int(run_meta.get("workers", 0)),
        shard=shard,
        replicas=(
            replicas if replicas is not None else run_meta.get("replicas", "auto")
        ),
    )
    return campaign, evaluator, model, meta


def _drive_campaign_store(campaign, store, rates, limit: int | None) -> int:
    """Run the sweep against its store, handling budget interruption."""
    from repro.store import CampaignInterrupted

    if limit is not None:
        if limit < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"--limit must be >= 1, got {limit}")
        store.max_new_records = limit
    shard_note = (
        f" [shard {campaign.shard[0] + 1}/{campaign.shard[1]}]"
        if campaign.shard is not None
        else ""
    )
    try:
        sweep = campaign.run_sweep(rates, store=store)
    except CampaignInterrupted:
        status = store.status()
        print(
            f"interrupted after {store.appended} new trials "
            f"({status['journaled']}/{status['expected']} journaled)"
            f"{shard_note}"
        )
        print(f"resume with: repro campaign resume --store {store.path}")
        return 0
    for rate in rates:
        result = sweep[rate]
        print(
            f"rate {rate:.1e}: mean {result.mean:.2%}  median "
            f"{result.median:.2%}  min {result.min:.2%}  "
            f"({result.trials} trials, mean {result.flip_counts.mean():.1f} flips)"
            f"{shard_note}"
        )
    print(f"store complete: {store.path} ({store.appended} new trials journaled)")
    return 0


def _require_run_recipe(store_path: str, run_meta: dict[str, object]) -> None:
    """Fail with a pointer when a store lacks the CLI's run recipe."""
    from repro.errors import ConfigurationError

    required = ("checkpoint", "rates", "preset", "trials", "seed", "test_samples")
    missing = [field for field in required if field not in run_meta]
    if missing:
        raise ConfigurationError(
            f"store {store_path!r} records no run recipe (meta is missing "
            f"{', '.join(missing)}); it was not created by 'repro campaign "
            "run' — drive it through the library instead"
        )


def _requested_run_meta(args: argparse.Namespace) -> dict[str, object]:
    """The run recipe a ``campaign run``/``serve-store`` request implies."""
    from repro.errors import ConfigurationError

    if not args.rates:
        raise ConfigurationError("--rates needs at least one fault rate")
    preset = _preset_from_args(args)
    return {
        "checkpoint": args.checkpoint,
        "rates": [float(rate) for rate in args.rates],
        "preset": args.preset,
        "trials": preset.trials,
        "seed": preset.seed,
        "test_samples": preset.test_samples,
        "workers": preset.workers,
        "runtime": bool(args.runtime),
        "replicas": args.replicas if args.replicas is not None else "auto",
    }


def _verify_run_recipe(
    store, run_meta: dict[str, object], shard: "tuple[int, int] | None"
) -> dict[str, object]:
    """Match a request against an existing store's recorded recipe.

    Re-running against an existing store is a resume (and joining one as
    a coordinated worker is an admission): the store's recipe (evaluator
    sizes included — they shape the accuracy stream) must match the
    request, or the journal would silently mix trials from two different
    campaigns.  Returns the stored meta (which keeps the recorded
    clean_accuracy baseline); the caller closes the store on error.
    """
    from repro.errors import ConfigurationError

    stored = store.meta
    _require_run_recipe(store.path, stored)
    mismatched = [
        field
        for field in (
            "checkpoint",
            "rates",
            "preset",
            "trials",
            "seed",
            "test_samples",
            "runtime",
        )
        if run_meta[field] != stored.get(field)
    ]
    if shard != store.shard:
        mismatched.append("shard")
    if mismatched:
        raise ConfigurationError(
            f"store {store.path!r} was created with different settings "
            f"(mismatched: {', '.join(mismatched)}); resume it with "
            "'repro campaign resume', or pass matching arguments, or "
            "pick a fresh --store"
        )
    return dict(stored)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.store import CampaignStore

    shard = _parse_shard_spec(args.shard)
    run_meta = _requested_run_meta(args)
    if CampaignStore.exists(args.store):
        store = CampaignStore.open(args.store)
        try:
            run_meta = _verify_run_recipe(store, run_meta, shard)
        except ConfigurationError:
            store.close()
            raise
        if args.workers is not None:
            run_meta["workers"] = args.workers  # scheduling only
        if args.replicas is not None:
            run_meta["replicas"] = args.replicas  # scheduling only
        campaign, _, _, _ = _campaign_for_meta(run_meta, shard)
    else:
        store = None
        campaign, evaluator, model, checkpoint_meta = _campaign_for_meta(
            run_meta, shard
        )
        for field in ("model", "dataset", "method"):
            if field in checkpoint_meta:
                run_meta[field] = checkpoint_meta[field]
        # The fault-free baseline every report measures SDC against;
        # resumed runs read it back from the store instead of
        # re-measuring.
        run_meta["clean_accuracy"] = evaluator.accuracy(model)
    with campaign:
        if store is None:
            store = CampaignStore.for_campaign(args.store, campaign, meta=run_meta)
        else:
            store.attach(campaign)  # identity check, no second journal parse
        with store:
            meta = store.meta
            print(
                f"campaign store {store.path}: "
                f"{meta.get('checkpoint')} ({store.trials} trials/config, "
                f"seed {store.seed}, clean {float(meta['clean_accuracy']):.2%})"
            )
            return _drive_campaign_store(
                campaign, store, [float(r) for r in meta["rates"]], args.limit
            )


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore

    store = CampaignStore.open(args.store)
    run_meta = store.meta
    _require_run_recipe(args.store, run_meta)
    campaign, _, _, _ = _campaign_for_meta(
        run_meta, store.shard, workers=args.workers, replicas=args.replicas
    )
    with campaign:
        with store.attach(campaign):
            status = store.status()
            print(
                f"resuming {store.path}: {status['journaled']}/"
                f"{status['expected']} trials journaled"
            )
            return _drive_campaign_store(
                campaign, store, [float(r) for r in run_meta["rates"]], args.limit
            )


def _print_campaign_status(status: dict) -> None:
    from repro.eval.reporting import format_table

    rows = []
    for config in status["configs"]:
        mean = config["mean_accuracy"]
        converged = config["converged_at"]
        rows.append(
            [
                config["spec"] if not config["tag"] else
                f"{config['tag']}: {config['spec']}",
                f"{config['journaled']}/{config['expected']}",
                f"yes (at {converged})" if converged is not None else "no",
                f"{mean:.2%}" if mean is not None else "-",
            ]
        )
    shard = status["shard"]
    shard_note = f", shard {shard[0] + 1}/{shard[1]}" if shard else ""
    print(
        format_table(
            ["config", "trials", "converged", "mean accuracy"],
            rows,
            title=(
                f"{status['path']} (seed {status['seed']}, "
                f"{status['trials']} trials/config{shard_note})"
            ),
        )
    )
    mean_seconds = status["mean_trial_seconds"]
    remaining = status["expected"] - status["journaled"]
    if status["complete"]:
        print(f"complete: {status['journaled']}/{status['expected']} trials")
    elif mean_seconds:
        print(
            f"{status['journaled']}/{status['expected']} trials "
            f"({mean_seconds:.2f}s/trial, ~{remaining * mean_seconds:.0f}s "
            "remaining)"
        )
    else:
        print(f"{status['journaled']}/{status['expected']} trials")


def _follow_campaign_status(args: argparse.Namespace) -> int:
    """Poll the store's journal; one progress line per poll until complete.

    The live view is built from the same observability registry the
    campaign process feeds: each poll updates gauges in the process
    default registry (so an embedded scraper sees identical numbers)
    and derives the trial rate from the journaled-count delta.
    """
    import time

    from repro.obs.metrics import default_registry
    from repro.store import CampaignStore

    registry = default_registry()
    journaled_gauge = registry.gauge(
        "repro_campaign_status_journaled",
        "Journaled trials seen by the status follower, per store.",
        labelnames=("store",),
    )
    expected_gauge = registry.gauge(
        "repro_campaign_status_expected",
        "Expected trials seen by the status follower, per store.",
        labelnames=("store",),
    )
    previous_journaled: int | None = None
    previous_at = 0.0
    while True:
        # Wall-clock poll pacing only — nothing journaled depends on it.
        now = time.monotonic()  # repro-lint: disable=RPL009
        with CampaignStore.open(args.store) as store:
            status = store.status()
        journaled = int(status["journaled"])
        expected = int(status["expected"])
        journaled_gauge.set(journaled, store=str(status["path"]))
        expected_gauge.set(expected, store=str(status["path"]))
        converged = sum(
            1
            for config in status["configs"]
            if config["converged_at"] is not None
        )
        note = f"converged {converged}/{len(status['configs'])} configs"
        if previous_journaled is not None and now > previous_at:
            rate = (journaled - previous_journaled) / (now - previous_at)
            note += f", {rate:.2f} trials/s"
        mean_seconds = status["mean_trial_seconds"]
        if not status["complete"] and mean_seconds:
            eta = (expected - journaled) * mean_seconds
            note += f", ~{eta:.0f}s remaining"
        print(f"{journaled}/{expected} trials ({note})", flush=True)
        if status["complete"]:
            print(f"complete: {status['path']}")
            return 0
        previous_journaled, previous_at = journaled, now
        time.sleep(args.interval)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore

    if args.follow:
        return _follow_campaign_status(args)
    with CampaignStore.open(args.store) as store:
        status = store.status()
    if args.format == "json":
        from repro.store.encoding import exact_json_dumps

        # The exact-float encoder: accuracies in the JSON view
        # round-trip to the journaled bits.
        print(exact_json_dumps(status, indent=2, sort_keys=True))
        return 0
    _print_campaign_status(status)
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore

    merged = CampaignStore.merge(args.out, args.stores)
    try:
        status = merged.status()
    finally:
        merged.close()
    print(
        f"merged {len(args.stores)} stores into {args.out}: "
        f"{status['journaled']}/{status['expected']} trials across "
        f"{len(status['configs'])} configs"
        + ("" if status["complete"] else " (still incomplete)")
    )
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import os

    from repro.errors import ConfigurationError
    from repro.eval.reporting import format_atlas, format_markdown_table
    from repro.fault.statistics import sdc_probability
    from repro.store import CampaignStore, build_atlas
    from repro.store.encoding import exact_json_dump

    with CampaignStore.open(args.store) as store:
        meta = store.meta
        baseline = args.baseline
        if baseline is None:
            baseline = meta.get("clean_accuracy")
        if baseline is None:
            raise ConfigurationError(
                "store meta records no clean_accuracy; pass --baseline"
            )
        baseline = float(baseline)
        title_bits = [
            str(meta.get(field))
            for field in ("model", "method")
            if meta.get(field) is not None
        ]
        lines = [
            "# Campaign report"
            + (f": {' / '.join(title_bits)}" if title_bits else ""),
            "",
            f"- checkpoint: `{meta.get('checkpoint', 'n/a')}`",
            f"- trials per config: {store.trials} (seed {store.seed})",
            f"- baseline accuracy: {baseline:.2%}"
            f" (SDC tolerance {float(args.tolerance):.2%})",
        ]
        if store.shard is not None:
            lines.append(
                f"- shard: {store.shard[0] + 1}/{store.shard[1]} "
                "(merge the other shards for the full campaign)"
            )
        lines.extend(["", "## Results", ""])
        rows = []
        incomplete = []
        for key in store.config_keys():
            entry = store.config_entry(key)
            label = (
                f"{entry['tag']}: {entry['spec']}"
                if entry["tag"]
                else str(entry["spec"])
            )
            if not store.complete(key):
                incomplete.append(
                    f"{label} ({len(store.missing_indices(key))} trials missing)"
                )
                continue
            result = store.result(key)
            rows.append(
                [
                    label,
                    result.trials,
                    f"{result.mean:.2%}",
                    f"{result.median:.2%}",
                    f"{result.min:.2%}",
                    f"{sdc_probability(result, baseline, args.tolerance):.1%}",
                ]
            )
        if rows:
            lines.append(
                format_markdown_table(
                    ["config", "trials", "mean", "median", "min", "SDC rate"],
                    rows,
                )
            )
        else:
            lines.append("(no complete configurations yet)")
        if incomplete:
            lines.append("")
            lines.append("Incomplete: " + "; ".join(incomplete))
        atlas = build_atlas(store, baseline=baseline, tolerance=args.tolerance)
        text = "\n".join(lines) + "\n\n" + format_atlas(atlas) + "\n"
        out_dir = args.out or store.path

    os.makedirs(out_dir, exist_ok=True)
    report_path = os.path.join(out_dir, "report.md")
    atlas_path = os.path.join(out_dir, "atlas.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    with open(atlas_path, "w", encoding="utf-8") as handle:
        exact_json_dump(atlas, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(text)
    print(f"wrote {report_path} and {atlas_path}")
    return 0


def _cmd_campaign_serve_store(args: argparse.Namespace) -> int:
    """Join a shared store as a coordinated lease-holding worker.

    Create-or-join: the first worker to arrive creates the store and
    registers the full sweep (the manifest is written exactly once);
    every later worker validates its recipe against the stored one and
    is admitted as a journal-segment writer.  Racing creators are
    benign — identical recipes produce identical manifests, and the
    loser of the create race falls through to the join path.
    """
    import signal

    from repro.coord import DEFAULT_CHUNK, DEFAULT_EXPIRY_S, CampaignWorker
    from repro.errors import ConfigurationError
    from repro.fault.fault_model import BitFlipFaultModel
    from repro.store import CampaignStore, StoreError

    run_meta = _requested_run_meta(args)
    campaign = None
    if not CampaignStore.exists(args.store):
        campaign, evaluator, model, checkpoint_meta = _campaign_for_meta(
            run_meta, None
        )
        for field in ("model", "dataset", "method"):
            if field in checkpoint_meta:
                run_meta[field] = checkpoint_meta[field]
        run_meta["clean_accuracy"] = evaluator.accuracy(model)
        try:
            store = CampaignStore.for_campaign(
                args.store, campaign, meta=run_meta
            )
        except StoreError:
            # Lost the create race to a peer worker with (necessarily,
            # per the recipe check below) the same recipe: join instead.
            campaign.close()
            campaign = None
        else:
            with store:
                store.register_configs(
                    [BitFlipFaultModel.at_rate(r) for r in args.rates]
                )
            print(
                f"created campaign store {args.store} "
                f"({len(args.rates)} configs x {run_meta['trials']} trials, "
                f"clean {float(run_meta['clean_accuracy']):.2%})",
                flush=True,
            )
    if campaign is None:
        store = CampaignStore.open(args.store)
        try:
            run_meta = _verify_run_recipe(store, run_meta, None)
        except ConfigurationError:
            store.close()
            raise
        store.close()
        if args.workers is not None:
            run_meta["workers"] = args.workers  # scheduling only
        if args.replicas is not None:
            run_meta["replicas"] = args.replicas  # scheduling only
        campaign, _, _, _ = _campaign_for_meta(run_meta, None)
    fault_models = [
        BitFlipFaultModel.at_rate(float(r)) for r in run_meta["rates"]
    ]
    with campaign:
        worker = CampaignWorker(
            campaign,
            args.store,
            fault_models,
            worker_id=args.worker_id,
            chunk=args.chunk if args.chunk is not None else DEFAULT_CHUNK,
            expiry_s=args.expiry if args.expiry is not None else DEFAULT_EXPIRY_S,
            poll_s=args.poll,
            max_trials=args.limit,
        )
        # SIGTERM drains gracefully: finish the in-flight trial, hand
        # the rest of the range back, release the lease.  (SIGKILL is
        # the crash path the lease protocol itself covers.)
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: worker.request_stop()
        )
        try:
            print(
                f"worker {worker.worker_id} joining {args.store} "
                f"(chunk {worker.chunk}, lease expiry {worker.expiry_s:g}s)",
                flush=True,
            )
            report = worker.run()
        finally:
            signal.signal(signal.SIGTERM, previous)
    summary = (
        f"worker {report['worker']}: {report['trials']} trials across "
        f"{report['claims']} claims, {report['steals']} steals"
    )
    if report["complete"]:
        print(f"store complete; {summary}")
    else:
        print(
            f"stopped with work left; {summary} — rerun serve-store "
            "(or let peers finish) to drain the remainder"
        )
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    """Live control-plane view: convergence, worker liveness, claims."""
    import time

    from repro.coord import WatchApp, coord_status, render_watch, update_gauges
    from repro.coord.watch import RateMeter
    from repro.store.encoding import exact_json_dumps

    server = None
    if args.http is not None:
        from repro.serve.http import ReproServer

        server = ReproServer(
            WatchApp(args.store), host=args.host, port=args.http
        )
        server.start()
        print(f"watch endpoint: {server.url}/v1/campaign", flush=True)
    meter = RateMeter()
    try:
        while True:
            status = coord_status(args.store)
            update_gauges(status)
            rate = meter.update(int(status["journaled"]))
            if args.format == "json":
                print(exact_json_dumps(status, sort_keys=True), flush=True)
            else:
                print(render_watch(status, rate), flush=True)
            if args.once:
                return 0
            if status["complete"]:
                print(f"complete: {status['path']}", flush=True)
                return 0
            time.sleep(args.interval)
    finally:
        if server is not None:
            server.stop()


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import load_protected_auto
    from repro.runtime.plan import compile_model

    model, meta = load_protected_auto(args.checkpoint)
    image_size = int(meta["image_size"])
    in_channels = int(meta.get("in_channels", 3))
    shape = (args.batch, in_channels, image_size, image_size)
    plan = compile_model(model, shape)
    if args.replicas:
        return _profile_replicas(args, plan, model, meta, shape)
    profile = plan.profile(repeats=args.repeats, warmup=args.warmup)
    print(
        f"profile {args.checkpoint}: {meta['model']}/{meta['dataset']} "
        f"({meta['method']}), input {shape}, "
        f"{args.repeats} forwards after {args.warmup} warmup"
    )
    print(profile.table())
    if args.trace_out:
        count = profile.write_chrome_trace(args.trace_out)
        print(
            f"wrote {count} trace events to {args.trace_out} "
            "(open at https://ui.perfetto.dev)"
        )
    return 0


def _profile_replicas(args, plan, model, meta: dict, shape) -> int:
    """Split a replica group's shared clean pass from its per-lane suffixes.

    Samples one single-flip fault per lane (the replica-batched
    campaign's dominant regime), runs one prepared clean forward plus a
    lane suffix per fault, and prints both per-kernel tables — the
    shared GEMM work every lane amortises versus the per-lane fault-step
    cost that scales with the group width.
    """
    from repro.fault.fault_model import BitFlipFaultModel
    from repro.fault.injector import FaultInjector

    injector = FaultInjector(model, fmt=_checkpoint_format(meta))
    fault_model = BitFlipFaultModel(n_flips=1)
    site_sets = [
        injector.sample(fault_model, rng=lane) for lane in range(args.replicas)
    ]
    replica = plan.replicate(args.replicas)
    shared, lanes = replica.profile_lanes(injector, site_sets)
    # Profile rows are per-forward means: the shared table is the one
    # clean pass, the lanes table the mean suffix re-run per lane.
    amortised_ms = shared.total_ms / args.replicas + lanes.total_ms
    print(
        f"replica profile {args.checkpoint}: {meta['model']}/{meta['dataset']} "
        f"({meta['method']}), input {shape}, {args.replicas} lanes "
        "(1 flip/lane)"
    )
    print()
    print(
        f"shared clean pass ({shared.total_ms:.3f} ms, amortised over "
        f"{args.replicas} lanes):"
    )
    print(shared.table())
    print()
    print(f"lane suffixes (mean {lanes.total_ms:.3f} ms/lane):")
    print(lanes.table())
    print()
    full = plan.profile(repeats=1, warmup=1)
    if full.total_ms > 0 and amortised_ms > 0:
        print(
            f"per-trial forward {full.total_ms:.3f} ms vs "
            f"{amortised_ms:.3f} ms/lane replica-batched "
            f"({full.total_ms / amortised_ms:.2f}x)"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import all_rules, lint_paths, render_json, render_text
    from repro.analysis.baseline import Baseline

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    baseline_path = None if args.no_baseline else args.baseline
    result = lint_paths(args.paths, baseline=baseline_path)

    if args.update_baseline:
        if result.errors:
            for error in result.errors:
                print(f"{error.location}: error: {error.message}", file=sys.stderr)
            print("refusing to update the baseline with unparsable files", file=sys.stderr)
            return 2
        # Carry existing justification notes forward by (rule, path).
        previous = Baseline.load(args.baseline)
        notes = {
            (entry.rule, entry.path): entry.note
            for entry in previous.entries
            if entry.note
        }
        count = Baseline.write(args.baseline, result.unfiltered, notes=notes)
        print(f"wrote {count} baseline entries to {args.baseline}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code()


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from repro.eval.experiments import EXPERIMENTS

    if args.id not in EXPERIMENTS:
        print(
            f"unknown experiment {args.id!r}; run 'repro list-experiments'",
            file=sys.stderr,
        )
        return 2
    runner = EXPERIMENTS[args.id]
    preset = _preset_from_args(args)  # validates the preset name either way
    kwargs = {}
    if "preset" in inspect.signature(runner).parameters:
        kwargs["preset"] = preset
    result = runner(**kwargs)
    print(result.to_text())
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "FitAct reproduction: error-resilient DNNs via fine-grained "
            "post-trainable activation functions (DATE 2022)."
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning"),
        default=None,
        help=(
            "library-wide log verbosity (debug also prints every closed "
            "tracing span); place before the subcommand"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "enable span tracing for this invocation and write the "
            "Chrome-trace/Perfetto JSON to PATH on exit; place before "
            "the subcommand"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-models", help="model zoo with parameter counts")
    p.add_argument("--scale", type=float, default=0.125, help="width multiplier")
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--image-size", type=int, default=32)
    p.set_defaults(func=_cmd_list_models)

    p = sub.add_parser("list-experiments", help="experiment registry by id")
    p.set_defaults(func=_cmd_list_experiments)

    p = sub.add_parser("info", help="one model's structure and memory")
    p.add_argument("--model", required=True)
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--classes", type=int, default=10)
    p.add_argument("--image-size", type=int, default=32)
    p.add_argument("--verbose", action="store_true", help="print the module tree")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("train", help="train (or load cached) base weights")
    p.add_argument("--model", required=True)
    p.add_argument("--dataset", default="synth10", help="synth10 | synth100")
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("protect", help="protect a trained model, save checkpoint")
    p.add_argument("--model", required=True)
    p.add_argument("--dataset", default="synth10")
    p.add_argument(
        "--method",
        default="fitact",
        help="fitact | fitact-naive | clipact | ranger | tanh | none",
    )
    p.add_argument("--out", required=True, help="checkpoint path (.npz)")
    p.add_argument(
        "--format",
        default="Q15.16",
        help=(
            "fixed-point quantisation format, e.g. Q15.16 or Q7.8; "
            "recorded in the checkpoint manifest so 'evaluate' injects "
            "faults into the matching bit-space (default: Q15.16)"
        ),
    )
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_protect)

    p = sub.add_parser("evaluate", help="evaluate a protected checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument(
        "--rates",
        type=float,
        nargs="*",
        default=(),
        help="fault rates for an under-fault campaign (e.g. 1e-6 3e-6)",
    )
    p.add_argument(
        "--runtime",
        action="store_true",
        help=(
            "evaluate through the compiled inference runtime "
            "(repro.runtime; bit-identical results, faster trials)"
        ),
    )
    p.add_argument(
        "--runtime-threads",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "thread the runtime's conv GEMM pipelines across N workers "
            "(0 = one per usable core; default: serial — results are "
            "bit-identical either way); requires --runtime"
        ),
    )
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "serve", help="serve protected checkpoints over HTTP (batched)"
    )
    p.add_argument(
        "--checkpoint",
        required=True,
        action="append",
        metavar="[NAME=]PATH",
        help=(
            "protected checkpoint to serve; repeat for multiple models "
            "(name defaults to the file stem)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8080,
        help="listening port (0 = ephemeral; the resolved port is printed)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="samples per coalesced forward pass (default: 32)",
    )
    p.add_argument(
        "--max-latency-ms",
        type=float,
        default=5.0,
        help="how long an open batch waits for more requests (default: 5)",
    )
    p.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="batch-execution threads per model (default: 1)",
    )
    p.add_argument(
        "--registry-capacity",
        type=int,
        default=4,
        help="models resident at once before LRU eviction (default: 4)",
    )
    p.add_argument(
        "--chaos-ber",
        type=float,
        default=None,
        help=(
            "enable chaos mode: per-bit fault rate injected into the live "
            "model around every batch (e.g. 1e-5); SDC counters appear "
            "in /metrics"
        ),
    )
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="base seed for the deterministic chaos fault stream",
    )
    p.add_argument(
        "--runtime",
        action="store_true",
        help=(
            "compile each resident checkpoint into the inference "
            "runtime's fast path (bit-identical predictions, lower "
            "batch latency; chaos-compatible)"
        ),
    )
    p.add_argument(
        "--preload",
        action="store_true",
        help=(
            "load checkpoints, compile runtime plans, and build serving "
            "lanes at startup (up to the registry capacity) instead of "
            "inside the first request; reported in /healthz"
        ),
    )
    p.add_argument(
        "--front",
        choices=("threaded", "async"),
        default="threaded",
        help=(
            "HTTP front: 'threaded' (thread per connection) or 'async' "
            "(one asyncio event loop; in-flight requests cost no thread) "
            "— identical /v1 responses either way (default: threaded)"
        ),
    )
    p.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help=(
            "worker processes holding the models and compiled plans; "
            "micro-batches fan out to idle workers and dead workers "
            "restart in place (0 = serve in-process; default: 0)"
        ),
    )
    p.add_argument(
        "--mp-start",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method for --workers (default: spawn)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help=(
            "requests allowed pending server-wide before admission sheds "
            "with HTTP 429 + Retry-After (default: 256)"
        ),
    )
    p.add_argument(
        "--model-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-model pending bound (<= --max-pending) so one hot model "
            "cannot starve the rest of the queue (default: global only)"
        ),
    )
    p.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "arm the latency SLO tracker with this p99 target; /v1/healthz "
            "reports p50/p99 and the 1%%-error-budget burn rate"
        ),
    )
    p.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        help=(
            "seconds SIGTERM shutdown waits for in-flight batches to "
            "drain across lanes and worker processes (default: 10)"
        ),
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "campaign",
        help="durable fault-injection campaigns backed by an on-disk store",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    c = campaign_sub.add_parser(
        "run",
        help=(
            "run a fault-rate sweep, journaling every trial to a store "
            "(pointing at an existing store resumes it)"
        ),
    )
    c.add_argument("--checkpoint", required=True, help="protected checkpoint (.npz)")
    c.add_argument(
        "--store",
        required=True,
        help="campaign store directory (created if absent)",
    )
    c.add_argument(
        "--rates",
        type=float,
        nargs="+",
        required=True,
        help="fault rates of the sweep (e.g. 1e-6 3e-6 1e-5)",
    )
    c.add_argument(
        "--shard",
        metavar="i/n",
        default=None,
        help=(
            "run only the i-th of n disjoint trial slices (1-based) — "
            "each shard journals its own store; fold them with "
            "'campaign merge'"
        ),
    )
    c.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help=(
            "journal at most N new trials this invocation, then stop "
            "cleanly (time-boxed incremental runs; resume to continue)"
        ),
    )
    c.add_argument(
        "--runtime",
        action="store_true",
        help="evaluate trials through the compiled inference runtime",
    )
    c.add_argument(
        "--replicas",
        type=_replicas_spec,
        default=None,
        metavar="N|auto|off",
        help=(
            "replica-batched evaluation: schedule trials in N-lane groups "
            "that share each batch's clean forward (bit-identical results; "
            "default auto picks a group width when the evaluator supports "
            "it; 'off' forces the per-trial path)"
        ),
    )
    _add_preset_arguments(c)
    c.set_defaults(func=_cmd_campaign_run)

    c = campaign_sub.add_parser(
        "resume",
        help="continue an interrupted campaign from its store's journal",
    )
    c.add_argument("--store", required=True)
    c.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=None,
        help="override the stored worker count (results are identical)",
    )
    c.add_argument(
        "--replicas",
        type=_replicas_spec,
        default=None,
        metavar="N|auto|off",
        help="override the stored replica group width (results are identical)",
    )
    c.add_argument("--limit", type=int, default=None, metavar="N")
    c.set_defaults(func=_cmd_campaign_resume)

    c = campaign_sub.add_parser(
        "status", help="journal progress of a campaign store"
    )
    c.add_argument("--store", required=True)
    c.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help=(
            "table (human) or json (the store's status dict through the "
            "exact-float encoder, for scripts)"
        ),
    )
    c.add_argument(
        "--follow",
        action="store_true",
        help=(
            "poll the journal and print a progress line (trial rate, "
            "ETA, per-config convergence) until the campaign completes"
        ),
    )
    c.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="polling interval for --follow (default: 2)",
    )
    c.set_defaults(func=_cmd_campaign_status)

    c = campaign_sub.add_parser(
        "merge", help="fold shard stores into one campaign store"
    )
    c.add_argument("--out", required=True, help="merged store directory (created)")
    c.add_argument("stores", nargs="+", help="shard store directories")
    c.set_defaults(func=_cmd_campaign_merge)

    c = campaign_sub.add_parser(
        "report",
        help=(
            "render results + the layer/bit vulnerability atlas "
            "(report.md + atlas.json)"
        ),
    )
    c.add_argument("--store", required=True)
    c.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="SDC accuracy-drop tolerance (default: 0.01)",
    )
    c.add_argument(
        "--baseline",
        type=float,
        default=None,
        help="fault-free baseline accuracy (default: the store's recorded one)",
    )
    c.add_argument(
        "--out",
        default=None,
        help="artifact directory (default: the store itself)",
    )
    c.set_defaults(func=_cmd_campaign_report)

    c = campaign_sub.add_parser(
        "serve-store",
        help=(
            "join a shared store as a coordinated worker (lease + "
            "work-stealing; the first worker creates the store and "
            "registers the sweep)"
        ),
    )
    c.add_argument("--checkpoint", required=True, help="protected checkpoint (.npz)")
    c.add_argument(
        "--store",
        required=True,
        help="shared campaign store directory (created by the first worker)",
    )
    c.add_argument(
        "--rates",
        type=float,
        nargs="+",
        required=True,
        help="fault rates of the sweep (must match the store's recipe)",
    )
    c.add_argument(
        "--worker-id",
        default=None,
        help=(
            "unique worker id — names the lease and this worker's journal "
            "segment (default: per-process unique; multi-host fleets "
            "should pass hostname-derived ids)"
        ),
    )
    c.add_argument(
        "--chunk",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "trials per claimed range (default: 8) — smaller chunks "
            "rebalance stragglers faster, larger ones amortise claim I/O"
        ),
    )
    c.add_argument(
        "--expiry",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "lease expiry (default: 30) — peers may steal this worker's "
            "ranges after this long without a heartbeat"
        ),
    )
    c.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle re-scan interval while peers hold all remaining work",
    )
    c.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="journal at most N fresh trials, then hand back the rest",
    )
    c.add_argument(
        "--runtime",
        action="store_true",
        help="evaluate trials through the compiled inference runtime",
    )
    c.add_argument(
        "--replicas",
        type=_replicas_spec,
        default=None,
        metavar="N|auto|off",
        help="replica-batched evaluation (scheduling only; see 'run')",
    )
    _add_preset_arguments(c)
    c.set_defaults(func=_cmd_campaign_serve_store)

    c = campaign_sub.add_parser(
        "watch",
        help=(
            "live control-plane view of a shared store: convergence, "
            "per-worker liveness, in-flight claims, steal counts"
        ),
    )
    c.add_argument("--store", required=True)
    c.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="table (human) or json (one exact-float payload per poll)",
    )
    c.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="polling interval (default: 2)",
    )
    c.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit",
    )
    c.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "also serve the status over HTTP (GET /v1/campaign, plus "
            "/v1/metrics and /v1/healthz) on this port; 0 = ephemeral"
        ),
    )
    c.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    c.set_defaults(func=_cmd_campaign_watch)

    p = sub.add_parser(
        "profile",
        help="per-kernel gather/GEMM/epilogue timing of a compiled plan",
        description=(
            "Compile the checkpoint into the inference runtime, run a few "
            "profiled forwards (under warmup mode — side-band by "
            "construction), and print the per-layer timing table.  "
            "--trace writes the raw step/phase intervals as Chrome-trace "
            "JSON for https://ui.perfetto.dev."
        ),
    )
    p.add_argument("checkpoint", help="protected checkpoint (.npz)")
    p.add_argument(
        "--batch", type=int, default=1, help="input batch size (default: 1)"
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="profiled forwards to average over (default: 3)",
    )
    p.add_argument(
        "--warmup",
        type=_nonnegative_int,
        default=1,
        help="untimed warmup forwards (default: 1)",
    )
    p.add_argument(
        "--trace",
        dest="trace_out",
        metavar="PATH",
        default=None,
        help="write the per-kernel Chrome-trace JSON to PATH",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help=(
            "profile an N-lane replica group instead: per-kernel tables "
            "for the shared clean pass and the per-lane fault suffixes"
        ),
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("experiment", help="regenerate a paper artefact by id")
    p.add_argument("--id", required=True, help="see 'repro list-experiments'")
    _add_preset_arguments(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "lint",
        help="check the repo's correctness invariants (rules RPL001-RPL010)",
        description=(
            "AST-based invariant linter: plan-invalidation, thread-safe "
            "eval mode, bit-exact GEMM routing, journal determinism, "
            "exact-float JSON, import layering, pickle safety, fault "
            "restoration, funneled timing, replica-lane GEMM shapes.  "
            "Exit codes: 0 clean, 1 "
            "findings, 2 unparsable files or bad usage.  See "
            "docs/INVARIANTS.md."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (text: clickable path:line:col; json: CI artifact)",
    )
    p.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="grandfathered-findings file (default: lint-baseline.json)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings too",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover every current finding",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule ids and summaries, then exit",
    )
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    np.seterr(over="ignore")  # faulty Q15.16 extremes overflow exp() benignly
    if args.log_level is not None:
        from repro.utils.logging import set_verbosity

        set_verbosity(args.log_level.upper())
    if args.trace is not None:
        from repro.obs.trace import configure_tracing

        configure_tracing(True)
    try:
        return int(args.func(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if args.trace is not None:
            from repro.obs.trace import export_chrome_trace, reset_tracing

            count = export_chrome_trace(args.trace)
            reset_tracing()  # embedded callers (tests) get a clean tracer
            print(
                f"wrote {count} trace events to {args.trace}", file=sys.stderr
            )
