"""Lease-based campaign control plane: many workers, one store.

``repro.coord`` turns the durable campaign store (:mod:`repro.store`)
into a *service* a fleet can drain together:

- :mod:`~repro.coord.lease` — advisory heartbeat leases with
  filesystem-clock staleness, so peers can tell a live worker's claims
  from a corpse's (SIGKILL included);
- :mod:`~repro.coord.scheduler` — work-stealing dynamic trial ranges
  with fencing tokens, replacing the static ``shard=(i, n)`` split;
- :mod:`~repro.coord.worker` — the join/claim/evaluate/journal loop
  behind ``repro campaign serve-store``;
- :mod:`~repro.coord.watch` — live status views (terminal, JSON,
  ``GET /v1/campaign``) and the ``repro_campaign_worker_*`` gauges.

The identity contract is absolute: a multi-worker, steal-heavy,
crash-interrupted drain produces artifacts byte-identical to a serial
run, because trial seeds are schedule-independent and every journal
record is attributable to its trial index alone.
"""

from repro.coord.lease import (
    DEFAULT_EXPIRY_S,
    CoordError,
    LeaseInfo,
    WorkerLease,
    fs_now,
    list_leases,
)
from repro.coord.scheduler import Claim, ClaimHandle, RangeScheduler, list_claims
from repro.coord.watch import WatchApp, coord_status, render_watch, update_gauges
from repro.coord.worker import DEFAULT_CHUNK, CampaignWorker

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_EXPIRY_S",
    "CampaignWorker",
    "Claim",
    "ClaimHandle",
    "CoordError",
    "LeaseInfo",
    "RangeScheduler",
    "WatchApp",
    "WorkerLease",
    "coord_status",
    "fs_now",
    "list_claims",
    "list_leases",
    "render_watch",
    "update_gauges",
]
