"""Advisory lease files: crash-safe worker liveness over a shared store.

Every coordinated worker (:class:`repro.coord.worker.CampaignWorker`)
holds one lease file under ``<store>/coord/leases/<worker>.json`` for as
long as it participates in a campaign:

- the file carries the worker's id, a **monotonic beat counter**, its
  expiry window, and progress tallies (trials journaled, ranges stolen);
- a daemon heartbeat thread atomically rewrites it (temp file +
  ``os.replace``) every quarter-expiry, so the file's mtime advances
  while the worker lives and freezes the moment it dies — SIGKILL
  included, which is the whole point: liveness needs no cooperation
  from the corpse;
- a clean shutdown writes ``released: true``, letting peers reclaim the
  worker's ranges immediately instead of waiting out the expiry.

**Staleness is judged against the filesystem's clock, not the local
wall clock**: :func:`fs_now` touches a probe file next to the leases and
reads back its mtime.  Lease age is then ``fs_now - lease mtime`` — two
timestamps issued by the same filesystem — so workers on hosts with
skewed clocks still agree on who is stale, and the coordination layer
stays free of wall-clock reads on journaled paths (RPL004; lease files
are side-band and never feed artifact bytes).

Leases are *advisory*: they gate nothing by themselves.  Mutual
exclusion over trial ranges comes from the claim files
(:mod:`repro.coord.scheduler`), whose fencing tokens make even a
wrongly-presumed-dead worker harmless.
"""

from __future__ import annotations

import json
import os
import threading

from dataclasses import dataclass

from repro.errors import ReproError
from repro.utils.logging import get_logger

__all__ = [
    "DEFAULT_EXPIRY_S",
    "CoordError",
    "LeaseInfo",
    "WorkerLease",
    "claim_dir",
    "coord_root",
    "ensure_coord_dirs",
    "fs_now",
    "lease_dir",
    "list_leases",
    "read_lease",
]

_logger = get_logger("coord.lease")

_COORD_DIR = "coord"
_LEASE_DIR = "leases"
_CLAIM_DIR = "claims"
_SUFFIX = ".json"

#: Default lease expiry.  Heartbeats land every quarter of this, so a
#: worker survives three missed beats before peers may steal its ranges.
DEFAULT_EXPIRY_S = 30.0

#: Worker ids become lease/segment file names; keep them flat.
_WORKER_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


class CoordError(ReproError):
    """A coordination-protocol violation (bad join, lost lease, …)."""


def validated_worker_id(worker: str) -> str:
    """Check a worker id is usable as a lease/segment file name."""
    if not worker or not set(worker) <= _WORKER_CHARS:
        raise CoordError(
            f"invalid worker id {worker!r}: use letters, digits, "
            "'-' and '_' only"
        )
    return worker


def coord_root(store_path: str | os.PathLike[str]) -> str:
    """The coordination directory inside a campaign store."""
    return os.path.join(os.fspath(store_path), _COORD_DIR)


def lease_dir(store_path: str | os.PathLike[str]) -> str:
    return os.path.join(coord_root(store_path), _LEASE_DIR)


def claim_dir(store_path: str | os.PathLike[str]) -> str:
    return os.path.join(coord_root(store_path), _CLAIM_DIR)


def ensure_coord_dirs(store_path: str | os.PathLike[str]) -> str:
    """Create ``coord/{leases,claims}/`` (idempotent); returns the root."""
    root = coord_root(store_path)
    os.makedirs(os.path.join(root, _LEASE_DIR), exist_ok=True)
    os.makedirs(os.path.join(root, _CLAIM_DIR), exist_ok=True)
    return root


def fs_now(store_path: str | os.PathLike[str]) -> float:
    """The *filesystem's* idea of now, in seconds since the epoch.

    Touches a per-process probe file under the coord root and reads its
    mtime back.  Every freshness comparison in this module is between
    two timestamps the same filesystem issued, so multi-host workers on
    a shared mount agree on staleness regardless of local clock skew —
    and no wall clock is ever read.
    """
    root = ensure_coord_dirs(store_path)
    probe = os.path.join(root, f".clock-{os.getpid()}")
    with open(probe, "wb"):
        pass
    os.utime(probe)
    return float(os.stat(probe).st_mtime)


@dataclass(frozen=True)
class LeaseInfo:
    """One lease file's contents plus its age at read time."""

    worker: str
    beat: int
    expiry_s: float
    steals: int
    trials: int
    released: bool
    age_s: float

    @property
    def live(self) -> bool:
        """Fresh and not released — this worker's claims are untouchable."""
        return not self.released and self.age_s <= self.expiry_s


def read_lease(path: str, now: float) -> LeaseInfo | None:
    """Parse one lease file (None if missing or unreadable).

    Lease files are written via atomic replace, so an unreadable one is
    a deleted or foreign file, not a torn write.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        stamp = os.stat(path).st_mtime
    except (OSError, json.JSONDecodeError):
        return None
    try:
        return LeaseInfo(
            worker=str(raw["worker"]),
            beat=int(raw["beat"]),
            expiry_s=float(raw["expiry_s"]),
            steals=int(raw["steals"]),
            trials=int(raw["trials"]),
            released=bool(raw["released"]),
            age_s=max(0.0, now - stamp),
        )
    except (KeyError, TypeError, ValueError):
        return None


def list_leases(store_path: str | os.PathLike[str]) -> dict[str, LeaseInfo]:
    """All readable leases in the store's coord dir, by worker id."""
    directory = lease_dir(store_path)
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return {}
    now = fs_now(store_path)
    leases: dict[str, LeaseInfo] = {}
    for name in names:
        if not name.endswith(_SUFFIX):
            continue
        info = read_lease(os.path.join(directory, name), now)
        if info is not None:
            leases[info.worker] = info
    return leases


class WorkerLease:
    """One worker's heartbeat lease; a daemon thread keeps it fresh.

    Use as a context manager (or :meth:`acquire`/:meth:`release`):
    acquisition refuses a worker id whose lease is still live, writes
    the initial lease file, and starts the heartbeat; release stops the
    heartbeat and marks the lease ``released`` so peers reclaim this
    worker's ranges without waiting out the expiry.
    """

    def __init__(
        self,
        store_path: str | os.PathLike[str],
        worker: str,
        expiry_s: float = DEFAULT_EXPIRY_S,
    ) -> None:
        if expiry_s <= 0.0:
            raise CoordError(f"lease expiry must be > 0, got {expiry_s}")
        self.store_path = os.fspath(store_path)
        self.worker = validated_worker_id(worker)
        self.expiry_s = float(expiry_s)
        self.path = os.path.join(lease_dir(store_path), worker + _SUFFIX)
        self._beat = 0
        self._steals = 0
        self._trials = 0
        self._released = False
        self._held = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __getstate__(self) -> None:
        raise TypeError("WorkerLease holds a heartbeat thread; not picklable")

    @property
    def steals(self) -> int:
        return self._steals

    @property
    def trials(self) -> int:
        return self._trials

    def acquire(self) -> "WorkerLease":
        ensure_coord_dirs(self.store_path)
        existing = read_lease(self.path, fs_now(self.store_path))
        if existing is not None and existing.live:
            raise CoordError(
                f"worker id {self.worker!r} already holds a live lease on "
                f"{self.store_path!r} (beat {existing.beat}, age "
                f"{existing.age_s:.1f}s); pick a unique id per process"
            )
        with self._lock:
            self._released = False
            self._write()
        self._held = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat, name=f"lease-{self.worker}", daemon=True
        )
        self._thread.start()
        _logger.info(
            "worker %s leased %s (expiry %.1fs)",
            self.worker,
            self.store_path,
            self.expiry_s,
        )
        return self

    def _payload(self) -> dict[str, object]:
        return {
            "worker": self.worker,
            "beat": self._beat,
            "expiry_s": self.expiry_s,
            "steals": self._steals,
            "trials": self._trials,
            "released": self._released,
        }

    def _write(self) -> None:
        """Atomic rewrite — readers never see a torn lease."""
        tmp = f"{self.path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._payload(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def _heartbeat(self) -> None:
        interval = max(self.expiry_s / 4.0, 0.02)
        while not self._stop.wait(interval):
            with self._lock:
                if self._released:
                    break
                self._beat += 1
                self._write()

    def beat(self) -> None:
        """Refresh the lease now (the heartbeat thread normally does)."""
        with self._lock:
            self._beat += 1
            self._write()

    def note_steal(self) -> None:
        """Tally a stolen range (surfaces in ``campaign watch``)."""
        with self._lock:
            self._steals += 1
            self._write()

    def note_trials(self, count: int) -> None:
        """Tally journaled trials (surfaces in ``campaign watch``)."""
        with self._lock:
            self._trials += int(count)
            self._write()

    def release(self) -> None:
        """Clean shutdown: stop the heartbeat, mark the lease released."""
        if not self._held:
            return
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        with self._lock:
            self._released = True
            self._write()
        self._held = False
        _logger.info("worker %s released its lease", self.worker)

    def __enter__(self) -> "WorkerLease":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()
