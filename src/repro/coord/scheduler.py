"""Work-stealing range claims: dynamic trial partitioning with fencing.

The static ``shard=(i, n)`` split (PR 5) assigns trial slices up front;
a straggler or crashed host strands its slice until a human intervenes.
This module replaces that with **dynamic range claims** over one shared
store:

- the trial space of every configuration is cut into chunk-aligned
  ranges ``[k*chunk, (k+1)*chunk)``;
- a worker *claims* a range by creating
  ``<store>/coord/claims/<cfg>-<start>-<stop>.json`` with
  ``O_CREAT``-exclusive semantics (content-complete via the hard-link
  trick: write a private temp file, ``os.link`` it into place — link
  either fully succeeds or raises ``FileExistsError``);
- a range whose owner's lease (:mod:`repro.coord.lease`) is stale or
  released is **stolen**: the thief writes a replacement claim carrying
  its own worker id and the old **fencing token + 1**, installed by
  atomic rename (``os.replace``).  The previous owner — maybe paused
  mid-trial, maybe about to resume — re-reads the claim before every
  journal append (:meth:`ClaimHandle.verify`); the moment the worker id
  or fence no longer matches, it abandons the range without writing.

Fencing makes takeover *safe*, not merely likely: a resumed-from-pause
worker can never append under a claim it lost.  And because trial seeds
are schedule-independent, even the benign races that remain (two
workers briefly evaluating the same range around a steal) produce
*equal* records that the store deduplicates on load — duplicated work
costs wall-clock, never correctness, and artifacts stay byte-identical
to a serial run.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.coord.lease import (
    CoordError,
    LeaseInfo,
    claim_dir,
    ensure_coord_dirs,
)
from repro.utils.logging import get_logger

__all__ = [
    "Claim",
    "ClaimHandle",
    "RangeScheduler",
    "list_claims",
    "read_claim",
]

_logger = get_logger("coord.scheduler")

_SUFFIX = ".json"


@dataclass(frozen=True)
class Claim:
    """One claimed trial range of one configuration.

    ``fence`` is the range's monotonic fencing token: it starts at 1 on
    first claim and every steal increments it, so any two owners of the
    same range in history hold distinct tokens.
    """

    config: str
    start: int
    stop: int
    worker: str
    fence: int

    def indices(self) -> range:
        return range(self.start, self.stop)


def _claim_name(config: str, start: int, stop: int) -> str:
    """Deterministic claim file name (config keys aren't path-safe)."""
    digest = hashlib.sha256(config.encode("utf-8")).hexdigest()[:12]
    return f"{digest}-{start:08d}-{stop:08d}{_SUFFIX}"


def _claim_payload(claim: Claim) -> bytes:
    return json.dumps(
        {
            "config": claim.config,
            "start": claim.start,
            "stop": claim.stop,
            "worker": claim.worker,
            "fence": claim.fence,
        },
        sort_keys=True,
    ).encode("utf-8")


def read_claim(path: str) -> Claim | None:
    """Parse one claim file (None if missing or unreadable)."""
    try:
        with open(path, "rb") as handle:
            raw = json.loads(handle.read())
        return Claim(
            config=str(raw["config"]),
            start=int(raw["start"]),
            stop=int(raw["stop"]),
            worker=str(raw["worker"]),
            fence=int(raw["fence"]),
        )
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def list_claims(store_path: str | os.PathLike[str]) -> list["ClaimHandle"]:
    """All readable claims in the store's coord dir, by file name."""
    directory = claim_dir(store_path)
    try:
        names = sorted(os.listdir(directory))
    except FileNotFoundError:
        return []
    handles = []
    for name in names:
        if not name.endswith(_SUFFIX):
            continue
        path = os.path.join(directory, name)
        claim = read_claim(path)
        if claim is not None:
            handles.append(ClaimHandle(path=path, claim=claim))
    return handles


@dataclass(frozen=True)
class ClaimHandle:
    """A claim as held (or observed) by one worker."""

    path: str
    claim: Claim

    def current(self) -> Claim | None:
        return read_claim(self.path)

    def verify(self) -> bool:
        """Is this exact (worker, fence) claim still installed?

        The fencing check: called before every journal append by the
        owning worker.  False the instant a thief's replacement (or a
        GC unlink) lands, no matter how long the owner was paused.
        """
        current = self.current()
        return (
            current is not None
            and current.worker == self.claim.worker
            and current.fence == self.claim.fence
        )

    def release(self) -> None:
        """Drop the claim if still ours (unfinished-range hand-back).

        A stolen claim is left alone — unlinking it would erase the
        thief's claim, not ours.  The unavoidable verify-then-unlink
        race window is benign for the same reason steals are: worst
        case, a freshly-installed claim is GC'd and its range gets
        re-claimed and re-evaluated to equal records.
        """
        if self.verify():
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass


class RangeScheduler:
    """Hands one worker dynamic trial ranges over a shared store.

    Stateless between calls by design: every :meth:`next_claim` decision
    is made against a fresh journal scan and lease listing passed in by
    the worker loop, so schedulers on different hosts need no channel
    beyond the store directory itself.
    """

    def __init__(
        self,
        store_path: str | os.PathLike[str],
        worker: str,
        trials: int,
        chunk: int,
        configs: list[str],
    ) -> None:
        if chunk < 1:
            raise CoordError(f"chunk must be >= 1, got {chunk}")
        if trials < 1:
            raise CoordError(f"trials must be >= 1, got {trials}")
        self.store_path = os.fspath(store_path)
        self.worker = worker
        self.trials = int(trials)
        self.chunk = int(chunk)
        #: Config keys in manifest order — all workers walk the sweep in
        #: the same order, so they converge on the same configs instead
        #: of spreading one worker per rate.
        self.configs = list(configs)
        ensure_coord_dirs(self.store_path)

    # ------------------------------------------------------------------
    # Claim-file primitives
    # ------------------------------------------------------------------
    def _claim_path(self, config: str, start: int, stop: int) -> str:
        return os.path.join(
            claim_dir(self.store_path), _claim_name(config, start, stop)
        )

    def _try_claim(self, config: str, start: int, stop: int) -> ClaimHandle | None:
        """First-claimer-wins acquisition (atomic create, full content)."""
        claim = Claim(
            config=config, start=start, stop=stop, worker=self.worker, fence=1
        )
        path = self._claim_path(config, start, stop)
        tmp = f"{path}.new-{self.worker}"
        with open(tmp, "wb") as handle:
            handle.write(_claim_payload(claim))
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return None
        finally:
            os.unlink(tmp)
        return ClaimHandle(path=path, claim=claim)

    def _steal(self, handle: ClaimHandle) -> ClaimHandle:
        """Replace a stale owner's claim: fence + 1, atomic rename."""
        stolen = replace(handle.claim, worker=self.worker, fence=handle.claim.fence + 1)
        tmp = f"{handle.path}.steal-{self.worker}"
        with open(tmp, "wb") as out:
            out.write(_claim_payload(stolen))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, handle.path)
        _logger.info(
            "worker %s stole trials [%d, %d) of %r from %s (fence %d)",
            self.worker,
            stolen.start,
            stolen.stop,
            stolen.config,
            handle.claim.worker,
            stolen.fence,
        )
        return ClaimHandle(path=handle.path, claim=stolen)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def ranges(self) -> list[tuple[int, int]]:
        """The chunk-aligned ranges every config's trial space cuts into."""
        return [
            (start, min(start + self.chunk, self.trials))
            for start in range(0, self.trials, self.chunk)
        ]

    def next_claim(
        self,
        journaled: dict[str, set[int]],
        leases: dict[str, LeaseInfo],
        on_steal: Callable[[], None] | None = None,
    ) -> ClaimHandle | None:
        """Claim the next range with work left, stealing from the dead.

        Walks configs in manifest order and ranges in trial order.  For
        each incomplete range: unclaimed → claim it; claimed by a live
        worker → skip; claimed by a stale/released worker → steal it
        (``on_steal`` fires once per steal, feeding the lease tally).
        Fully-journaled ranges get their leftover claim files collected.
        Returns None when nothing is claimable right now — the caller
        distinguishes "campaign complete" from "peers hold everything"
        via the journal scan it already has.
        """
        for config in self.configs:
            done = journaled.get(config, set())
            # No early-out on complete configs: the range walk below is
            # also the garbage collector for their leftover claim files
            # (a crashed owner's claim would otherwise linger forever).
            for start, stop in self.ranges():
                missing = [t for t in range(start, stop) if t not in done]
                existing_path = self._claim_path(config, start, stop)
                existing = read_claim(existing_path)
                if not missing:
                    # Range complete: the claim file (ours or a corpse's)
                    # is garbage now; anyone may collect it.
                    if existing is not None:
                        try:
                            os.unlink(existing_path)
                        except FileNotFoundError:
                            pass
                    continue
                if existing is None:
                    handle = self._try_claim(config, start, stop)
                    if handle is not None:
                        return handle
                    continue  # raced another claimer; move on
                if existing.worker == self.worker:
                    # Our own claim from an earlier loop iteration (a
                    # budget-interrupted range, say): just resume it.
                    return ClaimHandle(path=existing_path, claim=existing)
                owner = leases.get(existing.worker)
                if owner is not None and owner.live:
                    continue
                handle = self._steal(
                    ClaimHandle(path=existing_path, claim=existing)
                )
                if on_steal is not None:
                    on_steal()
                return handle
        return None
