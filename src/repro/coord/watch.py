"""Live campaign views: who's draining the store, and how fast.

:func:`coord_status` folds three side-band sources into one JSON-ready
payload — the store's own progress summary (config table, convergence),
the lease directory (per-worker liveness, beats, steal tallies), and
the claim directory (which ranges are in flight where) — plus
per-segment journal counts attributing trials to the worker that
evaluated them.

The payload feeds three fronts, all read-only and artifact-neutral:

- ``repro campaign watch`` — terminal table or ``--format json``;
- ``GET /v1/campaign`` — :class:`WatchApp` mounts the PR 9
  :class:`~repro.serve.routes.Router`, so the watch view rides the same
  transport (and ``/v1/metrics``, ``/v1/healthz``) as the serving tier;
- the ``repro_campaign_worker_*`` gauges in the process-wide metrics
  registry (:func:`update_gauges`), for Prometheus scrapes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from repro.coord.lease import list_leases
from repro.coord.scheduler import list_claims
from repro.obs.metrics import default_registry
from repro.store import CampaignStore

__all__ = [
    "RateMeter",
    "WatchApp",
    "coord_status",
    "render_watch",
    "update_gauges",
]

#: Per-worker progress gauges, labelled (store, worker).  `live` is
#: 0/1; `trials` counts the worker's journaled records (segment line
#: count — ground truth, not the lease's self-reported tally); `steals`
#: counts ranges the worker reclaimed from stale peers.
_WORKER_LIVE = default_registry().gauge(
    "repro_campaign_worker_live",
    "Worker lease liveness (1 = heartbeat fresh, 0 = stale or released).",
    labelnames=("store", "worker"),
)
_WORKER_TRIALS = default_registry().gauge(
    "repro_campaign_worker_trials",
    "Trials journaled into the worker's store segment.",
    labelnames=("store", "worker"),
)
_WORKER_STEALS = default_registry().gauge(
    "repro_campaign_worker_steals",
    "Trial ranges this worker stole from stale peers.",
    labelnames=("store", "worker"),
)


def coord_status(store_path: str | os.PathLike[str]) -> dict[str, Any]:
    """One poll of a coordinated store: progress + workers + claims.

    Opens the store read-only (which also audits the folded journals —
    a conflicting duplicate record surfaces here, not silently), then
    overlays lease and claim state.  Works on plain single-writer
    stores too: the coord sections are just empty.
    """
    store_path = os.fspath(store_path)
    with CampaignStore.open(store_path) as store:
        status: dict[str, Any] = store.status()
    progress = CampaignStore.scan_progress(store_path)
    leases = list_leases(store_path)
    workers: list[dict[str, Any]] = []
    for name in sorted(leases):
        info = leases[name]
        workers.append(
            {
                "worker": name,
                "live": info.live,
                "released": info.released,
                "beat": info.beat,
                "age_s": info.age_s,
                "expiry_s": info.expiry_s,
                "steals": info.steals,
                "trials": progress.segments.get(name, 0),
            }
        )
    claims = [
        {
            "config": handle.claim.config,
            "start": handle.claim.start,
            "stop": handle.claim.stop,
            "worker": handle.claim.worker,
            "fence": handle.claim.fence,
        }
        for handle in list_claims(store_path)
    ]
    status["workers"] = workers
    status["claims"] = claims
    status["workers_live"] = sum(1 for row in workers if row["live"])
    status["steals"] = sum(row["steals"] for row in workers)
    return status


def update_gauges(status: dict[str, Any]) -> None:
    """Feed one status payload into the worker gauges."""
    store = str(status.get("path", ""))
    for row in status.get("workers", []):
        worker = str(row["worker"])
        _WORKER_LIVE.set(1.0 if row["live"] else 0.0, store=store, worker=worker)
        _WORKER_TRIALS.set(float(row["trials"]), store=store, worker=worker)
        _WORKER_STEALS.set(float(row["steals"]), store=store, worker=worker)


class RateMeter:
    """Trials/second between successive polls (display only)."""

    def __init__(self) -> None:
        self._last: tuple[float, int] | None = None

    def update(self, journaled: int) -> float | None:
        now = time.monotonic()  # repro-lint: disable=RPL009 — side-band trial-rate display between watch polls
        last, self._last = self._last, (now, journaled)
        if last is None:
            return None
        elapsed = now - last[0]
        if elapsed <= 0.0:
            return None
        return max(0, journaled - last[1]) / elapsed


def render_watch(status: dict[str, Any], rate: float | None = None) -> str:
    """Terminal rendering of one status payload."""
    lines: list[str] = []
    done = int(status["journaled"])
    expected = int(status["expected"])
    state = "complete" if status["complete"] else "running"
    head = f"{status['path']}: {done}/{expected} trials ({state})"
    if rate is not None:
        head += f", {rate:.1f} trials/s"
    lines.append(head)
    for entry in status["configs"]:
        mean = entry.get("mean_accuracy")
        shown = f"mean={mean:.4f}" if mean is not None else "mean=-"
        lines.append(
            f"  config {entry['key']}: {entry['journaled']}/"
            f"{entry['expected']} {shown}"
        )
    workers = status.get("workers", [])
    if not workers:
        lines.append("  workers: none (single-writer store)")
    for row in workers:
        if row["released"]:
            liveness = "released"
        elif row["live"]:
            liveness = "live"
        else:
            liveness = f"stale {row['age_s']:.0f}s"
        lines.append(
            f"  worker {row['worker']}: {liveness}, beat {row['beat']}, "
            f"{row['trials']} trials, {row['steals']} steals"
        )
    for claim in status.get("claims", []):
        lines.append(
            f"  claim {claim['config']} [{claim['start']}, "
            f"{claim['stop']}) -> {claim['worker']} (fence {claim['fence']})"
        )
    return "\n".join(lines)


@dataclass
class _WatchConfig:
    request_timeout: float = 10.0


class WatchApp:
    """A minimal Router host for the HTTP watch view.

    Exposes the surface :class:`~repro.serve.routes.Router` and
    :class:`~repro.serve.http.ReproServer` need — ``router``,
    ``config``, ``metrics``, ``health()``, ``observe_request()``,
    ``close()`` — plus the ``campaign_status()`` hook behind
    ``GET /v1/campaign``.  Predict/models routes 404 here: this app
    serves *status*, not inference.
    """

    def __init__(self, store_path: str | os.PathLike[str]) -> None:
        from repro.serve.routes import Router

        self.store_path = os.fspath(store_path)
        self.config = _WatchConfig()
        self.metrics = default_registry()
        self.router = Router(self)

    def campaign_status(self) -> dict[str, Any]:
        status = coord_status(self.store_path)
        update_gauges(status)
        return status

    def health(self) -> dict[str, Any]:
        """Cheap liveness view (no full journal parse)."""
        progress = CampaignStore.scan_progress(self.store_path)
        leases = list_leases(self.store_path)
        return {
            "status": "ok",
            "store": self.store_path,
            "journaled": sum(progress.segments.values()),
            "workers_live": sum(1 for info in leases.values() if info.live),
            "workers": len(leases),
        }

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """No SLO tracker on the watch front; latency is uninteresting."""

    def close(self) -> None:
        """Nothing to release; present for ReproServer's shutdown path."""
