"""The coordinated campaign worker: join, claim, evaluate, journal.

A :class:`CampaignWorker` wires the pieces together over one shared
:class:`~repro.store.CampaignStore` directory:

1. **Join** — open the store with a private journal segment
   (``trials.<worker>.jsonl``) and pass the admission check: the
   store's manifest identity (seed, trial count, fault-space SHA-256
   fingerprint, layer table — hashed into ``config_hash``) must match
   the local campaign exactly, and every configuration this worker
   intends to run must already be registered by the store's creator.
   A worker built against the wrong checkpoint or settings is rejected
   before it can journal a single byte.
2. **Lease** — acquire a heartbeat lease
   (:class:`~repro.coord.lease.WorkerLease`) so peers can tell this
   worker's claims from a corpse's.
3. **Claim & evaluate** — loop: scan journal progress, list leases,
   ask the :class:`~repro.coord.scheduler.RangeScheduler` for the next
   range (claiming free ones, stealing from the stale), evaluate it
   through :meth:`FaultCampaign.iter_range
   <repro.fault.campaign.FaultCampaign.iter_range>`, and journal each
   outcome — re-verifying the claim's fencing token before every
   append, so a range lost mid-flight is abandoned without a write.
4. **Exit** — when every configuration's trial space is fully
   journaled (or the worker's ``max_trials`` budget is spent), release
   the lease and close the segment.

Determinism: trial seeds depend only on (campaign seed, tag, config
spec, trial index), so whichever worker evaluates a trial journals the
same record — steals, crashes, and re-runs cost duplicate *work* at
worst, never divergent *data*, and the drained store's artifacts are
byte-identical to a single-worker run's.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import TYPE_CHECKING

from repro.coord.lease import (
    DEFAULT_EXPIRY_S,
    CoordError,
    WorkerLease,
    list_leases,
    validated_worker_id,
)
from repro.coord.scheduler import ClaimHandle, RangeScheduler
from repro.store import CampaignStore, config_key
from repro.utils.logging import get_logger

if TYPE_CHECKING:
    from repro.fault.campaign import FaultCampaign
    from repro.store.store import Describable

__all__ = ["CampaignWorker", "DEFAULT_CHUNK"]

_logger = get_logger("coord.worker")

#: Default trials per claim.  Small enough that work-stealing has
#: granularity to rebalance, large enough to amortise claim-file I/O
#: over replica-batched evaluation (AUTO_REPLICAS lanes per group).
DEFAULT_CHUNK = 8

_WORKER_SEQ = itertools.count()


def default_worker_id() -> str:
    """A per-process-unique worker id (``w<pid>x<seq>``)."""
    return f"w{os.getpid()}x{next(_WORKER_SEQ)}"


class CampaignWorker:
    """One worker draining a shared campaign store; see module docstring.

    Parameters
    ----------
    campaign:
        The locally-built :class:`~repro.fault.campaign.FaultCampaign`
        (model, injector, evaluator, executor).  Must be unsharded —
        partitioning is the scheduler's job now.
    store_path:
        The shared store directory (already created, all configurations
        registered — see :meth:`CampaignStore.register_configs`).
    fault_models:
        The configurations this worker evaluates, in sweep order.
    worker_id:
        Unique id (lease + journal-segment name); default is
        per-process unique, so multi-host fleets should pass their own
        (hostname-derived) ids.
    chunk:
        Trials per claimed range.
    expiry_s:
        Lease expiry; peers may steal this worker's ranges after this
        long without a heartbeat.
    poll_s:
        Idle re-scan interval while peers hold all remaining work.
    max_trials:
        Stop after journaling this many fresh trials (None = run to
        completion) — the time-boxed-increment knob, like
        ``campaign run --limit``.
    """

    def __init__(
        self,
        campaign: "FaultCampaign",
        store_path: str | os.PathLike[str],
        fault_models: "list[Describable]",
        tag: str = "",
        worker_id: str | None = None,
        chunk: int = DEFAULT_CHUNK,
        expiry_s: float = DEFAULT_EXPIRY_S,
        poll_s: float = 0.5,
        max_trials: int | None = None,
    ) -> None:
        if campaign.shard is not None:
            raise CoordError(
                "coordinated workers take unsharded campaigns: dynamic "
                "range claims replace the static shard=(i, n) split"
            )
        self.campaign = campaign
        self.store_path = os.fspath(store_path)
        self.fault_models = list(fault_models)
        self.tag = tag
        self.worker_id = validated_worker_id(worker_id or default_worker_id())
        self.chunk = int(chunk)
        self.expiry_s = float(expiry_s)
        self.poll_s = float(poll_s)
        self.max_trials = max_trials
        self._stop = threading.Event()
        #: Fresh trials journaled by this worker (across run() calls).
        self.journaled = 0
        self.claims_run = 0

    def __getstate__(self) -> None:
        raise TypeError("CampaignWorker is process-local; not picklable")

    def request_stop(self) -> None:
        """Ask the run loop to wind down at the next safe point.

        Signal-handler safe: sets an event the loop checks between
        trials; the in-flight trial finishes, the unfinished remainder
        of the current range is handed back (claim released), and the
        lease is released so peers continue immediately.
        """
        self._stop.set()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> tuple[CampaignStore, dict[str, "Describable"]]:
        """Open a segment writer and verify store/campaign compatibility."""
        store = CampaignStore.open(self.store_path, segment=self.worker_id)
        try:
            store.attach(self.campaign)
            keys: dict[str, "Describable"] = {}
            registered = store.config_keys()
            for fault_model in self.fault_models:
                key = config_key(self.tag, fault_model.describe())
                if key not in registered:
                    raise CoordError(
                        f"config {key!r} is not registered in "
                        f"{self.store_path!r}; the store creator must "
                        "register the full sweep up front "
                        "(CampaignStore.register_configs) — joining "
                        "workers never write the manifest"
                    )
                if store.converged_at(key) is not None:
                    raise CoordError(
                        f"config {key!r} is marked EarlyStop-converged; "
                        "coordinated draining runs fixed trial spaces only"
                    )
                keys[key] = fault_model
        except BaseException:
            store.close()
            raise
        return store, keys

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------
    def run(self) -> dict[str, object]:
        """Drain the store; returns a summary of this worker's part."""
        store, by_key = self._admit()
        ordered_keys = [
            key for key in store.config_keys() if key in by_key
        ]
        scheduler = RangeScheduler(
            self.store_path,
            self.worker_id,
            trials=self.campaign.trials,
            chunk=self.chunk,
            configs=ordered_keys,
        )
        lease = WorkerLease(
            self.store_path, self.worker_id, expiry_s=self.expiry_s
        )
        stopped = False
        try:
            with store, lease:  # lease.__enter__ acquires + starts heartbeat
                while not self._stop.is_set():
                    if self._budget_left() == 0:
                        stopped = True
                        break
                    progress = CampaignStore.scan_progress(self.store_path)
                    if self._complete(progress.indices, ordered_keys):
                        break
                    handle = scheduler.next_claim(
                        progress.indices,
                        list_leases(self.store_path),
                        on_steal=lease.note_steal,
                    )
                    if handle is None:
                        # Peers hold every remaining range; idle-wait a
                        # beat and re-scan (their journals keep moving).
                        self._stop.wait(self.poll_s)
                        continue
                    self._run_claim(store, lease, handle, by_key)
                stopped = stopped or self._stop.is_set()
        finally:
            lease.release()
        progress = CampaignStore.scan_progress(self.store_path)
        complete = self._complete(progress.indices, ordered_keys)
        _logger.info(
            "worker %s done: %d trials, %d claims, %d steals (%s)",
            self.worker_id,
            self.journaled,
            self.claims_run,
            lease.steals,
            "store complete" if complete else "stopped with work left",
        )
        return {
            "worker": self.worker_id,
            "trials": self.journaled,
            "claims": self.claims_run,
            "steals": lease.steals,
            "stopped": stopped,
            "complete": complete,
        }

    def _budget_left(self) -> int | None:
        if self.max_trials is None:
            return None
        return max(0, int(self.max_trials) - self.journaled)

    def _complete(
        self, journaled: dict[str, set[int]], keys: list[str]
    ) -> bool:
        trials = self.campaign.trials
        return all(len(journaled.get(key, set())) >= trials for key in keys)

    def _run_claim(
        self,
        store: CampaignStore,
        lease: WorkerLease,
        handle: ClaimHandle,
        by_key: dict[str, "Describable"],
    ) -> None:
        """Evaluate one claimed range, fencing-checked per append."""
        claim = handle.claim
        fault_model = by_key[claim.config]
        # Re-scan now that the claim is ours: records may have landed
        # (the previous owner's last flush, say) since the loop's scan.
        progress = CampaignStore.scan_progress(self.store_path)
        done = progress.journaled(claim.config)
        missing = [t for t in claim.indices() if t not in done]
        budget = self._budget_left()
        if budget is not None:
            missing = missing[:budget]
        if not missing:
            handle.release()
            return
        self.claims_run += 1
        finished = 0
        outcomes = self.campaign.iter_range(
            fault_model, missing, tag=self.tag
        )
        try:
            for outcome, sites in outcomes:
                if self._stop.is_set():
                    break
                if not handle.verify():
                    # Fenced out: a thief owns this range now.  Its
                    # records will be equal to ours by determinism, but
                    # the protocol is strict — never append under a
                    # lost claim.
                    _logger.warning(
                        "worker %s lost claim [%d, %d) of %r mid-range; "
                        "abandoning without journaling",
                        self.worker_id,
                        claim.start,
                        claim.stop,
                        claim.config,
                    )
                    return
                store.record(claim.config, outcome, sites)
                self.journaled += 1
                finished += 1
                lease.note_trials(1)
        finally:
            outcomes.close()
        # Drained ranges drop their claim file; an interrupted range
        # (stop request) hands its remainder back the same way, so a
        # peer — or our own resume — picks it up immediately.
        handle.release()
