"""The paper's contribution: FitReLU activations, bound profiling, model
surgery, decoupled post-training, and the FitAct pipeline — plus the
Clip-Act, Ranger, and Tanh-swap baselines it is evaluated against."""

from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.checkpoint import (
    checkpoint_format,
    load_protected,
    load_protected_auto,
    read_checkpoint_meta,
    save_protected,
)
from repro.core.fitact import FitActConfig, FitActPipeline, FitActResult
from repro.core.fitrelu import DEFAULT_SLOPE, FitReLU
from repro.core.post_training import (
    BoundPostTrainer,
    PostTrainingConfig,
    PostTrainingReport,
)
from repro.core.profiler import (
    ActivationProfile,
    RecordingReLU,
    profile_activations,
)
from repro.core.protection import (
    PROTECTION_METHODS,
    ProtectionConfig,
    ProtectionReport,
    protect_model,
)
from repro.core.surgery import (
    bound_modules,
    bound_parameter_count,
    find_activation_sites,
    make_factory,
    replace_activations,
    restore_relu,
)
from repro.core.training import (
    Trainer,
    TrainingConfig,
    TrainingReport,
    evaluate_accuracy,
)

__all__ = [
    "DEFAULT_SLOPE",
    "PROTECTION_METHODS",
    "ActivationProfile",
    "BoundPostTrainer",
    "BoundedReLU",
    "BoundedTanh",
    "FitActConfig",
    "FitActPipeline",
    "FitActResult",
    "FitReLU",
    "FitReLUNaive",
    "GBReLU",
    "PostTrainingConfig",
    "PostTrainingReport",
    "ProtectionConfig",
    "ProtectionReport",
    "RecordingReLU",
    "Trainer",
    "TrainingConfig",
    "TrainingReport",
    "bound_modules",
    "bound_parameter_count",
    "evaluate_accuracy",
    "find_activation_sites",
    "checkpoint_format",
    "load_protected",
    "load_protected_auto",
    "read_checkpoint_meta",
    "make_factory",
    "profile_activations",
    "protect_model",
    "replace_activations",
    "restore_relu",
    "save_protected",
]
