"""Hard-bounded ReLU activations: GBReLU (Clip-Act) and Ranger semantics.

Paper Eq. 4 defines the globally bounded ReLU used by the baselines::

              ⎧ 0   if x > λ        (out-of-bound handling — see modes)
    GBReLU(x) ⎨ x   if 0 < x ≤ λ
              ⎩ 0   if x ≤ 0

Two out-of-bound policies appear in the literature the paper compares
against (§VI-B):

- ``"zero"``   — squash to 0 (Clip-Act, Hoang et al. [18]);
- ``"saturate"`` — truncate to λ (Ranger, Chen et al. [16]) — the paper
  attributes Ranger's weaker protection to exactly this choice: "Ranger
  truncates an output faulty value to a big positive bound, which still
  propagates in the network".

The same module also implements FitReLU-Naive (paper Eq. 5) by passing a
*per-neuron* bound array instead of a scalar: the piecewise definition is
identical, only the bound granularity changes.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_basic, ops_nn
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BoundedReLU", "FitReLUNaive", "GBReLU"]

_MODES = ("zero", "saturate")


class BoundedReLU(Module):
    """ReLU with an upper bound, at any bound granularity.

    Parameters
    ----------
    bound:
        Scalar (layer-global, as in Clip-Act/Ranger) or array broadcastable
        against the unbatched activation shape (per-channel or per-neuron).
    mode:
        ``"zero"`` squashes out-of-bound values to 0 (Eq. 4 / Clip-Act);
        ``"saturate"`` clips them to the bound (Ranger).

    The bound is registered as a parameter so it lives in the fault space
    (paper §VI-A2 includes "parameters of activation functions"), but it
    receives no gradient — the piecewise form is not trainable, which is
    precisely the limitation motivating FitReLU (paper §IV-B).
    """

    def __init__(self, bound: float | np.ndarray, mode: str = "zero") -> None:
        super().__init__()
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        bound_array = np.atleast_1d(np.asarray(bound, dtype=np.float32))
        if np.any(bound_array <= 0):
            raise ConfigurationError("activation bounds must be positive")
        self.mode = mode
        self.bound = Parameter(bound_array, requires_grad=False)

    def forward(self, x: Tensor) -> Tensor:
        positive = ops_nn.relu(x)
        if self.mode == "saturate":
            return ops_basic.minimum(positive, self.bound)
        over = x.data > self.bound.data
        return ops_basic.where(over, Tensor(np.zeros((), dtype=x.dtype)), positive)

    @property
    def bound_count(self) -> int:
        """Number of stored bound words (Table I memory accounting)."""
        return int(self.bound.size)

    def extra_repr(self) -> str:
        summary = (
            f"{float(self.bound.data.reshape(-1)[0]):.4g}"
            if self.bound.size == 1
            else f"array{self.bound.shape}"
        )
        return f"bound={summary}, mode={self.mode!r}"


class GBReLU(BoundedReLU):
    """Layer-globally bounded ReLU (paper Eq. 4): one bound for the layer.

    The activation used by the Clip-Act (``mode="zero"``) and Ranger
    (``mode="saturate"``) baselines, with λ set from the observed maximum
    activation over all the layer's neurons (paper §III-C).
    """

    def __init__(self, bound: float, mode: str = "zero") -> None:
        bound = float(np.asarray(bound).reshape(-1)[0])
        super().__init__(np.float32(bound), mode=mode)


class FitReLUNaive(BoundedReLU):
    """Neuron-wise bounded ReLU (paper Eq. 5): one bound per neuron.

    Piecewise like GBReLU but with λᵢ per neuron.  Not trainable — its
    derivative w.r.t. λᵢ is zero almost everywhere (paper §IV-B), which is
    why the differentiable :class:`~repro.core.fitrelu.FitReLU` exists.
    Useful as a post-training-free ablation and as the deployment form of
    already-learned bounds.
    """

    def __init__(self, bounds: np.ndarray) -> None:
        bounds = np.asarray(bounds, dtype=np.float32)
        if bounds.size < 1:
            raise ConfigurationError("bounds array must not be empty")
        super().__init__(bounds, mode="zero")
