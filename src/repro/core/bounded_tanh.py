"""Bounded Tanh: the activation-swap baseline of Hong et al. [17].

The paper's related work (§II-D) cites *Terminal Brain Damage* (Hong et
al., USENIX Security 2019), which mitigates memory faults by replacing
unbounded ReLUs with the naturally bounded Tanh.  Hong et al. retrain
with Tanh; FitAct's setting is *post-hoc* protection of an
already-trained ReLU network, so the deployable swap must preserve the
ReLU regime — zero for negative pre-activations — and a bare ``tanh``
(which passes negatives and saturates at ±1, far below trained
activation ranges) would destroy the model.  The implemented form is
the rectified, range-scaled variant::

    BoundedTanh(x) = λ · tanh(ReLU(x) / λ)

which is zero for x ≤ 0 (matching ReLU), near-identity for
0 < x ≪ λ (slope 1 at the origin), and saturates smoothly at λ.  Two
costs distinguish it from the other baselines, and the EXT comparisons
quantify both: legitimate activations approaching λ are compressed
(tanh(1) ≈ 0.76, a clean-accuracy tax no hard-clip scheme pays), and —
like Ranger — a faulty high value is *truncated to a big positive
bound* rather than zeroed, so it still propagates.

The bound is a non-trainable parameter so it occupies fault space,
consistent with every other protected activation (paper §VI-A2).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BoundedTanh"]


class BoundedTanh(Module):
    """Rectified range-scaled Tanh activation: ``λ·tanh(ReLU(x)/λ)``.

    Parameters
    ----------
    bound:
        Saturation ceiling λ.  Scalar for the layer-global form (the
        published baseline) or an array broadcastable against the
        unbatched activation shape for finer granularities.
    trainable:
        Whether λ receives gradients.  The published baseline fixes λ
        from profiled maxima; ``trainable=True`` lets the FitAct
        post-training loop tune it (a natural extension experiment).
    """

    def __init__(self, bound: float | np.ndarray, trainable: bool = False) -> None:
        super().__init__()
        bound_array = np.atleast_1d(np.asarray(bound, dtype=np.float32))
        if np.any(bound_array <= 0):
            raise ConfigurationError("activation bounds must be positive")
        self.bound = Parameter(bound_array, requires_grad=trainable)

    def forward(self, x: Tensor) -> Tensor:
        return self.bound * ops_nn.tanh(ops_nn.relu(x) / self.bound)

    @property
    def bound_count(self) -> int:
        """Number of stored bound words (Table I memory accounting)."""
        return int(self.bound.size)

    def extra_repr(self) -> str:
        summary = (
            f"{float(self.bound.data.reshape(-1)[0]):.4g}"
            if self.bound.size == 1
            else f"array{self.bound.shape}"
        )
        return f"bound={summary}, trainable={self.bound.requires_grad}"
