"""Persistence for protected models.

A protected model is a trained base network whose ReLUs were surgically
replaced by bounded activations (possibly post-trained).  A plain
``state_dict`` is not enough to rebuild one: the loader must first
recreate the surgery — which activation class sits at which path, with
which configuration — before the state can be poured back in.

``save_protected`` stores the full state dict plus a JSON manifest of
every protected site; ``load_protected`` replays the surgery on a fresh
base model from a user-supplied builder and restores the state.  The
round trip is exact: outputs of the reloaded model are bit-identical.

This is the deploy/exchange format used by the CLI (``repro protect`` /
``repro evaluate``) and the checkpoint example.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable

import numpy as np

from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.core.surgery import bound_modules
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.utils.serialization import load_state, save_state

__all__ = [
    "checkpoint_format",
    "load_protected",
    "load_protected_auto",
    "model_input_channels",
    "read_checkpoint_meta",
    "save_protected",
]


def model_input_channels(model: Module, default: int | None = 3) -> int | None:
    """A model's input channel count, read from its first convolution.

    The single rule for "what geometry does this checkpoint expect":
    ``repro protect`` records it in the manifest (``in_channels``) and
    the serving registry falls back to it for checkpoints written
    before the field existed.  Conv-free models (flat-input MLPs)
    return ``default``.
    """
    from repro.nn.conv import Conv2d

    return next(
        (
            module.in_channels
            for module in model.modules()
            if isinstance(module, Conv2d)
        ),
        default,
    )

_META_KEY = "__repro_checkpoint__"
_FORMAT_VERSION = 1

#: Manifest meta fields ``load_protected_auto`` needs to rebuild the
#: base architecture without a user-supplied builder.
_AUTO_FIELDS = ("model", "num_classes", "scale", "image_size")


def _site_spec(module: Module) -> dict[str, object]:
    """JSON-serialisable reconstruction recipe for one protected site."""
    if isinstance(module, FitReLU):
        return {
            "type": "fitrelu",
            "k": float(module.k),
            "slope_mode": module.slope_mode,
            "trainable": bool(module.bound.requires_grad),
        }
    if isinstance(module, GBReLU):
        return {"type": "gbrelu", "mode": module.mode}
    if isinstance(module, FitReLUNaive):
        return {"type": "fitrelu-naive"}
    if isinstance(module, BoundedReLU):
        return {"type": "bounded-relu", "mode": module.mode}
    if isinstance(module, BoundedTanh):
        return {"type": "bounded-tanh", "trainable": bool(module.bound.requires_grad)}
    raise ConfigurationError(
        f"cannot checkpoint protected module of type {type(module).__name__}"
    )


def _build_site(spec: dict[str, object], bounds: np.ndarray) -> Module:
    """Inverse of :func:`_site_spec`."""
    kind = spec.get("type")
    if kind == "fitrelu":
        return FitReLU(
            bounds,
            k=float(spec["k"]),
            slope_mode=str(spec["slope_mode"]),
            trainable=bool(spec["trainable"]),
        )
    if kind == "gbrelu":
        return GBReLU(float(bounds.reshape(-1)[0]), mode=str(spec["mode"]))
    if kind == "fitrelu-naive":
        return FitReLUNaive(bounds)
    if kind == "bounded-relu":
        return BoundedReLU(bounds, mode=str(spec["mode"]))
    if kind == "bounded-tanh":
        return BoundedTanh(bounds, trainable=bool(spec["trainable"]))
    raise ConfigurationError(f"unknown protected-site type {kind!r} in checkpoint")


def read_checkpoint_meta(path: str | os.PathLike) -> dict[str, object]:
    """Manifest meta of a checkpoint without restoring the model.

    Reads only the manifest member of the archive, so it is cheap even
    for large checkpoints — the serving layer uses it to describe
    models that are registered but not resident.
    """
    fspath = os.fspath(path)
    if not fspath.endswith(".npz") and not os.path.exists(fspath):
        fspath = f"{fspath}.npz"
    with np.load(fspath) as archive:
        if _META_KEY not in archive.files:
            raise ConfigurationError(
                f"{os.fspath(path)!r} is not a protected-model checkpoint "
                f"(missing {_META_KEY!r})"
            )
        manifest = json.loads(str(archive[_META_KEY]))
    return dict(manifest.get("meta", {}))


def checkpoint_format(
    meta: dict[str, object],
    warn: "Callable[[str], None] | None" = None,
):
    """Quantisation format recorded in a checkpoint's manifest meta.

    Checkpoints written before the ``format`` field existed fall back to
    the paper's Q15.16; ``warn`` (if given) is called with a message in
    that case so fault-injecting callers don't silently target a
    possibly wrong bit-space.
    """
    from repro.quant.fixed_point import Q15_16
    from repro.quant.formats import parse_format

    spec = meta.get("format")
    if spec is None:
        if warn is not None:
            warn(
                "checkpoint manifest records no quantisation format; "
                "assuming Q15.16"
            )
        return Q15_16
    return parse_format(str(spec))


def save_protected(
    path: str | os.PathLike,
    model: Module,
    meta: dict[str, object] | None = None,
) -> str:
    """Save a protected (or plain) model with its surgery manifest.

    ``meta`` may carry arbitrary JSON-serialisable metadata (method name,
    clean accuracy, preset…) returned verbatim by :func:`load_protected`.
    Returns the path actually written (``.npz`` is appended when the
    suffix is missing).
    """
    sites = {site_path: _site_spec(m) for site_path, m in bound_modules(model).items()}
    manifest = {
        "version": _FORMAT_VERSION,
        "sites": sites,
        "meta": meta or {},
    }
    state = model.state_dict()
    if _META_KEY in state:
        raise ConfigurationError(f"state dict already contains {_META_KEY!r}")
    state[_META_KEY] = np.array(json.dumps(manifest))
    return save_state(path, state)


def _load_manifest(
    path: str | os.PathLike,
) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Load a checkpoint's state and validated surgery manifest."""
    state = load_state(path)
    raw_manifest = state.pop(_META_KEY, None)
    if raw_manifest is None:
        raise ConfigurationError(
            f"{os.fspath(path)!r} is not a protected-model checkpoint "
            f"(missing {_META_KEY!r})"
        )
    manifest = json.loads(str(raw_manifest))
    version = manifest.get("version")
    if version != _FORMAT_VERSION:
        hint = (
            "written by a newer build — upgrade to read it"
            if isinstance(version, int) and version > _FORMAT_VERSION
            else "the checkpoint is corrupt or from an incompatible build"
        )
        raise ConfigurationError(
            f"{os.fspath(path)!r}: unsupported checkpoint format version "
            f"{version!r}; this build reads version {_FORMAT_VERSION} ({hint})"
        )
    return state, manifest


def _restore(
    state: dict[str, np.ndarray],
    manifest: dict[str, object],
    builder: Callable[[], Module],
) -> tuple[Module, dict[str, object]]:
    """Replay the surgery manifest onto a fresh base model."""
    model = builder()
    for site_path, spec in manifest["sites"].items():
        bound_key = f"{site_path}.bound"
        if bound_key not in state:
            raise ConfigurationError(
                f"checkpoint manifest lists {site_path!r} but the state "
                f"has no {bound_key!r}"
            )
        bounds = np.asarray(state[bound_key], dtype=np.float32)
        model.set_submodule(site_path, _build_site(spec, bounds))
    model.load_state_dict(state, strict=True)
    return model, dict(manifest.get("meta", {}))


def load_protected(
    path: str | os.PathLike,
    builder: Callable[[], Module],
) -> tuple[Module, dict[str, object]]:
    """Rebuild a protected model saved by :func:`save_protected`.

    ``builder`` must return a fresh *base* model — same architecture and
    shapes as the one that was protected, with its original (ReLU)
    activations; typically ``lambda: build_model(name, ...)``.  Returns
    ``(model, meta)``.
    """
    state, manifest = _load_manifest(path)
    return _restore(state, manifest, builder)


def load_protected_auto(
    path: str | os.PathLike,
) -> tuple[Module, dict[str, object]]:
    """Rebuild a protected model using the architecture recorded in meta.

    Checkpoints written by ``repro protect`` record the base
    architecture (``model``/``num_classes``/``scale``/``image_size`` and
    optionally ``seed``) in the manifest meta, so no builder is needed —
    this is what the CLI and the serving registry use.  Checkpoints
    saved with a bare ``save_protected`` call lack those fields and must
    go through :func:`load_protected` with an explicit builder.
    """
    state, manifest = _load_manifest(path)
    meta = dict(manifest.get("meta", {}))
    missing = [field for field in _AUTO_FIELDS if field not in meta]
    if missing:
        raise ConfigurationError(
            f"{os.fspath(path)!r} records no base architecture (meta is "
            f"missing {', '.join(missing)}); reload it with load_protected() "
            "and an explicit builder"
        )

    def builder() -> Module:
        from repro.models.registry import build_model

        kwargs: dict[str, object] = {}
        if int(meta.get("in_channels", 3)) != 3:
            # Recorded by `repro protect` so non-RGB checkpoints (e.g.
            # grayscale) rebuild with their true input geometry.  RGB
            # checkpoints omit the kwarg entirely: custom architectures
            # registered via register_model may (validly) not accept
            # it, and 3 is every builder's default anyway.
            kwargs["in_channels"] = int(meta["in_channels"])
        return build_model(
            str(meta["model"]),
            num_classes=int(meta["num_classes"]),
            scale=float(meta["scale"]),
            image_size=int(meta["image_size"]),
            seed=int(meta.get("seed", 0)),
            **kwargs,
        )

    return _restore(state, manifest, builder)
