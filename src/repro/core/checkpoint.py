"""Persistence for protected models.

A protected model is a trained base network whose ReLUs were surgically
replaced by bounded activations (possibly post-trained).  A plain
``state_dict`` is not enough to rebuild one: the loader must first
recreate the surgery — which activation class sits at which path, with
which configuration — before the state can be poured back in.

``save_protected`` stores the full state dict plus a JSON manifest of
every protected site; ``load_protected`` replays the surgery on a fresh
base model from a user-supplied builder and restores the state.  The
round trip is exact: outputs of the reloaded model are bit-identical.

This is the deploy/exchange format used by the CLI (``repro protect`` /
``repro evaluate``) and the checkpoint example.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable

import numpy as np

from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.core.surgery import bound_modules
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.utils.serialization import load_state, save_state

__all__ = ["load_protected", "save_protected"]

_META_KEY = "__repro_checkpoint__"
_FORMAT_VERSION = 1


def _site_spec(module: Module) -> dict[str, object]:
    """JSON-serialisable reconstruction recipe for one protected site."""
    if isinstance(module, FitReLU):
        return {
            "type": "fitrelu",
            "k": float(module.k),
            "slope_mode": module.slope_mode,
            "trainable": bool(module.bound.requires_grad),
        }
    if isinstance(module, GBReLU):
        return {"type": "gbrelu", "mode": module.mode}
    if isinstance(module, FitReLUNaive):
        return {"type": "fitrelu-naive"}
    if isinstance(module, BoundedReLU):
        return {"type": "bounded-relu", "mode": module.mode}
    if isinstance(module, BoundedTanh):
        return {"type": "bounded-tanh", "trainable": bool(module.bound.requires_grad)}
    raise ConfigurationError(
        f"cannot checkpoint protected module of type {type(module).__name__}"
    )


def _build_site(spec: dict[str, object], bounds: np.ndarray) -> Module:
    """Inverse of :func:`_site_spec`."""
    kind = spec.get("type")
    if kind == "fitrelu":
        return FitReLU(
            bounds,
            k=float(spec["k"]),
            slope_mode=str(spec["slope_mode"]),
            trainable=bool(spec["trainable"]),
        )
    if kind == "gbrelu":
        return GBReLU(float(bounds.reshape(-1)[0]), mode=str(spec["mode"]))
    if kind == "fitrelu-naive":
        return FitReLUNaive(bounds)
    if kind == "bounded-relu":
        return BoundedReLU(bounds, mode=str(spec["mode"]))
    if kind == "bounded-tanh":
        return BoundedTanh(bounds, trainable=bool(spec["trainable"]))
    raise ConfigurationError(f"unknown protected-site type {kind!r} in checkpoint")


def save_protected(
    path: str | os.PathLike,
    model: Module,
    meta: dict[str, object] | None = None,
) -> None:
    """Save a protected (or plain) model with its surgery manifest.

    ``meta`` may carry arbitrary JSON-serialisable metadata (method name,
    clean accuracy, preset…) returned verbatim by :func:`load_protected`.
    """
    sites = {site_path: _site_spec(m) for site_path, m in bound_modules(model).items()}
    manifest = {
        "version": _FORMAT_VERSION,
        "sites": sites,
        "meta": meta or {},
    }
    state = model.state_dict()
    if _META_KEY in state:
        raise ConfigurationError(f"state dict already contains {_META_KEY!r}")
    state[_META_KEY] = np.array(json.dumps(manifest))
    save_state(path, state)


def load_protected(
    path: str | os.PathLike,
    builder: Callable[[], Module],
) -> tuple[Module, dict[str, object]]:
    """Rebuild a protected model saved by :func:`save_protected`.

    ``builder`` must return a fresh *base* model — same architecture and
    shapes as the one that was protected, with its original (ReLU)
    activations; typically ``lambda: build_model(name, ...)``.  Returns
    ``(model, meta)``.
    """
    state = load_state(path)
    raw_manifest = state.pop(_META_KEY, None)
    if raw_manifest is None:
        raise ConfigurationError(
            f"{os.fspath(path)!r} is not a protected-model checkpoint "
            f"(missing {_META_KEY!r})"
        )
    manifest = json.loads(str(raw_manifest))
    version = manifest.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    model = builder()
    for site_path, spec in manifest["sites"].items():
        bound_key = f"{site_path}.bound"
        if bound_key not in state:
            raise ConfigurationError(
                f"checkpoint manifest lists {site_path!r} but the state "
                f"has no {bound_key!r}"
            )
        bounds = np.asarray(state[bound_key], dtype=np.float32)
        model.set_submodule(site_path, _build_site(spec, bounds))
    model.load_state_dict(state, strict=True)
    return model, dict(manifest.get("meta", {}))
