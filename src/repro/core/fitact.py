"""The FitAct two-stage pipeline (paper Fig. 4).

Stage 1 — conventional training for accuracy (ΘA), or accept an already
trained model.  Stage 2 — replace ReLUs with FitReLU (bounds initialised
from profiled maxima) and post-train only the bounds (ΘR) for resilience.

    pipeline = FitActPipeline(FitActConfig())
    result = pipeline.protect(model, train_loader, eval_loader)
    # model is now protected in place; result carries all stage reports
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.post_training import (
    BoundPostTrainer,
    PostTrainingConfig,
    PostTrainingReport,
)
from repro.core.protection import ProtectionConfig, ProtectionReport, protect_model
from repro.core.training import Trainer, TrainingConfig, TrainingReport, evaluate_accuracy
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.quant.fixed_point import FixedPointFormat, Q15_16
from repro.quant.model import quantize_module
from repro.utils.logging import get_logger

__all__ = ["FitActConfig", "FitActPipeline", "FitActResult"]

_logger = get_logger("core.fitact")


@dataclass(frozen=True)
class FitActConfig:
    """End-to-end pipeline configuration."""

    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    post_training: PostTrainingConfig = field(default_factory=PostTrainingConfig)
    quantize: bool = True
    fmt: FixedPointFormat = Q15_16


@dataclass
class FitActResult:
    """Everything the pipeline produced."""

    protection: ProtectionReport
    post_training: PostTrainingReport | None
    reference_accuracy: float
    protected_accuracy: float
    training: TrainingReport | None = None

    def summary(self) -> str:
        lines = [self.protection.summary()]
        if self.post_training is not None:
            lines.append(self.post_training.summary())
        lines.append(
            f"clean accuracy: reference {self.reference_accuracy:.2%}, "
            f"protected {self.protected_accuracy:.2%}"
        )
        return "\n".join(lines)


class FitActPipeline:
    """Drives profile → surgery → post-training → (optional) quantise."""

    def __init__(self, config: FitActConfig | None = None) -> None:
        self.config = config or FitActConfig()

    def train(
        self,
        model: Module,
        train_loader: DataLoader,
        eval_loader: DataLoader | None = None,
        training: TrainingConfig | None = None,
    ) -> TrainingReport:
        """Stage 1: conventional accuracy training (convenience wrapper)."""
        return Trainer(model, training).fit(train_loader, eval_loader)

    def protect(
        self,
        model: Module,
        train_loader: DataLoader,
        eval_loader: DataLoader,
        reference_accuracy: float | None = None,
    ) -> FitActResult:
        """Stage 2: modify the trained model and post-train its bounds.

        The model is modified *in place*.  ``reference_accuracy`` (the
        Eq. 8 constraint reference A(ΘA)) defaults to the model's clean
        accuracy measured before surgery.
        """
        config = self.config
        if reference_accuracy is None:
            reference_accuracy = evaluate_accuracy(model, eval_loader)
            _logger.info("reference accuracy A(ΘA) = %.2f%%", 100 * reference_accuracy)

        protection = protect_model(model, train_loader, config.protection)
        _logger.info(protection.summary())

        post_report: PostTrainingReport | None = None
        if config.protection.method == "fitact":
            trainer = BoundPostTrainer(model, config.post_training)
            post_report = trainer.run(
                train_loader, eval_loader, reference_accuracy=reference_accuracy
            )
        elif config.protection.method == "none":
            pass
        # fitact-naive / clipact / ranger have fixed bounds: nothing to train.

        if config.quantize and config.protection.method != "none":
            quantize_module(model, config.fmt)

        protected_accuracy = evaluate_accuracy(model, eval_loader)
        delta = config.post_training.delta
        drop = reference_accuracy - protected_accuracy
        if config.protection.method == "fitact" and drop >= delta + 0.01:
            # Quantisation after rollback can nudge accuracy; flag only
            # clear violations of the Eq. 8 constraint.
            raise ConfigurationError(
                f"post-training violated the accuracy constraint: drop "
                f"{drop:.2%} exceeds δ={delta:.2%}"
            )
        return FitActResult(
            protection=protection,
            post_training=post_report,
            reference_accuracy=reference_accuracy,
            protected_accuracy=protected_accuracy,
        )
