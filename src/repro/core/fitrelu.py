"""FitReLU: the trainable fine-grained bounded activation (paper §IV-C).

Paper Eq. 6 writes the function as::

    ξ(x) = max(0, x − x / (1 + e^{k(x − λᵢ)}))

Using ``x − x/(1+e^{z}) = x·σ(z)`` (σ the logistic sigmoid), this equals
``max(0, x·σ(k(x−λᵢ)))``.  As printed — with positive k — that *passes*
large faulty values and suppresses in-range ones, the opposite of the
behaviour plotted in the paper's Fig. 3 and of the stated goal of
squashing values above the bound.  The intended function (matching Fig. 3
and the "descent slope" description of k) is obtained with the gate
reversed, i.e. Eq. 6 with a negative k::

    ξ_FitReLU(x) = max(0, x · σ(k(λᵢ − x)))      with k > 0

which passes x for x ≪ λᵢ, descends smoothly through λᵢ (ξ(λᵢ) = λᵢ/2),
and squashes x ≫ λᵢ to ~0 like Clip-Act — but per neuron and, crucially,
with well-defined gradients ∂ξ/∂λᵢ everywhere, making the bounds
learnable by gradient descent.  We implement this reconciled form; the
sign convention is recorded here and in DESIGN.md.

Slope scaling
-------------
The paper computes k "empirically".  A single absolute k cannot serve
bounds of very different magnitudes: the transition band has width ~4/k,
so a k tuned for λ≈4 grossly distorts a neuron with λ≈0.3.  The default
``slope_mode="relative"`` therefore uses a per-neuron effective slope
kᵢ = k/λᵢ, making the band a fixed *fraction* (~4/k) of each neuron's
bound; ``slope_mode="absolute"`` keeps Eq. 6's fixed-k form for the
faithfulness ablation (bench ABL-K sweeps both).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["DEFAULT_SLOPE", "FitReLU"]

DEFAULT_SLOPE = 40.0
"""Default slope coefficient k.

In the default relative mode the smooth descent band spans roughly
λ·4/k = 10% of each neuron's bound — sharp enough to behave like the
hard FitReLU-Naive on faulty values, smooth enough for stable λ
gradients.
"""

_SLOPE_MODES = ("relative", "absolute")


class FitReLU(Module):
    """Trainable neuron-wise bounded ReLU.

    Parameters
    ----------
    bounds:
        Initial bound values λᵢ.  Shape defines the granularity: the full
        unbatched activation shape for neuron-wise bounds (FitAct's
        default), ``(C, 1, 1)`` for channel-wise, or ``(1,)``/scalar for a
        single layer-global bound — anything broadcastable against the
        activation.  Initialise from profiled per-neuron maxima (paper §V:
        "initialize the bound parameters ΘR for each neuron to their
        maximum values over the training dataset").
    k:
        Slope coefficient (> 0); larger is closer to the hard piecewise
        FitReLU-Naive.
    slope_mode:
        ``"relative"`` (default): effective slope k/λᵢ per neuron;
        ``"absolute"``: Eq. 6's fixed k.
    trainable:
        Whether λ receives gradients (True for post-training; freeze for
        deployment studies).
    """

    def __init__(
        self,
        bounds: float | np.ndarray,
        k: float = DEFAULT_SLOPE,
        slope_mode: str = "relative",
        trainable: bool = True,
    ) -> None:
        super().__init__()
        bounds_array = np.atleast_1d(np.asarray(bounds, dtype=np.float32))
        if np.any(bounds_array <= 0):
            raise ConfigurationError("initial bounds must be positive")
        if k <= 0:
            raise ConfigurationError(f"slope k must be positive, got {k}")
        if slope_mode not in _SLOPE_MODES:
            raise ConfigurationError(
                f"slope_mode must be one of {_SLOPE_MODES}, got {slope_mode!r}"
            )
        self.k = float(k)
        self.slope_mode = slope_mode
        self.bound = Parameter(bounds_array, requires_grad=trainable)

    def forward(self, x: Tensor) -> Tensor:
        if self.slope_mode == "relative":
            # Effective slope k/λ: treat the *scale* as a constant w.r.t.
            # the graph (detached denominator) so the λ gradient keeps the
            # clean σ′ form instead of picking up a 1/λ² correction term.
            scale = self.k / np.maximum(np.abs(self.bound.data), 1e-6)
            gate = ops_nn.sigmoid((self.bound - x) * Tensor(scale.astype(np.float32)))
        else:
            gate = ops_nn.sigmoid((self.bound - x) * self.k)
        return ops_nn.relu(x * gate)

    @property
    def bound_count(self) -> int:
        """Number of λ words this layer adds (Table I memory accounting)."""
        return int(self.bound.size)

    def effective_slope(self) -> np.ndarray:
        """Per-neuron slope actually applied at the current bounds."""
        if self.slope_mode == "relative":
            return (self.k / np.maximum(np.abs(self.bound.data), 1e-6)).astype(
                np.float32
            )
        return np.full_like(self.bound.data, self.k)

    def hard_equivalent(self) -> np.ndarray:
        """Copy of the current bounds, for exporting to FitReLU-Naive."""
        return self.bound.data.copy()

    def extra_repr(self) -> str:
        data = self.bound.data
        return (
            f"bounds=array{tuple(data.shape)} "
            f"[mean={float(data.mean()):.4g}, max={float(data.max()):.4g}], "
            f"k={self.k}, slope_mode={self.slope_mode!r}, "
            f"trainable={self.bound.requires_grad}"
        )
