"""Resilience post-training (FitAct stage 2, paper §V-A/§V-B).

Solves the paper's Eq. 9 —

    min ΘR   subject to   A(ΘA) − A(ΘA, ΘR) < δ

— with the regularised loss of Eq. 10::

    L(D; ΘA, ΘR) = L(D; ΘA) + (ζ/N) · Σᵢ λᵢ²

Only the bound parameters ΘR are updated (Adam, per §V-B); the weights
ΘA stay frozen.  The δ constraint is enforced by tracking the
best-so-far state (smallest mean bound whose clean accuracy stays within
δ of the reference) and rolling back to it at the end — so a run that
over-shrinks never ships the over-shrunk bounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.core.training import evaluate_accuracy
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module, invalidate_runtime_plans
from repro.nn.parameter import Parameter
from repro.optim.adam import Adam
from repro.utils.logging import get_logger

__all__ = [
    "BoundPostTrainer",
    "PostTrainingConfig",
    "PostTrainingReport",
    "install_clean_accuracy_factory",
]

_logger = get_logger("core.post_training")

#: Hook installed by a higher layer (``repro.eval`` on import): a
#: ``factory(model, eval_loader) -> Callable[[], float]`` returning a
#: clean-accuracy closure.  ``core`` sits below the compiled runtime in
#: the layer DAG (RPL006), so the fast probe is injected from above
#: rather than imported; the module-forward fallback is always
#: available and bit-identical (the compiled-plan contract), making the
#: hook a pure wall-clock optimisation.
_CLEAN_ACCURACY_FACTORY = None


def install_clean_accuracy_factory(factory) -> None:
    """Install the compiled clean-accuracy probe (see above); idempotent."""
    global _CLEAN_ACCURACY_FACTORY
    _CLEAN_ACCURACY_FACTORY = factory


@dataclass
class PostTrainingConfig:
    """Hyper-parameters of the bound-learning stage.

    Parameters
    ----------
    epochs:
        Post-training epochs; the paper's stage is "lightweight" (~6% of
        conventional training time), so this is small.
    lr:
        Adam learning rate over the bounds.
    zeta:
        Regularisation strength ζ of Eq. 10 (scaled by 1/N internally).
        The default is deliberately gentle: on width-scaled models the
        resilience benefit of per-neuron bounds comes almost entirely
        from the granularity, and aggressive λ-shrink trades clean-margin
        for nothing (bench ABL-Z quantifies this trade).
    delta:
        Maximum tolerated clean-accuracy drop (Eq. 8's δ).
    bound_floor:
        Bounds are projected to at least this value after every step;
        a bound at 0 would permanently kill its neuron.
    max_batches:
        Optional cap on batches per epoch (for quick runs/tests).
    """

    epochs: int = 8
    lr: float = 0.005
    zeta: float = 0.05
    delta: float = 0.01
    bound_floor: float = 1e-3
    max_batches: int | None = None


@dataclass
class PostTrainingReport:
    """Outcome of bound post-training."""

    epochs_run: int
    duration_seconds: float
    reference_accuracy: float
    initial_accuracy: float
    final_accuracy: float
    initial_mean_bound: float
    final_mean_bound: float
    rolled_back: bool
    history: list[dict[str, float]] = field(default_factory=list)

    @property
    def bound_shrink(self) -> float:
        """Relative reduction of the mean bound (1 − final/initial)."""
        if self.initial_mean_bound == 0:
            return 0.0
        return 1.0 - self.final_mean_bound / self.initial_mean_bound

    def summary(self) -> str:
        return (
            f"post-trained {self.epochs_run} epochs in {self.duration_seconds:.1f}s: "
            f"mean bound {self.initial_mean_bound:.4f} → {self.final_mean_bound:.4f} "
            f"({self.bound_shrink:.1%} shrink), clean accuracy "
            f"{self.initial_accuracy:.2%} → {self.final_accuracy:.2%} "
            f"(reference {self.reference_accuracy:.2%})"
        )


class BoundPostTrainer:
    """Learns activation bounds (ΘR) on a frozen-weight model.

    Collects every *trainable* bound parameter — FitReLU's λᵢ (the
    paper's case) and any :class:`~repro.core.bounded_tanh.BoundedTanh`
    built with ``trainable=True`` (an extension: the smooth tanh gate is
    differentiable in λ exactly like FitReLU's sigmoid gate).
    """

    def __init__(self, model: Module, config: PostTrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or PostTrainingConfig()
        self.loss_fn = CrossEntropyLoss()
        self._bounds = self._collect_bounds()

    def _collect_bounds(self) -> list[Parameter]:
        bounds = [
            module.bound
            for module in self.model.modules()
            if isinstance(module, (FitReLU, BoundedTanh))
            and module.bound.requires_grad
        ]
        if not bounds:
            raise ConfigurationError(
                "model has no trainable activation bounds; apply FitAct "
                "surgery (or install trainable BoundedTanh modules) first"
            )
        return bounds

    @property
    def bound_parameters(self) -> list[Parameter]:
        """The ΘR parameter set (read-only view)."""
        return list(self._bounds)

    @property
    def total_bounds(self) -> int:
        """N — the number of individual bound values (Eq. 10's divisor)."""
        return sum(b.size for b in self._bounds)

    def mean_bound(self) -> float:
        total = sum(float(b.data.sum()) for b in self._bounds)
        return total / self.total_bounds

    def _snapshot(self) -> list[np.ndarray]:
        return [b.data.copy() for b in self._bounds]

    def _restore(self, snapshot: list[np.ndarray]) -> None:
        for bound, saved in zip(self._bounds, snapshot):
            # Rebinding .data is safe here only because the compiled-plan
            # cache is flushed right after the loop (RPL001).
            bound.data = saved.copy()  # repro-lint: disable=RPL001
        invalidate_runtime_plans(self.model)

    def _freeze_weights(self) -> list[Parameter]:
        """Turn off gradients for every non-bound parameter; returns them."""
        bound_ids = {id(b) for b in self._bounds}
        frozen = []
        for param in self.model.parameters():
            if id(param) not in bound_ids and param.requires_grad:
                param.requires_grad = False
                frozen.append(param)
        return frozen

    def regulariser(self) -> float:
        """Current value of (ζ/N)·Σλ² (diagnostics)."""
        zeta = self.config.zeta
        total = sum(float((b.data.astype(np.float64) ** 2).sum()) for b in self._bounds)
        return zeta / self.total_bounds * total

    def _clean_accuracy_probe(self, eval_loader: DataLoader):
        """Zero-argument clean-accuracy closure over ``eval_loader``.

        Bound post-training evaluates the full eval set once per epoch
        (the δ-constraint probe); through the module forward that is the
        slowest part of the whole "lightweight" stage.  When the
        compiled probe factory is installed (it is whenever
        ``repro.eval`` has been imported), the probe materialises the
        batches once and runs them through a forward-only compiled plan
        — bit-identical accuracies (plans are bit-exact with the
        eval-mode forward, and kernels read activation bounds live, so
        every Adam step and bound projection is visible without
        recompilation) at compiled-forward cost.
        """
        if _CLEAN_ACCURACY_FACTORY is not None:
            return _CLEAN_ACCURACY_FACTORY(self.model, eval_loader)
        return lambda: evaluate_accuracy(self.model, eval_loader)

    def run(
        self,
        train_loader: DataLoader,
        eval_loader: DataLoader,
        reference_accuracy: float | None = None,
    ) -> PostTrainingReport:
        """Execute post-training and return the report.

        ``reference_accuracy`` is A(ΘA) in Eq. 8 — the accuracy of the
        original (unmodified) model.  When omitted, the modified model's
        pre-post-training accuracy is used, which matches it closely since
        bounds start at the observed maxima.
        """
        config = self.config
        frozen = self._freeze_weights()
        was_training = self.model.training
        # Weights are frozen and BN statistics must not drift: the model
        # stays in eval mode while bound gradients are still recorded.
        self.model.eval()
        optimizer = Adam(self._bounds, lr=config.lr)
        n = self.total_bounds
        clean_accuracy = self._clean_accuracy_probe(eval_loader)
        start = time.perf_counter()

        initial_accuracy = clean_accuracy()
        reference = (
            initial_accuracy if reference_accuracy is None else reference_accuracy
        )
        initial_mean = self.mean_bound()
        best_snapshot = self._snapshot()
        best_mean = initial_mean
        best_accuracy = initial_accuracy
        constraint_met = reference - initial_accuracy < config.delta
        # Fallback when the δ constraint proves infeasible (surgery cost
        # more clean accuracy than δ and no epoch recovers it): the
        # closest feasible point of Eq. 8 is then the *most accurate*
        # state seen, never the initial one.
        acc_snapshot = self._snapshot()
        acc_best = initial_accuracy
        acc_mean = initial_mean
        history: list[dict[str, float]] = []
        epochs_run = 0
        try:
            for epoch in range(config.epochs):
                epochs_run = epoch + 1
                losses = []
                for batch_index, (inputs, targets) in enumerate(train_loader):
                    if (
                        config.max_batches is not None
                        and batch_index >= config.max_batches
                    ):
                        break
                    optimizer.zero_grad()
                    logits = self.model(inputs)
                    task_loss = self.loss_fn(logits, targets)
                    reg = self._bound_penalty()
                    loss = task_loss + (config.zeta / n) * reg
                    loss.backward()
                    optimizer.step()
                    self._project_bounds()
                    losses.append(task_loss.item())
                accuracy = clean_accuracy()
                mean_bound = self.mean_bound()
                history.append(
                    {
                        "epoch": float(epoch),
                        "loss": float(np.mean(losses)) if losses else float("nan"),
                        "clean_accuracy": accuracy,
                        "mean_bound": mean_bound,
                    }
                )
                _logger.info(
                    "post-epoch %d: loss %.4f acc %.2f%% mean bound %.4f",
                    epoch,
                    history[-1]["loss"],
                    100 * accuracy,
                    mean_bound,
                )
                within_constraint = reference - accuracy < config.delta
                if within_constraint and mean_bound < best_mean:
                    best_snapshot = self._snapshot()
                    best_mean = mean_bound
                    best_accuracy = accuracy
                    constraint_met = True
                if accuracy > acc_best:
                    acc_snapshot = self._snapshot()
                    acc_best = accuracy
                    acc_mean = mean_bound
        finally:
            for param in frozen:
                param.requires_grad = True
            self.model.train(was_training)

        final_mean = self.mean_bound()
        final_accuracy = (
            history[-1]["clean_accuracy"] if history else initial_accuracy
        )
        rolled_back = False
        if not constraint_met:
            # Constraint infeasible for every visited state: ship the
            # most accurate one (Eq. 8's objective is moot when its
            # feasible set is empty; accuracy recovery dominates).
            if final_accuracy < acc_best:
                self._restore(acc_snapshot)
                final_mean = acc_mean
                final_accuracy = acc_best
                rolled_back = True
        else:
            violates = reference - final_accuracy >= config.delta
            if violates or final_mean > best_mean:
                self._restore(best_snapshot)
                final_mean = best_mean
                final_accuracy = best_accuracy
                rolled_back = True
        duration = time.perf_counter() - start
        report = PostTrainingReport(
            epochs_run=epochs_run,
            duration_seconds=duration,
            reference_accuracy=reference,
            initial_accuracy=initial_accuracy,
            final_accuracy=final_accuracy,
            initial_mean_bound=initial_mean,
            final_mean_bound=final_mean,
            rolled_back=rolled_back,
            history=history,
        )
        _logger.info(report.summary())
        return report

    def _bound_penalty(self):
        """Σλ² as an autograd expression (the Eq. 10 regulariser)."""
        total = None
        for bound in self._bounds:
            term = (bound * bound).sum()
            total = term if total is None else total + term
        return total

    def _project_bounds(self) -> None:
        floor = self.config.bound_floor
        for bound in self._bounds:
            np.maximum(bound.data, floor, out=bound.data)
