"""Activation-range profiling.

FitAct initialises every bound λᵢ "to their maximum values over the
training dataset" (paper §V); the baselines derive their layer-global λ
from the same maxima (paper §III-C).  The profiler temporarily swaps each
ReLU for a recording variant, streams the training data through the
model, and collects the elementwise maximum of every activation site.
Fig. 2 (the per-neuron max distribution motivating FitAct) reads straight
off the resulting profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd import ops_nn
from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.activations import ReLU
from repro.nn.module import Module

__all__ = ["ActivationProfile", "RecordingReLU", "profile_activations"]

_GRANULARITIES = ("neuron", "channel", "layer")


class RecordingReLU(Module):
    """Drop-in ReLU that tracks the elementwise max of its output.

    The running maximum has the unbatched activation shape; it starts at
    zero because ReLU output is non-negative.
    """

    def __init__(self) -> None:
        super().__init__()
        self.max_activation: np.ndarray | None = None
        self.batches_seen = 0

    def forward(self, x: Tensor) -> Tensor:
        out = ops_nn.relu(x)
        batch_max = out.data.max(axis=0)
        if self.max_activation is None:
            self.max_activation = batch_max.copy()
        else:
            np.maximum(self.max_activation, batch_max, out=self.max_activation)
        self.batches_seen += 1
        return out


@dataclass
class ActivationProfile:
    """Per-site elementwise activation maxima.

    ``site_max`` maps a dotted module path (the position of the original
    ReLU) to the unbatched max array observed there.
    """

    site_max: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def sites(self) -> list[str]:
        return list(self.site_max)

    @property
    def total_neurons(self) -> int:
        """Total neuron count N across profiled sites (paper Eq. 5)."""
        return sum(int(arr.size) for arr in self.site_max.values())

    def bounds(
        self, site: str, granularity: str = "neuron", floor: float = 1e-3
    ) -> np.ndarray:
        """Initial bound array for ``site`` at the requested granularity.

        ``floor`` keeps bounds of dead neurons strictly positive.
        """
        if granularity not in _GRANULARITIES:
            raise ConfigurationError(
                f"granularity must be one of {_GRANULARITIES}, got {granularity!r}"
            )
        maxima = self.site_max[site]
        if granularity == "neuron":
            bounds = maxima.copy()
        elif granularity == "channel":
            if maxima.ndim >= 3:
                reduced = maxima.max(axis=tuple(range(1, maxima.ndim)))
                bounds = reduced.reshape((-1,) + (1,) * (maxima.ndim - 1))
            else:
                bounds = maxima.copy()
        else:  # layer
            bounds = np.asarray([maxima.max()], dtype=maxima.dtype)
        return np.maximum(bounds, floor).astype(np.float32)

    def layer_bound(self, site: str) -> float:
        """The GBReLU layer-global bound: max over all the site's neurons."""
        return float(self.site_max[site].max())

    def neuron_distribution(self, site: str) -> np.ndarray:
        """Flat per-neuron maxima at a site — the data behind Fig. 2."""
        return self.site_max[site].reshape(-1).copy()

    def spread(self, site: str) -> dict[str, float]:
        """Summary of how wildly neuron maxima vary (Fig. 2's argument)."""
        values = self.neuron_distribution(site)
        return {
            "min": float(values.min()),
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "max": float(values.max()),
            "std": float(values.std()),
        }


def profile_activations(
    model: Module,
    loader: DataLoader,
    max_batches: int | None = None,
    target_type: type[Module] = ReLU,
) -> ActivationProfile:
    """Collect per-neuron activation maxima at every ``target_type`` site.

    Swaps recorders in, streams ``loader`` (eval mode, gradients off),
    restores the original modules, and returns the profile.  The model is
    left exactly as found.
    """
    sites = [
        (path, module)
        for path, module in model.named_modules()
        if type(module) is target_type
    ]
    if not sites:
        raise ConfigurationError(
            f"model contains no {target_type.__name__} activation sites to profile"
        )
    recorders = {path: RecordingReLU() for path, _ in sites}
    originals = dict(sites)
    was_training = model.training
    for path, recorder in recorders.items():
        model.set_submodule(path, recorder)
    model.eval()
    try:
        with no_grad():
            for index, (inputs, _) in enumerate(loader):
                if max_batches is not None and index >= max_batches:
                    break
                model(inputs)
    finally:
        for path, original in originals.items():
            model.set_submodule(path, original)
        model.train(was_training)
    profile = ActivationProfile()
    for path, recorder in recorders.items():
        if recorder.max_activation is None:
            raise ConfigurationError("profiling saw no data; loader was empty")
        profile.site_max[path] = recorder.max_activation
    return profile
