"""Unified protection API: one call to apply any scheme from the paper.

``protect_model`` profiles activations, performs surgery for the chosen
method, and returns a report; ``PROTECTION_METHODS`` enumerates the
schemes the paper evaluates, the Tanh-swap baseline from its related
work, and ``"none"`` for the unprotected baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fitrelu import DEFAULT_SLOPE
from repro.core.profiler import ActivationProfile, profile_activations
from repro.core.surgery import bound_parameter_count, make_factory, replace_activations
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.module import Module

__all__ = ["PROTECTION_METHODS", "ProtectionConfig", "ProtectionReport", "protect_model"]

PROTECTION_METHODS = ("fitact", "fitact-naive", "clipact", "ranger", "tanh", "none")
"""Schemes of the paper's evaluation (§VI-B) plus the unprotected baseline
and the Tanh-swap baseline of Hong et al. [17] (related work §II-D)."""

_METHOD_DEFAULT_GRANULARITY = {
    "fitact": "neuron",
    "fitact-naive": "neuron",
    "clipact": "layer",
    "ranger": "layer",
    "tanh": "layer",
}


@dataclass(frozen=True)
class ProtectionConfig:
    """How to protect a model.

    Parameters
    ----------
    method:
        One of :data:`PROTECTION_METHODS`.
    granularity:
        Bound granularity ``"neuron" | "channel" | "layer"``; None picks
        the method's paper default (neuron for FitAct variants, layer for
        Clip-Act/Ranger).
    k:
        FitReLU descent slope (FitAct only).
    slope_mode:
        FitReLU slope scaling: ``"relative"`` (k/λ per neuron, default) or
        ``"absolute"`` (Eq. 6's fixed k).
    bound_scale:
        Multiplier on the profiled bounds (1.0 = the observed maxima;
        swept by the Fig. 1 experiment).
    bound_floor:
        Minimum initial bound (keeps dead neurons alive).
    profile_batches:
        Batches of the training loader used for range profiling
        (None = all).
    """

    method: str = "fitact"
    granularity: str | None = None
    k: float = DEFAULT_SLOPE
    slope_mode: str = "relative"
    bound_scale: float = 1.0
    bound_floor: float = 1e-3
    profile_batches: int | None = None

    def __post_init__(self) -> None:
        if self.method not in PROTECTION_METHODS:
            raise ConfigurationError(
                f"method must be one of {PROTECTION_METHODS}, got {self.method!r}"
            )
        if self.granularity is not None and self.granularity not in (
            "neuron",
            "channel",
            "layer",
        ):
            raise ConfigurationError(f"unknown granularity {self.granularity!r}")

    @property
    def effective_granularity(self) -> str:
        if self.method == "none":
            return "layer"
        return self.granularity or _METHOD_DEFAULT_GRANULARITY[self.method]


@dataclass
class ProtectionReport:
    """What surgery did to the model."""

    method: str
    granularity: str
    replaced_sites: list[str] = field(default_factory=list)
    bound_words: int = 0
    profile: ActivationProfile | None = None

    def summary(self) -> str:
        return (
            f"{self.method} ({self.granularity} bounds): protected "
            f"{len(self.replaced_sites)} activation sites with "
            f"{self.bound_words} bound words"
        )


def protect_model(
    model: Module,
    loader: DataLoader,
    config: ProtectionConfig | None = None,
    profile: ActivationProfile | None = None,
) -> ProtectionReport:
    """Profile (if needed) and apply the configured protection in place.

    ``method="none"`` returns an empty report without touching the model.
    Pass a pre-computed ``profile`` to amortise profiling across several
    protection configurations of the same trained weights.
    """
    config = config or ProtectionConfig()
    if config.method == "none":
        return ProtectionReport(method="none", granularity="-")
    if profile is None:
        profile = profile_activations(model, loader, max_batches=config.profile_batches)
    factory = make_factory(
        config.method,
        k=config.k,
        bound_scale=config.bound_scale,
        slope_mode=config.slope_mode,
    )
    replaced = replace_activations(
        model,
        factory,
        profile,
        granularity=config.effective_granularity,
        bound_floor=config.bound_floor,
    )
    return ProtectionReport(
        method=config.method,
        granularity=config.effective_granularity,
        replaced_sites=replaced,
        bound_words=bound_parameter_count(model),
        profile=profile,
    )
