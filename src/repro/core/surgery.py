"""Model surgery: swapping activation functions in a trained model.

The paper's "DNN Architecture Modification" step (Fig. 4, §V): after
conventional training, every ReLU is replaced by a protected activation
whose bounds come from the activation profile.  Surgery is by module
path, reversible, and validated in tests to leave clean predictions
unchanged when the replacement is the identity-region of the original.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import DEFAULT_SLOPE, FitReLU
from repro.core.profiler import ActivationProfile
from repro.errors import ConfigurationError
from repro.nn.activations import ReLU
from repro.nn.module import Module

__all__ = [
    "bound_modules",
    "bound_parameter_count",
    "find_activation_sites",
    "make_factory",
    "replace_activations",
    "restore_relu",
]

ActivationFactory = Callable[[str, np.ndarray], Module]


def find_activation_sites(
    model: Module, target_type: type[Module] = ReLU
) -> list[str]:
    """Dotted paths of every ``target_type`` activation in the model."""
    return [
        path for path, module in model.named_modules() if type(module) is target_type
    ]


def replace_activations(
    model: Module,
    factory: ActivationFactory,
    profile: ActivationProfile,
    granularity: str = "neuron",
    bound_floor: float = 1e-3,
) -> list[str]:
    """Replace each profiled ReLU site with ``factory(path, bounds)``.

    The bounds array passed to the factory is derived from the profile at
    the requested granularity.  Returns the list of replaced paths.
    """
    replaced = []
    for path in profile.sites:
        bounds = profile.bounds(path, granularity=granularity, floor=bound_floor)
        replacement = factory(path, bounds)
        if not isinstance(replacement, Module):
            raise ConfigurationError(
                f"activation factory returned {type(replacement).__name__}, "
                "expected a Module"
            )
        model.set_submodule(path, replacement)
        replaced.append(path)
    return replaced


def restore_relu(model: Module) -> int:
    """Swap every protected activation back to a plain ReLU.

    Returns the number of restored sites.  Used by overhead benchmarks to
    time the same weights with and without protection.
    """
    protected = [
        path
        for path, module in model.named_modules()
        if isinstance(module, (BoundedReLU, FitReLU, BoundedTanh))
    ]
    for path in protected:
        model.set_submodule(path, ReLU())
    return len(protected)


def bound_modules(model: Module) -> dict[str, Module]:
    """All protected-activation modules by path (FitReLU and BoundedReLU)."""
    return {
        path: module
        for path, module in model.named_modules()
        if isinstance(module, (BoundedReLU, FitReLU, BoundedTanh))
    }


def bound_parameter_count(model: Module) -> int:
    """Total stored bound words — the FitAct memory overhead source."""
    return sum(
        int(module.bound.size)
        for module in model.modules()
        if isinstance(module, (BoundedReLU, FitReLU, BoundedTanh))
    )


def make_factory(
    method: str,
    k: float = DEFAULT_SLOPE,
    bound_scale: float = 1.0,
    trainable: bool = True,
    slope_mode: str = "relative",
) -> ActivationFactory:
    """Build an activation factory for a protection method.

    ``bound_scale`` multiplies the profiled bounds — the knob the Fig. 1
    sweep turns (global bound value vs resilience).
    """
    if bound_scale <= 0:
        raise ConfigurationError(f"bound_scale must be positive, got {bound_scale}")

    def scaled(bounds: np.ndarray) -> np.ndarray:
        return (bounds * bound_scale).astype(np.float32)

    if method == "fitact":
        return lambda path, bounds: FitReLU(
            scaled(bounds), k=k, slope_mode=slope_mode, trainable=trainable
        )
    if method == "fitact-naive":
        return lambda path, bounds: FitReLUNaive(scaled(bounds))
    if method == "clipact":
        return lambda path, bounds: GBReLU(float(scaled(bounds).max()), mode="zero")
    if method == "ranger":
        return lambda path, bounds: GBReLU(float(scaled(bounds).max()), mode="saturate")
    if method == "tanh":
        return lambda path, bounds: BoundedTanh(scaled(bounds))
    raise ConfigurationError(
        "method must be one of 'fitact', 'fitact-naive', 'clipact', 'ranger', "
        f"'tanh'; got {method!r}"
    )
