"""Conventional accuracy training (FitAct stage 1, paper Fig. 4).

Plain supervised training of the weight/bias parameters ΘA with SGD — no
resilience consideration, exactly as the paper prescribes: "Its goal is
to learn the weight and bias parameters to improve the model accuracy,
without the consideration of error resilience."
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.data.loader import DataLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module, eval_mode
from repro.optim.scheduler import CosineAnnealingLR
from repro.optim.sgd import SGD
from repro.utils.logging import get_logger

__all__ = ["Trainer", "TrainingConfig", "TrainingReport", "evaluate_accuracy"]

_logger = get_logger("core.training")


def evaluate_accuracy(
    model: Module, loader: DataLoader, max_batches: int | None = None
) -> float:
    """Top-1 accuracy of ``model`` over ``loader`` (eval mode, no grads).

    Eval semantics come from the thread-local override, so the shared
    training flag is never written.  This is the paper's metric
    everywhere: "we compute the top-1 classification accuracy"
    (§VI-A1).
    """
    correct = 0
    total = 0
    with eval_mode(), no_grad():
        for index, (inputs, targets) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            logits = model(inputs)
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == targets).sum())
            total += len(targets)
    if total == 0:
        raise ValueError("evaluation loader produced no samples")
    return correct / total


def _clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Guards SGD-with-momentum against the loss spikes that otherwise blow
    up small un-normalised networks at aggressive learning rates.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad.astype(np.float64) ** 2).sum())
    norm = total**0.5
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


@dataclass
class TrainingConfig:
    """Hyper-parameters for conventional accuracy training."""

    epochs: int = 10
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    cosine_schedule: bool = True
    grad_clip: float = 10.0  # global-norm clip (divergence guard); 0 disables
    log_every: int = 0  # batches between log lines; 0 silences


@dataclass
class TrainingReport:
    """Outcome of a training run."""

    epochs: int
    duration_seconds: float
    final_train_loss: float
    final_accuracy: float | None
    history: list[dict[str, float]] = field(default_factory=list)

    def summary(self) -> str:
        accuracy = (
            f", eval accuracy {self.final_accuracy:.2%}"
            if self.final_accuracy is not None
            else ""
        )
        return (
            f"trained {self.epochs} epochs in {self.duration_seconds:.1f}s, "
            f"final loss {self.final_train_loss:.4f}{accuracy}"
        )


class Trainer:
    """SGD trainer for stage-1 accuracy training."""

    def __init__(self, model: Module, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.loss_fn = CrossEntropyLoss()

    def fit(
        self, train_loader: DataLoader, eval_loader: DataLoader | None = None
    ) -> TrainingReport:
        """Train for the configured epochs; returns a report with history."""
        config = self.config
        optimizer = SGD(
            self.model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        scheduler = (
            CosineAnnealingLR(optimizer, t_max=config.epochs)
            if config.cosine_schedule
            else None
        )
        history: list[dict[str, float]] = []
        start = time.perf_counter()
        epoch_loss = float("nan")
        for epoch in range(config.epochs):
            self.model.train()
            losses = []
            for batch_index, (inputs, targets) in enumerate(train_loader):
                optimizer.zero_grad()
                logits = self.model(inputs)
                loss = self.loss_fn(logits, targets)
                loss.backward()
                if config.grad_clip:
                    _clip_grad_norm(optimizer.parameters, config.grad_clip)
                optimizer.step()
                losses.append(loss.item())
                if config.log_every and (batch_index + 1) % config.log_every == 0:
                    _logger.info(
                        "epoch %d batch %d loss %.4f",
                        epoch,
                        batch_index + 1,
                        losses[-1],
                    )
            epoch_loss = float(np.mean(losses)) if losses else float("nan")
            entry = {"epoch": float(epoch), "loss": epoch_loss, "lr": optimizer.lr}
            if eval_loader is not None:
                entry["accuracy"] = evaluate_accuracy(self.model, eval_loader)
            history.append(entry)
            _logger.info(
                "epoch %d: loss %.4f%s",
                epoch,
                epoch_loss,
                f" acc {entry['accuracy']:.2%}" if "accuracy" in entry else "",
            )
            if scheduler is not None:
                scheduler.step()
        duration = time.perf_counter() - start
        final_accuracy = history[-1].get("accuracy") if history else None
        return TrainingReport(
            epochs=config.epochs,
            duration_seconds=duration,
            final_train_loss=epoch_loss,
            final_accuracy=final_accuracy,
            history=history,
        )
