"""Datasets, loaders and transforms.

The SynthCIFAR datasets stand in for CIFAR-10/100 (offline substitution —
see DESIGN.md): deterministic, class-conditional procedural images that a
small CNN learns to high accuracy.
"""

from repro.data.dataset import ArrayDataset, Dataset, Subset
from repro.data.loader import DataLoader
from repro.data.splits import random_split, stratified_split
from repro.data.synthetic import (
    SYNTH_MEAN,
    SYNTH_STD,
    ClassRecipe,
    SyntheticImageDataset,
    synth_cifar10,
    synth_cifar100,
)
from repro.data.transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip

__all__ = [
    "SYNTH_MEAN",
    "SYNTH_STD",
    "ArrayDataset",
    "ClassRecipe",
    "Compose",
    "DataLoader",
    "Dataset",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Subset",
    "SyntheticImageDataset",
    "random_split",
    "stratified_split",
    "synth_cifar10",
    "synth_cifar100",
]
