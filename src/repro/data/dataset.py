"""Dataset abstractions."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["ArrayDataset", "Dataset", "Subset"]


class Dataset:
    """Minimal map-style dataset: ``__len__`` and ``__getitem__``.

    ``__getitem__`` returns ``(image, label)`` with the image a float32
    CHW array and the label a python int.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over pre-materialised arrays.

    Parameters
    ----------
    data:
        (N, ...) float array of samples.
    targets:
        (N,) integer labels.
    """

    def __init__(self, data: np.ndarray, targets: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float32)
        targets = np.asarray(targets, dtype=np.int64)
        if len(data) != len(targets):
            raise ShapeError(
                f"data length {len(data)} != targets length {len(targets)}"
            )
        self.data = data
        self.targets = targets

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.data[index], int(self.targets[index])

    @property
    def num_classes(self) -> int:
        return int(self.targets.max()) + 1 if len(self.targets) else 0


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: np.ndarray) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.dataset[int(self.indices[index])]
