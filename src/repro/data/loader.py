"""Mini-batch loader."""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataset import ArrayDataset, Dataset
from repro.errors import ConfigurationError
from repro.utils.rng import new_rng

__all__ = ["DataLoader"]

Transform = Callable[[np.ndarray], np.ndarray]


class DataLoader:
    """Iterate a dataset in (optionally shuffled) mini-batches.

    Yields ``(Tensor inputs, int64 target array)`` pairs.  Array-backed
    datasets are batched with fancy indexing; generic datasets fall back
    to a per-sample gather.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Samples per batch (the final batch may be smaller unless
        ``drop_last``).
    shuffle:
        Reshuffle at the start of every epoch.
    transform:
        Optional batched transform applied to the stacked inputs.
    rng:
        Shuffle generator or seed (ignored when ``shuffle`` is False).
    drop_last:
        Drop the final ragged batch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        transform: Transform | None = None,
        rng: np.random.Generator | int | None = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.transform = transform
        self.drop_last = bool(drop_last)
        self._rng = new_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            inputs, targets = self._gather(indices)
            if self.transform is not None:
                inputs = self.transform(inputs)
            yield Tensor(np.ascontiguousarray(inputs)), targets

    def _gather(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(self.dataset, ArrayDataset):
            return self.dataset.data[indices], self.dataset.targets[indices]
        samples = [self.dataset[int(i)] for i in indices]
        inputs = np.stack([s[0] for s in samples]).astype(np.float32)
        targets = np.asarray([s[1] for s in samples], dtype=np.int64)
        return inputs, targets
