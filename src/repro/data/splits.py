"""Dataset splitting helpers."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, Subset
from repro.errors import ConfigurationError
from repro.utils.rng import new_rng

__all__ = ["random_split", "stratified_split"]


def random_split(
    dataset: Dataset,
    fractions: tuple[float, ...],
    rng: np.random.Generator | int | None = None,
) -> list[Subset]:
    """Split a dataset into random subsets with the given fractions."""
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ConfigurationError(f"fractions must sum to 1, got {fractions}")
    n = len(dataset)
    order = new_rng(rng).permutation(n)
    sizes = [int(round(f * n)) for f in fractions]
    sizes[-1] = n - sum(sizes[:-1])
    subsets = []
    start = 0
    for size in sizes:
        subsets.append(Subset(dataset, order[start : start + size]))
        start += size
    return subsets


def stratified_split(
    targets: np.ndarray,
    fraction: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Index split preserving class proportions.

    Returns ``(first_indices, second_indices)`` where the first part holds
    roughly ``fraction`` of every class.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
    targets = np.asarray(targets)
    generator = new_rng(rng)
    first: list[np.ndarray] = []
    second: list[np.ndarray] = []
    for class_id in np.unique(targets):
        class_indices = np.flatnonzero(targets == class_id)
        generator.shuffle(class_indices)
        cut = max(1, int(round(fraction * len(class_indices))))
        first.append(class_indices[:cut])
        second.append(class_indices[cut:])
    return np.sort(np.concatenate(first)), np.sort(np.concatenate(second))
