"""SynthCIFAR: procedural class-conditional image datasets.

The paper evaluates on CIFAR-10/100, which cannot be downloaded in this
offline environment, so we synthesise datasets with the properties the
FitAct evaluation actually relies on (see DESIGN.md substitution #1):

1. a small CNN reaches high clean accuracy (class structure is learnable);
2. post-ReLU per-neuron activation maxima spread widely (Fig. 2's premise);
3. bit-flipped Q15.16 parameters push activations far outside the trained
   range (so bounding is the operative protection mechanism).

Each class owns a deterministic generative recipe — base palette, an
oriented sinusoidal texture, and a filled shape (disk / square / cross /
ring / stripes) — and samples vary by jitter, flips, phase shifts and
pixel noise.  A 100-class variant packs classes more densely in recipe
space so it is measurably harder, mirroring CIFAR-100 vs CIFAR-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.errors import ConfigurationError
from repro.utils.rng import derive_seed, new_rng

__all__ = [
    "SYNTH_MEAN",
    "SYNTH_STD",
    "ClassRecipe",
    "SyntheticImageDataset",
    "synth_cifar10",
    "synth_cifar100",
]

_SHAPE_FAMILIES = ("disk", "square", "cross", "ring", "stripes")

SYNTH_MEAN = (0.44, 0.44, 0.44)
"""Per-channel mean of SynthCIFAR images (for Normalize transforms)."""

SYNTH_STD = (0.21, 0.21, 0.21)
"""Per-channel std of SynthCIFAR images (for Normalize transforms)."""


@dataclass(frozen=True)
class ClassRecipe:
    """Deterministic generative parameters for one class."""

    base_color: np.ndarray  # (3,) background palette
    shape_color: np.ndarray  # (3,) foreground palette
    shape_family: str  # one of _SHAPE_FAMILIES
    shape_size: float  # radius as fraction of image size
    center: tuple[float, float]  # mean shape centre in [0, 1]²
    frequency: float  # texture cycles across the image
    orientation: float  # texture angle in radians
    amplitude: float  # texture contrast

    @classmethod
    def for_class(cls, class_index: int, num_classes: int, seed: int) -> "ClassRecipe":
        """Derive the recipe for ``class_index`` from the dataset seed."""
        rng = new_rng(derive_seed(seed, "class-recipe", class_index))
        base = rng.uniform(0.15, 0.6, size=3)
        shape_color = rng.uniform(0.4, 0.95, size=3)
        # Guarantee foreground/background contrast.
        while np.abs(shape_color - base).sum() < 0.6:
            shape_color = rng.uniform(0.05, 0.95, size=3)
        family = _SHAPE_FAMILIES[class_index % len(_SHAPE_FAMILIES)]
        return cls(
            base_color=base.astype(np.float32),
            shape_color=shape_color.astype(np.float32),
            shape_family=family,
            shape_size=float(rng.uniform(0.18, 0.34)),
            center=(float(rng.uniform(0.35, 0.65)), float(rng.uniform(0.35, 0.65))),
            frequency=float(rng.uniform(1.0, 4.5)),
            orientation=float(rng.uniform(0.0, np.pi)),
            amplitude=float(rng.uniform(0.08, 0.22)),
        )


def _shape_mask(
    family: str,
    size: int,
    centers_y: np.ndarray,
    centers_x: np.ndarray,
    radii: np.ndarray,
) -> np.ndarray:
    """Vectorised (B, H, W) boolean masks for a batch of shape instances."""
    ys = np.arange(size, dtype=np.float32)[None, :, None]
    xs = np.arange(size, dtype=np.float32)[None, None, :]
    cy = centers_y[:, None, None]
    cx = centers_x[:, None, None]
    r = radii[:, None, None]
    dy = ys - cy
    dx = xs - cx
    if family == "disk":
        return dy * dy + dx * dx <= r * r
    if family == "square":
        return (np.abs(dy) <= r) & (np.abs(dx) <= r)
    if family == "cross":
        arm = np.maximum(r * 0.4, 1.0)
        return ((np.abs(dy) <= arm) & (np.abs(dx) <= r)) | (
            (np.abs(dx) <= arm) & (np.abs(dy) <= r)
        )
    if family == "ring":
        dist_sq = dy * dy + dx * dx
        inner = np.maximum(r * 0.55, 1.0)
        return (dist_sq <= r * r) & (dist_sq >= inner * inner)
    if family == "stripes":
        period = np.maximum(r, 2.0)
        phase = np.floor((dy + dx) / period).astype(np.int64)
        box = (np.abs(dy) <= r) & (np.abs(dx) <= r)
        return box & (phase % 2 == 0)
    raise ConfigurationError(f"unknown shape family {family!r}")


class SyntheticImageDataset(ArrayDataset):
    """Procedurally generated classification images.

    Parameters
    ----------
    num_classes:
        Number of classes (recipes derived deterministically from ``seed``).
    num_samples:
        Total sample count, distributed as evenly as possible over classes.
    image_size:
        Square image side (default 32, matching CIFAR).
    seed:
        Dataset seed; together with ``split`` it fixes every pixel.
    split:
        ``"train"`` or ``"test"`` — both use the same class recipes but
        disjoint sample randomness.
    noise:
        Per-pixel Gaussian noise std.
    jitter:
        Maximum shape-centre translation in pixels.
    """

    def __init__(
        self,
        num_classes: int = 10,
        num_samples: int = 2000,
        image_size: int = 32,
        seed: int = 0,
        split: str = "train",
        noise: float = 0.04,
        jitter: int = 3,
    ) -> None:
        if split not in ("train", "test"):
            raise ConfigurationError(f"split must be 'train' or 'test', got {split!r}")
        if num_classes < 2:
            raise ConfigurationError(f"need >= 2 classes, got {num_classes}")
        if num_samples < num_classes:
            raise ConfigurationError(
                f"need >= 1 sample per class: {num_samples} samples, "
                f"{num_classes} classes"
            )
        self.num_classes_requested = num_classes
        self.image_size = int(image_size)
        self.seed = int(seed)
        self.split = split
        self.noise = float(noise)
        self.jitter = int(jitter)
        self.recipes = [
            ClassRecipe.for_class(c, num_classes, seed) for c in range(num_classes)
        ]

        counts = np.full(num_classes, num_samples // num_classes, dtype=np.int64)
        counts[: num_samples % num_classes] += 1
        images: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for class_index, count in enumerate(counts):
            if count == 0:
                continue
            batch = self._render_class(class_index, int(count))
            images.append(batch)
            labels.append(np.full(int(count), class_index, dtype=np.int64))
        data = np.concatenate(images, axis=0)
        targets = np.concatenate(labels, axis=0)
        # Deterministic interleave so batches are class-balanced.
        order = new_rng(derive_seed(seed, "order", split)).permutation(len(data))
        super().__init__(data[order], targets[order])

    def _render_class(self, class_index: int, count: int) -> np.ndarray:
        """Render ``count`` samples of one class as (count, 3, H, W)."""
        recipe = self.recipes[class_index]
        size = self.image_size
        rng = new_rng(derive_seed(self.seed, "render", self.split, class_index))

        ys = np.arange(size, dtype=np.float32)[:, None]
        xs = np.arange(size, dtype=np.float32)[None, :]
        direction = (
            np.cos(recipe.orientation) * xs / size + np.sin(recipe.orientation) * ys / size
        )
        phases = rng.uniform(0.0, 2.0 * np.pi, size=(count, 1, 1)).astype(np.float32)
        grating = recipe.amplitude * np.sin(
            2.0 * np.pi * recipe.frequency * direction[None] + phases
        )

        background = recipe.base_color[None, :, None, None] + grating[:, None]

        centers_y = recipe.center[0] * size + rng.integers(
            -self.jitter, self.jitter + 1, size=count
        )
        centers_x = recipe.center[1] * size + rng.integers(
            -self.jitter, self.jitter + 1, size=count
        )
        radii = recipe.shape_size * size * rng.uniform(0.85, 1.15, size=count)
        mask = _shape_mask(
            recipe.shape_family,
            size,
            centers_y.astype(np.float32),
            centers_x.astype(np.float32),
            radii.astype(np.float32),
        )

        color_jitter = rng.uniform(-0.05, 0.05, size=(count, 3, 1, 1)).astype(np.float32)
        foreground = recipe.shape_color[None, :, None, None] + color_jitter
        images = np.where(mask[:, None], foreground, background)

        flips = rng.random(count) < 0.5
        images[flips] = images[flips, :, :, ::-1]
        images += rng.normal(0.0, self.noise, size=images.shape).astype(np.float32)
        return np.clip(images, 0.0, 1.0).astype(np.float32)


def synth_cifar10(
    split: str = "train", num_samples: int | None = None, seed: int = 0
) -> SyntheticImageDataset:
    """SynthCIFAR-10: the CIFAR-10 stand-in (10 classes, 32×32×3).

    Defaults to 2000 train / 500 test samples — enough for the scaled
    experiments; pass ``num_samples`` for larger runs.
    """
    if num_samples is None:
        num_samples = 2000 if split == "train" else 500
    return SyntheticImageDataset(
        num_classes=10, num_samples=num_samples, seed=seed, split=split
    )


def synth_cifar100(
    split: str = "train", num_samples: int | None = None, seed: int = 0
) -> SyntheticImageDataset:
    """SynthCIFAR-100: the CIFAR-100 stand-in (100 classes).

    Classes share shape families (only 5 exist), so discrimination relies
    on finer palette/texture differences — measurably harder than the
    10-class variant, mirroring CIFAR-100 vs CIFAR-10.
    """
    if num_samples is None:
        num_samples = 4000 if split == "train" else 1000
    return SyntheticImageDataset(
        num_classes=100, num_samples=num_samples, seed=seed, split=split
    )
