"""Batched data transforms.

Transforms operate on (N, C, H, W) float arrays so the loader can apply
them per batch without a per-sample python loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.utils.rng import new_rng

__all__ = ["Compose", "Normalize", "RandomCrop", "RandomHorizontalFlip"]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: list) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Per-channel standardisation: ``(x - mean) / std``."""

    def __init__(self, mean: tuple[float, ...], std: tuple[float, ...]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ConfigurationError("std entries must be positive")

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4 or batch.shape[1] != self.mean.shape[1]:
            raise ShapeError(
                f"Normalize expects (N, {self.mean.shape[1]}, H, W), got {batch.shape}"
            )
        return (batch - self.mean) / self.std

    def __repr__(self) -> str:
        return (
            f"Normalize(mean={self.mean.reshape(-1).tolist()}, "
            f"std={self.std.reshape(-1).tolist()})"
        )


class RandomHorizontalFlip:
    """Flip each sample left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self._rng = new_rng(rng)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        flips = self._rng.random(len(batch)) < self.p
        if not flips.any():
            return batch
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Zero-pad by ``padding`` then crop back to the original size at a
    random offset per sample — the standard CIFAR augmentation."""

    def __init__(self, padding: int = 4, rng: np.random.Generator | int | None = None) -> None:
        if padding < 1:
            raise ConfigurationError(f"padding must be >= 1, got {padding}")
        self.padding = int(padding)
        self._rng = new_rng(rng)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ShapeError(f"RandomCrop expects (N, C, H, W), got {batch.shape}")
        n, _, h, w = batch.shape
        pad = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        offsets_y = self._rng.integers(0, 2 * pad + 1, size=n)
        offsets_x = self._rng.integers(0, 2 * pad + 1, size=n)
        out = np.empty_like(batch)
        for i in range(n):
            oy, ox = offsets_y[i], offsets_x[i]
            out[i] = padded[i, :, oy : oy + h, ox : ox + w]
        return out

    def __repr__(self) -> str:
        return f"RandomCrop(padding={self.padding})"
