"""Library-wide exception types.

A small hierarchy so callers can catch everything from this package with
one ``except ReproError`` while tests can assert on precise subclasses.
"""

from __future__ import annotations

__all__ = [
    "CampaignInterrupted",
    "ConfigurationError",
    "GraphError",
    "ReproError",
    "ServerOverloadedError",
    "ShapeError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CampaignInterrupted(ReproError):
    """A journaled campaign's new-trial budget ran out (``max_new_records``).

    Raised *before* the over-budget trial is journaled, so the store is
    left in a clean resumable state: re-running the same campaign with
    the same store picks up exactly where this run stopped.  Lives here
    (not in :mod:`repro.store`) because both the store layer and the
    lower fault layer raise it — the campaign loop checks the budget
    before dispatching work — and the fault layer must not import the
    store layer (RPL006).
    """


class ShapeError(ReproError, ValueError):
    """An operation received arrays with incompatible shapes."""


class GraphError(ReproError, RuntimeError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or module was configured with invalid options."""


class ServerOverloadedError(ReproError):
    """The serving tier shed this request (admission control).

    Maps to HTTP 429 with a ``Retry-After`` header; ``retry_after_s``
    carries the server's backoff hint (seconds).  Lives here (not in
    :mod:`repro.serve`) so clients can catch it without importing the
    server stack and lower layers can raise it without violating the
    layer DAG (RPL006).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
