"""Library-wide exception types.

A small hierarchy so callers can catch everything from this package with
one ``except ReproError`` while tests can assert on precise subclasses.
"""

from __future__ import annotations

__all__ = [
    "CampaignInterrupted",
    "ConfigurationError",
    "GraphError",
    "ReproError",
    "ShapeError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CampaignInterrupted(ReproError):
    """A journaled campaign's new-trial budget ran out (``max_new_records``).

    Raised *before* the over-budget trial is journaled, so the store is
    left in a clean resumable state: re-running the same campaign with
    the same store picks up exactly where this run stopped.  Lives here
    (not in :mod:`repro.store`) because both the store layer and the
    lower fault layer raise it — the campaign loop checks the budget
    before dispatching work — and the fault layer must not import the
    store layer (RPL006).
    """


class ShapeError(ReproError, ValueError):
    """An operation received arrays with incompatible shapes."""


class GraphError(ReproError, RuntimeError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or module was configured with invalid options."""
