"""Library-wide exception types.

A small hierarchy so callers can catch everything from this package with
one ``except ReproError`` while tests can assert on precise subclasses.
"""

from __future__ import annotations

__all__ = [
    "ConfigurationError",
    "GraphError",
    "ReproError",
    "ShapeError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """An operation received arrays with incompatible shapes."""


class GraphError(ReproError, RuntimeError):
    """The autograd graph was used incorrectly (e.g. backward twice)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or module was configured with invalid options."""
