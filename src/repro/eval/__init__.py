"""Evaluation harness: metrics, fast evaluators, overhead measurement,
text reporting, machine-readable export, and the per-figure experiment
runners."""

from repro.eval.evaluator import BoundAccuracy, Evaluator, forward_logits
from repro.eval.export import result_to_dict, save_csv, save_json
from repro.eval.metrics import (
    class_accuracy,
    confusion_matrix,
    top1_accuracy,
    topk_accuracy,
)
from repro.eval.overhead import (
    OverheadReport,
    measure_inference_seconds,
    measure_overhead,
)
from repro.eval.reporting import format_curves, format_table, percent, text_histogram
from repro.core import post_training as _post_training


def _compiled_clean_accuracy(model, eval_loader):
    return Evaluator(eval_loader, runtime=True).bind(model)


# Dependency inversion across the layer DAG: core's bound post-training
# cannot import the compiled runtime (RPL006), so the fast clean-accuracy
# probe is installed from here — any code path that touches the eval
# harness upgrades post-training's per-epoch δ-probe to compiled-plan
# forwards (bit-identical to the module forward by the plan contract).
_post_training.install_clean_accuracy_factory(_compiled_clean_accuracy)

__all__ = [
    "BoundAccuracy",
    "Evaluator",
    "OverheadReport",
    "class_accuracy",
    "confusion_matrix",
    "format_curves",
    "format_table",
    "forward_logits",
    "measure_inference_seconds",
    "measure_overhead",
    "percent",
    "result_to_dict",
    "save_csv",
    "save_json",
    "text_histogram",
    "top1_accuracy",
    "topk_accuracy",
]
