"""Evaluation harness: metrics, fast evaluators, overhead measurement,
text reporting, machine-readable export, and the per-figure experiment
runners."""

from repro.eval.evaluator import BoundAccuracy, Evaluator, forward_logits
from repro.eval.export import result_to_dict, save_csv, save_json
from repro.eval.metrics import (
    class_accuracy,
    confusion_matrix,
    top1_accuracy,
    topk_accuracy,
)
from repro.eval.overhead import (
    OverheadReport,
    measure_inference_seconds,
    measure_overhead,
)
from repro.eval.reporting import format_curves, format_table, percent, text_histogram

__all__ = [
    "BoundAccuracy",
    "Evaluator",
    "OverheadReport",
    "class_accuracy",
    "confusion_matrix",
    "format_curves",
    "format_table",
    "forward_logits",
    "measure_inference_seconds",
    "measure_overhead",
    "percent",
    "result_to_dict",
    "save_csv",
    "save_json",
    "text_histogram",
    "top1_accuracy",
    "topk_accuracy",
]
