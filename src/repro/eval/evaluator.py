"""Fast repeated model evaluation.

Fault campaigns evaluate the same test set dozens-to-hundreds of times
(once per trial).  :class:`Evaluator` materialises the batches once so
each evaluation is pure forward compute, and exposes the zero-argument
closure interface :class:`repro.fault.FaultCampaign` expects.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.module import Module

__all__ = ["BoundAccuracy", "Evaluator", "forward_logits"]


def forward_logits(model: Module, inputs: np.ndarray | Tensor) -> np.ndarray:
    """One inference-mode forward pass; returns the logits array.

    Runs in eval mode under ``no_grad`` and restores the model's
    training flag afterwards — the single-batch building block shared by
    :class:`Evaluator` and the serving stack (:mod:`repro.serve`).
    """
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            return model(Tensor(inputs)).data
    finally:
        model.train(was_training)


class BoundAccuracy:
    """Picklable zero-argument accuracy closure over (evaluator, model).

    Fault campaigns ship their evaluation callable to worker processes;
    a lambda cannot cross a ``spawn`` boundary, this object can — and
    pickling it alongside the campaign's injector preserves the shared
    model reference, so workers evaluate the same instance they inject
    faults into.
    """

    __slots__ = ("evaluator", "model")

    def __init__(self, evaluator: "Evaluator", model: Module) -> None:
        self.evaluator = evaluator
        self.model = model

    def __call__(self) -> float:
        return self.evaluator.accuracy(self.model)


class Evaluator:
    """Materialised test set with top-1 accuracy evaluation.

    Parameters
    ----------
    loader:
        Source of evaluation batches (consumed once, at construction).
    max_batches:
        Optional cap for quicker campaigns.
    """

    def __init__(self, loader: DataLoader, max_batches: int | None = None) -> None:
        self._batches: list[tuple[Tensor, np.ndarray]] = []
        for index, (inputs, targets) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            self._batches.append((inputs, targets))
        if not self._batches:
            raise ConfigurationError("evaluation loader produced no batches")
        self.total_samples = sum(len(t) for _, t in self._batches)

    def accuracy(self, model: Module) -> float:
        """Top-1 accuracy of ``model`` on the materialised set."""
        was_training = model.training
        model.eval()
        correct = 0
        try:
            with no_grad():
                for inputs, targets in self._batches:
                    logits = model(inputs)
                    correct += int((logits.data.argmax(axis=1) == targets).sum())
        finally:
            model.train(was_training)
        return correct / self.total_samples

    def bind(self, model: Module) -> BoundAccuracy:
        """Zero-argument closure for :class:`repro.fault.FaultCampaign`.

        Returns a picklable callable, so the campaign can fan trials out
        to worker processes under any multiprocessing start method.
        """
        return BoundAccuracy(self, model)

    def __len__(self) -> int:
        return self.total_samples
