"""Fast repeated model evaluation.

Fault campaigns evaluate the same test set dozens-to-hundreds of times
(once per trial).  :class:`Evaluator` materialises the batches once so
each evaluation is pure forward compute, and exposes the zero-argument
closure interface :class:`repro.fault.FaultCampaign` expects.

Two execution paths share identical results:

- the **module path** runs the model's own forward under the
  thread-local eval override (:func:`repro.nn.eval_mode`) — inference
  never mutates the shared ``training`` flag, so concurrent serving
  threads and in-process campaigns cannot race each other into a
  train-mode BatchNorm forward;
- the **runtime path** (``runtime=True``) compiles the model once into
  a :class:`repro.runtime.InferencePlan` and reuses it for every later
  evaluation of the same model instance.  Plans are bit-exact with the
  module forward and track fault injection automatically, so campaign
  results are identical either way — just faster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.errors import ConfigurationError
from repro.nn.module import Module, eval_mode

if TYPE_CHECKING:
    from repro.runtime import RuntimeConfig

__all__ = ["BoundAccuracy", "Evaluator", "forward_logits"]


def forward_logits(model: Module, inputs: np.ndarray | Tensor) -> np.ndarray:
    """One inference-mode forward pass; returns the logits array.

    Runs under ``no_grad`` with the *thread-local* eval override — the
    model's shared ``training`` flag is never written, so concurrent
    callers (batcher workers, the chaos engine, an in-process campaign)
    can share one model without racing BatchNorm into training mode.
    The single-batch building block shared by :class:`Evaluator` and the
    serving stack (:mod:`repro.serve`).
    """
    with eval_mode(), no_grad():
        return model(Tensor(inputs)).data


class BoundAccuracy:
    """Picklable zero-argument accuracy closure over (evaluator, model).

    Fault campaigns ship their evaluation callable to worker processes;
    a lambda cannot cross a ``spawn`` boundary, this object can — and
    pickling it alongside the campaign's injector preserves the shared
    model reference, so workers evaluate the same instance they inject
    faults into.
    """

    __slots__ = ("evaluator", "model")

    def __init__(self, evaluator: "Evaluator", model: Module) -> None:
        self.evaluator = evaluator
        self.model = model

    def __call__(self) -> float:
        return self.evaluator.accuracy(self.model)

    def lane_accuracies(self, injector: object, site_sets: list) -> list[float]:
        """Replicated-evaluation hook for replica-batched campaigns.

        One accuracy per site set, bit-identical to injecting and
        calling this closure once per set.  The presence of this method
        is what lets ``FaultCampaign(replicas=...)`` group trials.
        """
        return self.evaluator.lane_accuracies(self.model, injector, site_sets)


class Evaluator:
    """Materialised test set with top-1 accuracy evaluation.

    Parameters
    ----------
    loader:
        Source of evaluation batches (consumed once, at construction).
    max_batches:
        Optional cap for quicker campaigns.
    runtime:
        Deprecated alias for ``config=RuntimeConfig(enabled=True)``:
        evaluate through a compiled :class:`repro.runtime.InferencePlan`
        (one per model instance, cached) instead of the module forward.
        Bit-identical results, measurably faster per trial; plans stay
        coherent under fault injection via the runtime's refresh
        contract.
    gemm_workers:
        Deprecated alias for ``config=RuntimeConfig(gemm_workers=...)``:
        threading knob forwarded to :func:`repro.runtime.compile_model`
        for the plans this evaluator compiles: ``None`` (default) keeps
        the serial schedule — campaigns preserve the 1-core determinism
        contract without depending on threading — ``"auto"`` engages
        one thread per usable core, ``N >= 2`` forces a width.  Threaded
        plans are bit-identical to serial ones, so this is purely a
        wall-clock knob.  Ignored unless the runtime is enabled.
    config:
        One :class:`repro.runtime.RuntimeConfig` carrying every
        compiled-runtime knob (``enabled``, ``gemm_workers``, ...).
        Mutually exclusive with the deprecated aliases above.
    """

    def __init__(
        self,
        loader: DataLoader,
        max_batches: int | None = None,
        runtime: bool = False,
        gemm_workers: int | str | None = None,
        config: "RuntimeConfig | None" = None,
    ) -> None:
        from repro.runtime import resolve_runtime_config

        self._batches: list[tuple[Tensor, np.ndarray]] = []
        for index, (inputs, targets) in enumerate(loader):
            if max_batches is not None and index >= max_batches:
                break
            self._batches.append((inputs, targets))
        if not self._batches:
            raise ConfigurationError("evaluation loader produced no batches")
        self.total_samples = sum(len(t) for _, t in self._batches)
        self.config = resolve_runtime_config(
            config, "Evaluator", enabled=runtime, gemm_workers=gemm_workers
        )
        self.runtime = self.config.enabled
        self.gemm_workers = self.config.gemm_workers
        # id(model) -> (model, plan).  The model reference pins the id
        # against reuse; entries live as long as the evaluator (one or
        # two models in practice).
        self._plans: dict[int, tuple[Module, object]] = {}
        # id(model) -> (model, ReplicaPlan) for replica-batched lanes.
        self._replicas: dict[int, tuple[Module, object]] = {}

    # ------------------------------------------------------------------
    # Pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Compiled plans hold model references and large reused buffers;
        workers recompile lazily on first use instead of unpickling them
        (which would silently duplicate the campaign's model)."""
        state = self.__dict__.copy()
        state["_plans"] = {}
        state["_replicas"] = {}
        return state

    def _plan_for(self, model: Module):
        entry = self._plans.get(id(model))
        if entry is not None:
            return entry[1]
        from repro.runtime import compile_model

        # Internal call sites use the per-knob parameters directly;
        # ``replicas`` is deliberately dropped (replica wrapping is
        # _replica_for's job) so a replica-carrying config still yields
        # a plain InferencePlan here.
        plan = compile_model(
            model,
            self._batches[0][0].shape,
            gemm_workers=self.gemm_workers,
            profile=self.config.profile,
        )
        self._plans[id(model)] = (model, plan)
        return plan

    def _replica_for(self, model: Module):
        entry = self._replicas.get(id(model))
        if entry is not None:
            return entry[1]
        replica = self._plan_for(model).replicate(1)
        self._replicas[id(model)] = (model, replica)
        return replica

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def accuracy(self, model: Module) -> float:
        """Top-1 accuracy of ``model`` on the materialised set.

        Inference-mode semantics without mutating shared module state:
        the eval override is thread-local, so campaigns and serving
        threads can evaluate one model concurrently.
        """
        correct = 0
        if self.runtime:
            plan = self._plan_for(model)
            for inputs, targets in self._batches:
                logits = plan(inputs)
                correct += int((logits.argmax(axis=1) == targets).sum())
        else:
            with eval_mode(), no_grad():
                for inputs, targets in self._batches:
                    logits = model(inputs)
                    correct += int((logits.data.argmax(axis=1) == targets).sum())
        return correct / self.total_samples

    def lane_accuracies(
        self, model: Module, injector: object, site_sets: list
    ) -> list[float]:
        """Accuracy of ``model`` under each site set, sharing clean work.

        The replicated-evaluation entry point behind
        ``FaultCampaign(replicas=...)``: semantically equivalent to —
        and bit-identical with — the per-trial loop ::

            [injector.inject(sites) ∘ accuracy(model) for sites in site_sets]

        On the runtime path with a replay-safe plan and an injector
        whose live state matches its canonical clean values
        (:meth:`repro.fault.FaultInjector.canonical_clean`), lanes share
        one cached clean forward per batch and re-run only the plan
        suffix below each fault's divergence step
        (:class:`repro.runtime.ReplicaPlan`); zero-flip lanes replay the
        shared pass outright.  Every condition that could perturb
        bit-exactness (module-path evaluation, fallback kernels, armed
        activation faults, unquantisable parameters, injectors without
        the metadata hooks) degrades to the literal per-trial loop.
        """
        site_sets = list(site_sets)
        if self.runtime and self._lanes_exact(injector):
            replica = self._replica_for(model)
            if replica.replay_safe():
                return self._replica_lanes(replica, injector, site_sets)
        accuracies = []
        for sites in site_sets:
            with injector.inject(sites):
                accuracies.append(self.accuracy(model))
        return accuracies

    @staticmethod
    def _lanes_exact(injector: object) -> bool:
        """Whether shared-clean-forward lanes reproduce per-trial bits."""
        canonical = getattr(injector, "canonical_clean", None)
        return canonical is not None and bool(canonical())

    def _replica_lanes(
        self, replica, injector: object, site_sets: list
    ) -> list[float]:
        from repro.runtime import fault_parameters

        clean_correct = 0
        for key, (inputs, targets) in enumerate(self._batches):
            logits = replica.prepare(key, inputs)
            clean_correct += int((logits.argmax(axis=1) == targets).sum())
        clean_accuracy = clean_correct / self.total_samples
        accuracies = []
        for sites in site_sets:
            if len(sites) == 0:
                # Zero flips drawn: the lane is the clean model; replay
                # the shared pass instead of re-running any forward.
                accuracies.append(clean_accuracy)
                continue
            params = fault_parameters(injector, sites)
            correct = 0
            with injector.inject(sites):
                for key, (inputs, targets) in enumerate(self._batches):
                    logits = replica.lane_forward(key, inputs, params)
                    correct += int((logits.argmax(axis=1) == targets).sum())
            accuracies.append(correct / self.total_samples)
        return accuracies

    def bind(self, model: Module) -> BoundAccuracy:
        """Zero-argument closure for :class:`repro.fault.FaultCampaign`.

        Returns a picklable callable, so the campaign can fan trials out
        to worker processes under any multiprocessing start method.
        """
        return BoundAccuracy(self, model)

    def __len__(self) -> int:
        return self.total_samples
