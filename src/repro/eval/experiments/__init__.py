"""Per-figure/table experiment runners (see DESIGN.md §5 for the index).

Each module regenerates one paper artefact:

================  ===========================================
FIG1              ``fig1_bound_sweep.run_fig1``
FIG2              ``fig2_activation_distribution.run_fig2``
FIG3              ``fig3_activation_shapes.run_fig3``
FIG5              ``fig5_accuracy_distribution.run_fig5``
FIG6              ``fig6_average_accuracy.run_fig6``
TAB1              ``table1_overhead.run_table1``
§VI-C1            ``posttraining_overhead.run_posttraining_overhead``
ABL-G/K/Z/B       ``ablations.run_*``
EXT-A/E/F, ABL-W  ``extensions.run_*`` (beyond-paper experiments)
================  ===========================================
"""

from repro.eval.experiments.ablations import (
    AblationResult,
    run_bit_position_ablation,
    run_granularity_ablation,
    run_slope_ablation,
    run_zeta_ablation,
)
from repro.eval.experiments.cache import StateCache, default_cache_dir
from repro.eval.experiments.context import DATASETS, ExperimentContext, prepare_context
from repro.eval.experiments.extensions import (
    run_activation_fault_comparison,
    run_ecc_comparison,
    run_fault_model_comparison,
    run_format_ablation,
    run_hard_deploy_ablation,
    run_layer_vulnerability,
    run_mobilenet_panel,
)
from repro.eval.experiments.fig1_bound_sweep import Fig1Result, run_fig1
from repro.eval.experiments.fig2_activation_distribution import Fig2Result, run_fig2
from repro.eval.experiments.fig3_activation_shapes import Fig3Result, run_fig3
from repro.eval.experiments.fig5_accuracy_distribution import Fig5Result, run_fig5
from repro.eval.experiments.fig6_average_accuracy import Fig6Result, run_fig6
from repro.eval.experiments.posttraining_overhead import (
    PostTrainingOverheadResult,
    run_posttraining_overhead,
)
from repro.eval.experiments.presets import FULL, PRESETS, Preset, QUICK, SMOKE, get_preset
from repro.eval.experiments.runner import MethodSweep, run_method_sweep
from repro.eval.experiments.table1_overhead import Table1Result, run_table1

EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "table1": run_table1,
    "posttraining": run_posttraining_overhead,
    "ablation-granularity": run_granularity_ablation,
    "ablation-slope": run_slope_ablation,
    "ablation-zeta": run_zeta_ablation,
    "ablation-bits": run_bit_position_ablation,
    "ablation-format": run_format_ablation,
    "ablation-harddeploy": run_hard_deploy_ablation,
    "ext-activation": run_activation_fault_comparison,
    "ext-ecc": run_ecc_comparison,
    "ext-faultmodels": run_fault_model_comparison,
    "ext-layers": run_layer_vulnerability,
    "ext-mobilenet": run_mobilenet_panel,
}
"""Registry of all experiment entry points (used by examples/run_experiment.py)."""

__all__ = [
    "DATASETS",
    "EXPERIMENTS",
    "FULL",
    "PRESETS",
    "QUICK",
    "SMOKE",
    "AblationResult",
    "ExperimentContext",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig5Result",
    "Fig6Result",
    "MethodSweep",
    "PostTrainingOverheadResult",
    "Preset",
    "StateCache",
    "Table1Result",
    "default_cache_dir",
    "get_preset",
    "prepare_context",
    "run_activation_fault_comparison",
    "run_bit_position_ablation",
    "run_ecc_comparison",
    "run_fault_model_comparison",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_format_ablation",
    "run_granularity_ablation",
    "run_hard_deploy_ablation",
    "run_layer_vulnerability",
    "run_method_sweep",
    "run_mobilenet_panel",
    "run_posttraining_overhead",
    "run_slope_ablation",
    "run_table1",
    "run_zeta_ablation",
]
