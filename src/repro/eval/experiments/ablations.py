"""Design-choice ablations (DESIGN.md §5: ABL-G / ABL-K / ABL-Z / ABL-B).

The paper fixes several knobs without sweeping them — bound granularity
(neuron-wise), the FitReLU slope k ("empirically computed"), and the
regulariser ζ.  These ablations quantify each choice on the reproduction
substrate, plus the per-bit-position vulnerability profile of Q15.16
words that explains *why* bounding works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.post_training import PostTrainingConfig
from repro.eval.experiments.context import ExperimentContext, prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.experiments.runner import run_method_sweep
from repro.eval.reporting import format_table, percent
from repro.fault.campaign import FaultCampaign
from repro.fault.injector import FaultInjector
from repro.fault.statistics import bit_position_vulnerability
from repro.utils.rng import derive_seed

__all__ = [
    "AblationResult",
    "run_bit_position_ablation",
    "run_granularity_ablation",
    "run_slope_ablation",
    "run_zeta_ablation",
]


@dataclass
class AblationResult:
    """Generic ablation table: one row per swept configuration."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    data: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _resilience(
    context: ExperimentContext,
    method: str,
    rate: float,
    trials: int,
    overrides: dict[str, object] | None = None,
    post_config: PostTrainingConfig | None = None,
) -> tuple[float, float, int]:
    """(clean accuracy, mean accuracy under fault, bound words)."""
    model, info = context.protected_model(
        method, protection_overrides=overrides, post_config=post_config
    )
    from repro.core.surgery import bound_parameter_count
    from repro.fault.fault_model import BitFlipFaultModel

    injector = FaultInjector(model)
    with FaultCampaign(
        injector,
        context.evaluator.bind(model),
        trials=trials,
        seed=derive_seed(context.preset.seed, "ablation", method, repr(overrides)),
        workers=context.preset.workers,
    ) as campaign:
        result = campaign.run(BitFlipFaultModel.at_rate(rate))
    return info["clean_accuracy"], result.mean, bound_parameter_count(model)


def run_granularity_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    granularities: tuple[str, ...] = ("neuron", "channel", "layer"),
    rate_index: int = 3,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-G: FitAct bound granularity — the paper's core design choice.

    Expected: neuron-wise bounds dominate channel-wise, which dominate a
    layer-global bound (the Clip-Act regime), at the cost of more bound
    words.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    rate = preset.rates[rate_index]
    result = AblationResult(
        title=(
            f"ABL-G  Bound granularity — {model_name}/{dataset_name}, "
            f"fault rate {rate:.1e}"
        ),
        headers=["granularity", "bound words", "clean acc", "acc under fault"],
    )
    for granularity in granularities:
        clean, faulty, words = _resilience(
            context,
            "fitact",
            rate,
            preset.trials,
            overrides={"granularity": granularity},
        )
        result.rows.append([granularity, str(words), percent(clean), percent(faulty)])
        result.data[granularity] = {
            "clean": clean,
            "faulty": faulty,
            "words": float(words),
        }
    return result


def run_slope_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    slopes: tuple[float, ...] = (5.0, 10.0, 40.0, 100.0),
    slope_modes: tuple[str, ...] = ("relative", "absolute"),
    rate_index: int = 3,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-K: FitReLU slope coefficient and scaling mode.

    Quantifies the Eq. 6 "empirically computed" k: absolute small k
    distorts clean accuracy; relative k is robust across layers.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    rate = preset.rates[rate_index]
    result = AblationResult(
        title=(
            f"ABL-K  FitReLU slope — {model_name}/{dataset_name}, "
            f"fault rate {rate:.1e}"
        ),
        headers=["slope mode", "k", "clean acc", "acc under fault"],
    )
    for mode in slope_modes:
        for k in slopes:
            clean, faulty, _ = _resilience(
                context,
                "fitact",
                rate,
                preset.trials,
                overrides={"k": k, "slope_mode": mode},
            )
            result.rows.append([mode, f"{k:g}", percent(clean), percent(faulty)])
            result.data[f"{mode}:{k:g}"] = {"clean": clean, "faulty": faulty}
    return result


def run_zeta_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    zetas: tuple[float, ...] = (0.0, 0.1, 1.0, 10.0),
    rate_index: int = 3,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-Z: the Eq. 10 regulariser strength ζ.

    ζ=0 leaves bounds at the profiled maxima (no shrink); growing ζ
    trades clean accuracy for resilience until the δ constraint rolls the
    run back.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    rate = preset.rates[rate_index]
    result = AblationResult(
        title=(
            f"ABL-Z  Bound regulariser ζ — {model_name}/{dataset_name}, "
            f"fault rate {rate:.1e}"
        ),
        headers=["zeta", "clean acc", "acc under fault"],
    )
    for zeta in zetas:
        post = PostTrainingConfig(
            epochs=preset.post_epochs,
            lr=preset.post_lr,
            zeta=zeta,
            delta=preset.delta,
        )
        clean, faulty, _ = _resilience(
            context, "fitact", rate, preset.trials, post_config=post
        )
        result.rows.append([f"{zeta:g}", percent(clean), percent(faulty)])
        result.data[f"{zeta:g}"] = {"clean": clean, "faulty": faulty}
    return result


def run_bit_position_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    bits: tuple[int, ...] = (0, 8, 15, 16, 20, 24, 28, 30, 31),
    flips_per_trial: int = 16,
    methods: tuple[str, ...] = ("none", "fitact"),
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-B: per-bit-position vulnerability of Q15.16 parameter words.

    Bit 0 is the fraction LSB, bits 16–30 are integer magnitude, bit 31
    is the sign.  Expected: low bits harmless for everyone; high integer
    bits catastrophic for the unprotected model and largely recovered by
    FitAct — the mechanism behind the whole paper.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    result = AblationResult(
        title=(
            f"ABL-B  Bit-position vulnerability — {model_name}/{dataset_name}, "
            f"{flips_per_trial} flips/trial"
        ),
        headers=["bit", *[f"{m} acc" for m in methods]],
    )
    per_method: dict[str, dict[int, float]] = {}
    for method in methods:
        model, _ = context.protected_model(method)
        with FaultCampaign(
            FaultInjector(model),
            context.evaluator.bind(model),
            trials=preset.trials,
            seed=derive_seed(preset.seed, "bitpos", method),
            workers=preset.workers,
        ) as campaign:
            vulnerability = bit_position_vulnerability(
                campaign, list(bits), flips_per_trial=flips_per_trial
            )
        per_method[method] = {bit: res.mean for bit, res in vulnerability.items()}
    for bit in bits:
        result.rows.append(
            [str(bit), *[percent(per_method[m][bit]) for m in methods]]
        )
        result.data[str(bit)] = {m: per_method[m][bit] for m in methods}
    return result
