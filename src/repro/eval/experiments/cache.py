"""Disk cache for trained model states.

Training the scaled model zoo dominates experiment wall-clock, and the
same trained weights feed every figure.  States are cached under
``.cache/repro-experiments`` keyed by a hash of everything that affects
the weights (model, dataset, preset sizes, seed), with a JSON sidecar
carrying scalar metadata (accuracy, training duration — the Table I /
§VI-C1 inputs).  Delete the directory to force retraining.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.utils.logging import get_logger
from repro.utils.serialization import load_state, save_state

__all__ = ["StateCache", "default_cache_dir"]

_logger = get_logger("eval.cache")


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.cache/repro-experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.cwd() / ".cache" / "repro-experiments"


class StateCache:
    """Content-addressed store of ``(state_dict, metadata)`` pairs."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _paths(self, key: dict[str, object]) -> tuple[Path, Path]:
        digest = hashlib.sha256(
            json.dumps(key, sort_keys=True, default=str).encode()
        ).hexdigest()[:24]
        base = self.root / digest
        return base.with_suffix(".npz"), base.with_suffix(".json")

    def load(
        self, key: dict[str, object]
    ) -> tuple[dict[str, np.ndarray], dict[str, object]] | None:
        """Return ``(state, metadata)`` or None on miss/corruption."""
        state_path, meta_path = self._paths(key)
        if not state_path.exists() or not meta_path.exists():
            return None
        try:
            state = load_state(state_path)
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError, KeyError) as error:
            _logger.warning("cache entry unreadable (%s); retraining", error)
            return None
        if meta.get("__key__") != json.dumps(key, sort_keys=True, default=str):
            # Hash collision or stale entry: treat as a miss.
            return None
        meta.pop("__key__", None)
        return state, meta

    def store(
        self,
        key: dict[str, object],
        state: dict[str, np.ndarray],
        metadata: dict[str, object],
    ) -> None:
        """Persist ``state`` and ``metadata`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        state_path, meta_path = self._paths(key)
        save_state(state_path, state)
        payload = dict(metadata)
        payload["__key__"] = json.dumps(key, sort_keys=True, default=str)
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=float)
