"""Shared experiment preparation: data, trained weights, protected models.

Every figure/table starts from the same artefacts — a trained model on a
dataset, its activation profile, and protected copies per scheme.  This
module builds them once (with disk caching for the expensive training
stage) so the per-figure modules stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.post_training import BoundPostTrainer, PostTrainingConfig
from repro.core.profiler import ActivationProfile, profile_activations
from repro.core.protection import ProtectionConfig, protect_model
from repro.core.training import Trainer, TrainingConfig, evaluate_accuracy
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.errors import ConfigurationError
from repro.eval.evaluator import Evaluator
from repro.eval.experiments.cache import StateCache
from repro.eval.experiments.presets import Preset
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.quant.fixed_point import FixedPointFormat, Q15_16
from repro.quant.model import quantize_module
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

__all__ = ["DATASETS", "ExperimentContext", "prepare_context"]

_logger = get_logger("eval.context")

DATASETS: dict[str, int] = {"synth10": 10, "synth100": 100}
"""Dataset name → class count (SynthCIFAR-10/100, the CIFAR stand-ins)."""


@dataclass
class ExperimentContext:
    """Everything downstream experiments need about one (model, dataset)."""

    model_name: str
    dataset_name: str
    preset: Preset
    train_loader: DataLoader
    evaluator: Evaluator
    base_state: dict[str, np.ndarray]
    reference_accuracy: float
    training_seconds: float
    profile: ActivationProfile | None = None
    _post_cache: dict[str, tuple[dict[str, np.ndarray], float]] = field(
        default_factory=dict
    )

    @property
    def num_classes(self) -> int:
        return DATASETS[self.dataset_name]

    def fresh_model(self) -> Module:
        """A new model instance loaded with the trained base weights."""
        model = build_model(
            self.model_name,
            num_classes=self.num_classes,
            scale=self.preset.scale_for(self.model_name),
            seed=self.preset.seed,
            image_size=self.preset.image_size,
        )
        model.load_state_dict(self.base_state)
        return model

    def activation_profile(self) -> ActivationProfile:
        """The (lazily computed, shared) activation range profile."""
        if self.profile is None:
            model = self.fresh_model()
            self.profile = profile_activations(model, self.train_loader)
        return self.profile

    def protected_model(
        self,
        method: str,
        quantize: bool = True,
        protection_overrides: dict[str, object] | None = None,
        post_config: PostTrainingConfig | None = None,
        fmt: FixedPointFormat = Q15_16,
    ) -> tuple[Module, dict[str, float]]:
        """A fresh trained model protected with ``method``.

        Returns ``(model, info)`` where info carries ``clean_accuracy``
        and, for FitAct, ``post_seconds``.  FitAct post-training results
        are memoised per (method, overrides) within the context.
        """
        preset = self.preset
        model = self.fresh_model()
        info: dict[str, float] = {}
        overrides = protection_overrides or {}
        if method != "none":
            config = ProtectionConfig(method=method, **overrides)
            protect_model(
                model, self.train_loader, config, profile=self.activation_profile()
            )
        if method == "fitact":
            cache_key = repr(sorted(overrides.items())) + repr(post_config)
            cached = self._post_cache.get(cache_key)
            if cached is not None:
                state, post_seconds = cached
                model.load_state_dict(state)
                info["post_seconds"] = post_seconds
            else:
                post = post_config or PostTrainingConfig(
                    epochs=preset.post_epochs,
                    lr=preset.post_lr,
                    zeta=preset.zeta,
                    delta=preset.delta,
                )
                report = BoundPostTrainer(model, post).run(
                    self.train_loader,
                    _loader_view(self.evaluator),
                    reference_accuracy=self.reference_accuracy,
                )
                info["post_seconds"] = report.duration_seconds
                self._post_cache[cache_key] = (
                    model.state_dict(),
                    report.duration_seconds,
                )
        if quantize:
            quantize_module(model, fmt)
        info["clean_accuracy"] = self.evaluator.accuracy(model)
        return model, info


class _EvaluatorLoader:
    """Adapts an :class:`Evaluator`'s materialised batches to the loader
    iteration protocol (used by post-training's accuracy checks)."""

    def __init__(self, evaluator: Evaluator) -> None:
        self._evaluator = evaluator

    def __iter__(self):
        return iter(self._evaluator._batches)

    def __len__(self) -> int:
        return len(self._evaluator._batches)


def _loader_view(evaluator: Evaluator) -> DataLoader:
    return _EvaluatorLoader(evaluator)  # type: ignore[return-value]


def prepare_context(
    model_name: str,
    dataset_name: str,
    preset: Preset,
    cache: StateCache | None = None,
) -> ExperimentContext:
    """Build (or load from cache) the trained base model for an experiment.

    Training metadata — reference accuracy and wall-clock — rides along in
    the cache so §VI-C1 (training-time overhead) stays reproducible across
    bench invocations.
    """
    if dataset_name not in DATASETS:
        raise ConfigurationError(
            f"unknown dataset {dataset_name!r}; available: {sorted(DATASETS)}"
        )
    num_classes = DATASETS[dataset_name]
    data_seed = derive_seed(preset.seed, "data", dataset_name)
    train_set = SyntheticImageDataset(
        num_classes=num_classes,
        num_samples=preset.train_samples,
        image_size=preset.image_size,
        seed=data_seed,
        split="train",
    )
    test_set = SyntheticImageDataset(
        num_classes=num_classes,
        num_samples=preset.test_samples,
        image_size=preset.image_size,
        seed=data_seed,
        split="test",
    )
    normalize = Normalize(SYNTH_MEAN, SYNTH_STD)
    train_loader = DataLoader(
        train_set,
        batch_size=preset.batch_size,
        shuffle=True,
        transform=normalize,
        rng=derive_seed(preset.seed, "loader", dataset_name),
    )
    evaluator = Evaluator(
        DataLoader(test_set, batch_size=max(preset.batch_size, 128), transform=normalize),
        max_batches=preset.eval_batches,
    )

    cache = cache or StateCache()
    key = {
        "kind": "trained-base",
        "model": model_name,
        "dataset": dataset_name,
        "classes": num_classes,
        "scale": preset.scale_for(model_name),
        "image_size": preset.image_size,
        "train_samples": preset.train_samples,
        "epochs": preset.train_epochs,
        "batch_size": preset.batch_size,
        "seed": preset.seed,
    }
    cached = cache.load(key)
    if cached is not None:
        state, meta = cached
        _logger.info("loaded cached %s/%s", model_name, dataset_name)
        context = ExperimentContext(
            model_name=model_name,
            dataset_name=dataset_name,
            preset=preset,
            train_loader=train_loader,
            evaluator=evaluator,
            base_state=state,
            reference_accuracy=float(meta["reference_accuracy"]),
            training_seconds=float(meta["training_seconds"]),
        )
        return context

    model = build_model(
        model_name,
        num_classes=num_classes,
        scale=preset.scale_for(model_name),
        seed=preset.seed,
        image_size=preset.image_size,
    )
    # BN-free architectures (AlexNet, LeNet) diverge at the BN-friendly
    # LR even with gradient clipping; give them a gentler schedule.
    has_batch_norm = model_name.startswith(("vgg", "resnet", "mobilenet"))
    learning_rate = 0.1 if has_batch_norm else 0.05
    momentum = 0.9 if has_batch_norm else 0.95
    report = Trainer(
        model,
        TrainingConfig(
            epochs=preset.train_epochs, lr=learning_rate, momentum=momentum
        ),
    ).fit(train_loader)
    reference_accuracy = evaluator.accuracy(model)
    _logger.info(
        "trained %s/%s: %.2f%% in %.1fs",
        model_name,
        dataset_name,
        100 * reference_accuracy,
        report.duration_seconds,
    )
    state = model.state_dict()
    cache.store(
        key,
        state,
        {
            "reference_accuracy": reference_accuracy,
            "training_seconds": report.duration_seconds,
            "final_train_loss": report.final_train_loss,
        },
    )
    return ExperimentContext(
        model_name=model_name,
        dataset_name=dataset_name,
        preset=preset,
        train_loader=train_loader,
        evaluator=evaluator,
        base_state=state,
        reference_accuracy=reference_accuracy,
        training_seconds=report.duration_seconds,
    )
