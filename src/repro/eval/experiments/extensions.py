"""Extension experiments beyond the paper's evaluation (EXT-A/E/F, ABL-W).

The paper fixes one fault model (uniform transient bit-flips in
parameter memory) and one word format (Q15.16), and compares three
activation schemes.  These experiments vary each of those axes while
holding the rest of the setup identical to Figs. 5/6:

- **EXT-A** — transient *activation* faults (Ranger's original threat
  model): are per-neuron bounds still the right defence when the
  corruption strikes feature maps instead of weights?
- **EXT-E** — SEC-DED ECC memory as the hardware alternative: accuracy
  and memory cost of ECC, of FitAct, and of the two composed.
- **EXT-F** — spatially correlated (burst) and permanent (stuck-at)
  faults at a matched expected flip count: does the iid assumption
  flatter any scheme?
- **ABL-W** — word-format ablation: how much of the vulnerability is
  Q15.16's 15 high-order integer bits, and what does narrowing the
  word change?
"""

from __future__ import annotations

from repro.eval.experiments.ablations import AblationResult
from repro.eval.experiments.context import ExperimentContext, prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.reporting import percent
from repro.fault.activation import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultModel,
)
from repro.fault.burst import BurstFaultModel
from repro.fault.campaign import FaultCampaign
from repro.fault.ecc import ECCProtectedInjector, SECDEDCode, ecc_memory_bytes
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.fault.statistics import parameter_group_vulnerability
from repro.fault.stuck_at import StuckAtFaultModel
from repro.fault.word import WordFaultModel
from repro.quant.formats import parse_format
from repro.quant.model import model_memory_bytes, quantize_module
from repro.utils.rng import derive_seed

__all__ = [
    "run_activation_fault_comparison",
    "run_ecc_comparison",
    "run_fault_model_comparison",
    "run_format_ablation",
    "run_hard_deploy_ablation",
    "run_layer_vulnerability",
    "run_mobilenet_panel",
]


def run_activation_fault_comparison(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    methods: tuple[str, ...] = ("none", "ranger", "clipact", "fitact"),
    flips_per_layer: tuple[int, ...] = (1, 4, 16, 64),
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """EXT-A: protection schemes under transient activation faults.

    Each wrapped activation suffers exactly ``n`` bit-flips per forward
    pass (an upset count per layer per inference batch).  Corruption
    lands *after* one bounded activation and *before* the next, so the
    next layer's bound is the only defence — the paper's propagation
    argument, tested on Ranger's native fault model.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    result = AblationResult(
        title=(
            f"EXT-A  Transient activation faults — {model_name}/{dataset_name}, "
            f"flips per layer per pass {list(flips_per_layer)}"
        ),
        headers=["method", "clean acc", *[f"n={n}" for n in flips_per_layer]],
    )
    for method in methods:
        model, info = context.protected_model(method)
        injector = ActivationFaultInjector(model)
        campaign = ActivationFaultCampaign(
            injector,
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "ext-a", model_name, method),
        )
        row: dict[str, float] = {"clean": info["clean_accuracy"]}
        cells = [method, percent(info["clean_accuracy"])]
        for n in flips_per_layer:
            mean = campaign.run(ActivationFaultModel.exact(n), tag=method).mean
            row[f"n={n}"] = mean
            cells.append(percent(mean))
        result.rows.append(cells)
        result.data[method] = row
    return result


def run_ecc_comparison(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    methods: tuple[str, ...] = ("none", "clipact", "fitact"),
    rate_indices: tuple[int, ...] = (2, 4),
    double_policy: str = "pass",
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """EXT-E: SEC-DED ECC versus (and composed with) activation bounding.

    ECC corrects isolated flips outright but costs ~22% extra memory
    (Hamming(39,32)); activation bounding costs ≤~6% (FitAct's λ words)
    and degrades gracefully when multi-bit words slip through.  The
    composition shows whether the two defences are complementary.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    rates = [preset.rates[i] for i in rate_indices]
    code = SECDEDCode(32)
    result = AblationResult(
        title=(
            f"EXT-E  SEC-DED ECC composition — {model_name}/{dataset_name}, "
            f"double-error policy {double_policy!r}"
        ),
        headers=[
            "scheme",
            "memory (MB)",
            "clean acc",
            *[f"rate {rate:.1e}" for rate in rates],
        ],
    )
    for method in methods:
        for use_ecc in (False, True):
            model, info = context.protected_model(method)
            plain = FaultInjector(model)
            injector = (
                ECCProtectedInjector(plain, code=code, double_policy=double_policy)
                if use_ecc
                else plain
            )
            memory_mb = (
                ecc_memory_bytes(model, code) if use_ecc else model_memory_bytes(model)
            ) / 1e6
            label = f"{method}+ecc" if use_ecc else method
            row: dict[str, float] = {
                "clean": info["clean_accuracy"],
                "memory_mb": memory_mb,
            }
            cells = [label, f"{memory_mb:.2f}", percent(info["clean_accuracy"])]
            with FaultCampaign(
                injector,
                context.evaluator.bind(model),
                trials=trials,
                seed=derive_seed(preset.seed, "ext-e", model_name, method),
                workers=preset.workers,
            ) as campaign:
                for rate in rates:
                    mean = campaign.run(
                        BitFlipFaultModel.at_rate(rate), tag=label
                    ).mean
                    row[f"{rate:.1e}"] = mean
                    cells.append(percent(mean))
            if use_ecc:
                outcome = injector.lifetime_outcome
                row["corrected_words"] = float(outcome.corrected_words)
                row["escaped_words"] = float(outcome.escaped_words)
            result.rows.append(cells)
            result.data[label] = row
    return result


def run_fault_model_comparison(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    methods: tuple[str, ...] = ("none", "fitact"),
    rate_index: int = 3,
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """EXT-F: iid vs burst vs stuck-at faults at matched damage budgets.

    The expected flip count of the paper's iid model at the chosen rate
    sets the budget ``n``; bursts pack the same ``n`` flips into
    adjacent runs, stuck-at models make ``n`` cells permanent (of which
    the data-dependent fraction is active).
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    rate = preset.rates[rate_index]

    # Budget from the unprotected model's fault space (method-independent).
    probe_model, _ = context.protected_model("none")
    budget = max(1, int(round(rate * FaultInjector(probe_model).total_bits)))

    fault_models = {
        "iid flips": BitFlipFaultModel.exact(budget),
        "burst L=4": BurstFaultModel.exact(4, max(1, budget // 4)),
        "burst L=8": BurstFaultModel.exact(8, max(1, budget // 8)),
        "stuck-at-0": StuckAtFaultModel.exact(0, budget),
        "stuck-at-1": StuckAtFaultModel.exact(1, budget),
        # Whole-word replacement: E[flips] = 16/word for random targets.
        "word random": WordFaultModel.exact("random", max(1, budget // 16)),
        "word zero": WordFaultModel.exact("zero", max(1, budget // 16)),
    }
    result = AblationResult(
        title=(
            f"EXT-F  Fault-model comparison — {model_name}/{dataset_name}, "
            f"budget {budget} flips (rate {rate:.1e})"
        ),
        headers=["fault model", *methods, "mean flips"],
    )
    per_method: dict[str, dict[str, float]] = {m: {} for m in methods}
    mean_flips: dict[str, float] = {}
    for method in methods:
        model, _ = context.protected_model(method)
        with FaultCampaign(
            FaultInjector(model),
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "ext-f", model_name, method),
            workers=preset.workers,
        ) as campaign:
            for label, fault_model in fault_models.items():
                run = campaign.run(fault_model, tag=f"{method}:{label}")
                per_method[method][label] = run.mean
                mean_flips[label] = float(run.flip_counts.mean())
    for label in fault_models:
        result.rows.append(
            [
                label,
                *[percent(per_method[m][label]) for m in methods],
                f"{mean_flips[label]:.1f}",
            ]
        )
        result.data[label] = {
            **{m: per_method[m][label] for m in methods},
            "mean_flips": mean_flips[label],
        }
    return result


def run_mobilenet_panel(
    preset: Preset = QUICK,
    dataset_name: str = "synth10",
    schemes: tuple[tuple[str, str, dict[str, object] | None], ...] = (
        ("fitact", "fitact", None),
        ("fitact-ch", "fitact", {"granularity": "channel"}),
        ("clipact", "clipact", None),
        ("ranger", "ranger", None),
        ("none", "none", None),
    ),
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """EXT-M: the Fig. 6 protocol on MobileNetV1.

    The paper motivates FitAct with resource-constrained edge devices
    but evaluates dense architectures; MobileNet is what those devices
    actually run.  Two findings this panel records:

    1. *Neuron-wise* bound initialisation over-fits MobileNet's spiky
       depthwise feature maps — per-element training-set maxima clip
       legitimate test activations and cost clean accuracy that
       post-training only partly recovers.
    2. *Channel-wise* FitAct (``fitact-ch``) is robust: the per-channel
       max is a stable envelope, restoring the paper's ordering on this
       architecture.

    ``schemes`` entries are ``(label, method, protection_overrides)``.
    """
    context = context or prepare_context("mobilenet", dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    rates = preset.rates

    labels = [label for label, _, _ in schemes]
    clean: dict[str, float] = {}
    sweeps: dict[str, list[float]] = {}
    expected: dict[float, float] = {}
    for label, method, overrides in schemes:
        model, info = context.protected_model(
            method, protection_overrides=overrides
        )
        clean[label] = info["clean_accuracy"]
        injector = FaultInjector(model)
        if not expected:
            expected = {rate: rate * injector.total_bits for rate in rates}
        with FaultCampaign(
            injector,
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "ext-m", dataset_name),
            workers=preset.workers,
        ) as campaign:
            sweeps[label] = [
                campaign.run(
                    BitFlipFaultModel.at_rate(rate), tag=f"ext-m:{label}"
                ).mean
                for rate in rates
            ]
    result = AblationResult(
        title=(
            f"EXT-M  MobileNetV1 method sweep — {dataset_name}, clean per "
            "scheme " + ", ".join(f"{k} {percent(v)}" for k, v in clean.items())
        ),
        headers=["fault rate", "E[flips]", *labels],
    )
    for index, rate in enumerate(rates):
        cells = [f"{rate:.1e}", f"{expected[rate]:.1f}"]
        row = {label: sweeps[label][index] for label in labels}
        cells.extend(percent(row[label]) for label in labels)
        result.rows.append(cells)
        result.data[f"{rate:.1e}"] = row
    result.data["clean"] = clean
    return result


def run_layer_vulnerability(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    methods: tuple[str, ...] = ("none", "fitact"),
    flips_per_trial: int = 16,
    max_groups: int = 8,
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """EXT-L: which layers need the protection most.

    Confines an equal flip budget to one parameter group (one conv or
    linear module) at a time.  Early convolutions fan a corrupted weight
    out over entire feature maps; the classifier corrupts at most a few
    logits — so vulnerability falls with depth, and per-neuron bounds
    matter most where the fan-out is largest.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials

    # One group per weight-owning module, evenly subsampled through depth.
    probe_model, _ = context.protected_model("none")
    owners: list[str] = []
    for name, _ in probe_model.named_parameters():
        if name.endswith(".weight"):
            prefix = name[: -len("weight")]
            if prefix not in owners:
                owners.append(prefix)
    if len(owners) > max_groups:
        picks = [
            owners[round(i * (len(owners) - 1) / (max_groups - 1))]
            for i in range(max_groups)
        ]
        owners = list(dict.fromkeys(picks))

    result = AblationResult(
        title=(
            f"EXT-L  Layer vulnerability — {model_name}/{dataset_name}, "
            f"{flips_per_trial} flips confined per group"
        ),
        headers=["parameter group", *methods],
    )
    per_method: dict[str, dict[str, float]] = {}
    for method in methods:
        model, _ = context.protected_model(method)
        with FaultCampaign(
            FaultInjector(model),
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "ext-l", model_name, method),
            workers=preset.workers,
        ) as campaign:
            vulnerability = parameter_group_vulnerability(
                campaign, owners, flips_per_trial=flips_per_trial
            )
        per_method[method] = {
            prefix: run.mean for prefix, run in vulnerability.items()
        }
    for prefix in owners:
        result.rows.append(
            [prefix.rstrip("."), *[percent(per_method[m][prefix]) for m in methods]]
        )
        result.data[prefix.rstrip(".")] = {
            m: per_method[m][prefix] for m in methods
        }
    return result


def run_hard_deploy_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    rate_indices: tuple[int, ...] = (2, 4),
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-H: deploy post-trained bounds as the hard piecewise form.

    The paper trains the smooth FitReLU (Eq. 6) because Eq. 5's
    piecewise FitReLU-Naive has no usable λ gradient — but *deployment*
    needs no gradients.  This ablation exports the tuned λᵢ into
    FitReLU-Naive (``FitReLU.hard_equivalent``) and compares the two
    deployment forms on clean accuracy, accuracy under fault, and
    inference runtime: the hard form skips the sigmoid gate entirely,
    recovering most of Table I's runtime overhead.
    """
    from repro.autograd.tensor import Tensor
    from repro.core.bounded_relu import FitReLUNaive
    from repro.core.fitrelu import FitReLU
    from repro.core.surgery import bound_modules
    from repro.eval.overhead import measure_inference_seconds

    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    rates = [preset.rates[i] for i in rate_indices]

    import numpy as np

    smooth, _ = context.protected_model("fitact")
    hard, _ = context.protected_model("fitact")  # same memoised tuned bounds
    for path, module in bound_modules(hard).items():
        if isinstance(module, FitReLU):
            hard.set_submodule(path, FitReLUNaive(module.hard_equivalent()))
    quantize_module(hard)
    plain, plain_info = context.protected_model("none")

    batch = Tensor(
        np.random.default_rng(preset.seed)
        .normal(size=(32, 3, preset.image_size, preset.image_size))
        .astype(np.float32)
    )
    result = AblationResult(
        title=(
            f"ABL-H  Deployment form of tuned bounds — {model_name}/"
            f"{dataset_name} (smooth Eq. 6 vs hard Eq. 5)"
        ),
        headers=[
            "deployment",
            "clean acc",
            *[f"rate {rate:.1e}" for rate in rates],
            "inference (ms)",
        ],
    )
    plain_seconds = measure_inference_seconds(plain, batch)
    variants = {"smooth (FitReLU)": smooth, "hard (FitReLU-Naive)": hard}
    for label, model in variants.items():
        clean = context.evaluator.accuracy(model)
        seconds = measure_inference_seconds(model, batch)
        row: dict[str, float] = {
            "clean": clean,
            "seconds": seconds,
            "runtime_overhead": seconds / plain_seconds - 1.0,
        }
        cells = [label, percent(clean)]
        with FaultCampaign(
            FaultInjector(model),
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "abl-h", model_name),
            workers=preset.workers,
        ) as campaign:
            for rate in rates:
                mean = campaign.run(BitFlipFaultModel.at_rate(rate), tag=label).mean
                row[f"{rate:.1e}"] = mean
                cells.append(percent(mean))
        cells.append(f"{seconds * 1e3:.2f}")
        result.rows.append(cells)
        result.data[label] = row
    result.rows.append(
        [
            "plain ReLU (reference)",
            percent(plain_info["clean_accuracy"]),
            *["-"] * len(rates),
            f"{plain_seconds * 1e3:.2f}",
        ]
    )
    result.data["plain"] = {
        "clean": plain_info["clean_accuracy"],
        "seconds": plain_seconds,
    }
    return result


def run_format_ablation(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    formats: tuple[str, ...] = ("q3.4", "q7.8", "q15.16"),
    methods: tuple[str, ...] = ("none", "fitact"),
    rate_index: int = 3,
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> AblationResult:
    """ABL-W: word-format ablation at a fixed per-bit fault rate.

    Narrow formats are doubly different: quantisation itself costs clean
    accuracy, but each word exposes fewer (and lower-magnitude) bits —
    Q3.4's worst flip adds 4.0, Q15.16's adds 16384.  Expected flips per
    trial scale with the format width and are reported per row.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials
    rate = preset.rates[rate_index]
    result = AblationResult(
        title=(
            f"ABL-W  Word-format ablation — {model_name}/{dataset_name}, "
            f"per-bit rate {rate:.1e}"
        ),
        headers=["format", "method", "clean acc", "acc under fault", "E[flips]"],
    )
    for fmt_name in formats:
        fmt = parse_format(fmt_name)
        for method in methods:
            model, _ = context.protected_model(method, quantize=False)
            quantize_module(model, fmt)
            clean = context.evaluator.accuracy(model)
            injector = FaultInjector(model, fmt=fmt)
            expected = rate * injector.total_bits
            with FaultCampaign(
                injector,
                context.evaluator.bind(model),
                trials=trials,
                seed=derive_seed(
                    preset.seed, "abl-w", model_name, method, str(fmt)
                ),
                workers=preset.workers,
            ) as campaign:
                faulty = campaign.run(
                    BitFlipFaultModel.at_rate(rate), tag=f"{fmt}:{method}"
                ).mean
            result.rows.append(
                [str(fmt), method, percent(clean), percent(faulty), f"{expected:.1f}"]
            )
            result.data[f"{fmt_name}:{method}"] = {
                "clean": clean,
                "faulty": faulty,
                "expected_flips": expected,
            }
    return result
