"""FIG1 — accuracy vs the global bound value of GBReLU (paper Fig. 1).

The paper's motivating study: VGG16 on CIFAR-10 under a 1e-5 fault rate,
faults injected into the input layer and the second (convolutional)
layer, the second layer's ReLU replaced by GBReLU with a swept global
bound λ.  Expected shape: accuracy under fault *rises* as λ shrinks —
until λ cuts into the legitimate activation range and the fault-free
accuracy collapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounded_relu import GBReLU
from repro.eval.experiments.context import ExperimentContext, prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.reporting import format_curves, percent
from repro.fault.campaign import FaultCampaign
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.nn.conv import Conv2d
from repro.quant.model import quantize_module
from repro.utils.rng import derive_seed

__all__ = ["Fig1Result", "run_fig1"]

DEFAULT_FRACTIONS = (0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass
class Fig1Result:
    """Accuracy under fault (and fault-free) per swept bound value."""

    model_name: str
    dataset_name: str
    fault_rate: float
    baseline_accuracy: float
    site: str
    layer_max: float
    bounds: list[float] = field(default_factory=list)
    fault_accuracy: list[float] = field(default_factory=list)
    clean_accuracy: list[float] = field(default_factory=list)

    def best_bound(self) -> float:
        """Bound value maximising accuracy under fault."""
        return self.bounds[int(np.argmax(self.fault_accuracy))]

    def to_text(self) -> str:
        header = (
            f"FIG1  GBReLU global-bound sweep — {self.model_name}/"
            f"{self.dataset_name}, fault rate {self.fault_rate:g}\n"
            f"site {self.site}; observed layer max {self.layer_max:.3f}; "
            f"baseline (no fault, no bound) accuracy {percent(self.baseline_accuracy)}\n"
        )
        curves = format_curves(
            [f"{b:.3f}" for b in self.bounds],
            {
                "accuracy under fault": self.fault_accuracy,
                "accuracy w/o fault": self.clean_accuracy,
            },
            x_label="global bound λ",
        )
        return header + curves


def _first_conv_paths(context: ExperimentContext, count: int = 2) -> list[str]:
    """Paths of the model's first ``count`` convolution layers."""
    model = context.fresh_model()
    paths = [
        path for path, module in model.named_modules() if isinstance(module, Conv2d)
    ]
    return paths[:count]


def run_fig1(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    fault_rate: float | None = None,
    trials: int | None = None,
    context: ExperimentContext | None = None,
) -> Fig1Result:
    """Regenerate Fig. 1: sweep the layer-2 GBReLU bound under faults.

    ``fractions`` are multiples of the profiled layer maximum; the paper
    sweeps absolute λ from ~0.25 to 4, which brackets its layer max the
    same way.
    """
    context = context or prepare_context(model_name, dataset_name, preset)
    trials = trials if trials is not None else preset.trials

    profile = context.activation_profile()
    site = profile.sites[1]  # the second layer's activation
    layer_max = profile.layer_bound(site)
    conv_paths = _first_conv_paths(context)
    prefixes = tuple(f"{p}." for p in conv_paths)

    if fault_rate is None:
        # The paper's 1e-5 over full-width conv1+conv2 yields ~10 expected
        # flips; scale the rate so the restricted fault space of the
        # width-scaled model sees the same flip count.
        probe = context.fresh_model()
        restricted_words = sum(
            param.size
            for name, param in probe.named_parameters()
            if name.startswith(prefixes)
        )
        fault_rate = 10.0 / (restricted_words * 32)

    def param_filter(name: str) -> bool:
        return name.startswith(prefixes)

    result = Fig1Result(
        model_name=context.model_name,
        dataset_name=context.dataset_name,
        fault_rate=fault_rate,
        baseline_accuracy=context.reference_accuracy,
        site=site,
        layer_max=layer_max,
    )
    fault_model = BitFlipFaultModel.at_rate(fault_rate, param_filter=param_filter)
    for fraction in fractions:
        bound = float(layer_max * fraction)
        model = context.fresh_model()
        model.set_submodule(site, GBReLU(bound, mode="zero"))
        quantize_module(model)
        result.bounds.append(bound)
        result.clean_accuracy.append(context.evaluator.accuracy(model))
        with FaultCampaign(
            FaultInjector(model),
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "fig1", context.model_name),
            workers=preset.workers,
        ) as campaign:
            result.fault_accuracy.append(campaign.run(fault_model, tag="fig1").mean)
    return result
