"""FIG2 — distribution of per-neuron maximum activations (paper Fig. 2).

The paper's argument for fine-grained bounds: in VGG16's second layer the
per-neuron maxima "vary wildly", so one global λ is either too loose for
most neurons or clips legitimate values.  This experiment profiles the
trained model and renders the histogram plus dispersion statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.experiments.context import ExperimentContext, prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.reporting import format_table, text_histogram

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Per-neuron activation maxima for one site, plus all-site summary."""

    model_name: str
    dataset_name: str
    site: str
    maxima: np.ndarray = field(default_factory=lambda: np.empty(0))
    site_spreads: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def dispersion_ratio(self) -> float:
        """max/median of per-neuron maxima — the "varies wildly" measure."""
        median = float(np.median(self.maxima))
        if median <= 0:
            return float("inf")
        return float(self.maxima.max()) / median

    def to_text(self) -> str:
        histogram = text_histogram(
            self.maxima,
            bins=16,
            title=(
                f"FIG2  Per-neuron max activation — {self.model_name}/"
                f"{self.dataset_name}, site {self.site} "
                f"({self.maxima.size} neurons)"
            ),
        )
        rows = [
            [site, f"{s['min']:.3f}", f"{s['median']:.3f}", f"{s['mean']:.3f}",
             f"{s['max']:.3f}", f"{s['std']:.3f}"]
            for site, s in self.site_spreads.items()
        ]
        table = format_table(
            ["site", "min", "median", "mean", "max", "std"],
            rows,
            title="\nPer-site spread of neuron maxima (all activation sites):",
        )
        return f"{histogram}\n{table}"


def run_fig2(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    site_index: int = 1,
    context: ExperimentContext | None = None,
) -> Fig2Result:
    """Regenerate Fig. 2 for the given activation site (default: layer 2)."""
    context = context or prepare_context(model_name, dataset_name, preset)
    profile = context.activation_profile()
    site = profile.sites[site_index]
    return Fig2Result(
        model_name=context.model_name,
        dataset_name=context.dataset_name,
        site=site,
        maxima=profile.neuron_distribution(site),
        site_spreads={s: profile.spread(s) for s in profile.sites},
    )
