"""FIG3 — shapes of the four activation functions (paper Fig. 3).

Evaluates ReLU, GBReLU, FitReLU-Naive and FitReLU on a 1-D grid and
reports characteristic values, verifying the qualitative shapes the paper
plots: ReLU unbounded; GBReLU/FitReLU-Naive pass-then-zero at λ; FitReLU
a smooth version of the same bump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.core.bounded_relu import FitReLUNaive, GBReLU
from repro.core.fitrelu import FitReLU
from repro.eval.reporting import format_curves, format_table
from repro.nn.activations import ReLU

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    """Sampled activation curves plus shape diagnostics."""

    grid: np.ndarray
    curves: dict[str, np.ndarray] = field(default_factory=dict)
    bound: float = 0.0
    k: float = 0.0

    def peak(self, name: str) -> float:
        """Maximum output over the grid (the effective activation ceiling)."""
        return float(self.curves[name].max())

    def tail_value(self, name: str) -> float:
        """Output at the right edge of the grid (a 'faulty' large input)."""
        return float(self.curves[name][-1])

    def to_text(self) -> str:
        sample_indices = np.linspace(0, len(self.grid) - 1, 16).astype(int)
        table = format_curves(
            [f"{self.grid[i]:+.2f}" for i in sample_indices],
            {
                name: values[sample_indices].tolist()
                for name, values in self.curves.items()
            },
            x_label="x",
            value_format="{:+.3f}",
            title=(
                f"FIG3  Activation function shapes (λ = {self.bound:g}, "
                f"k = {self.k:g})"
            ),
        )
        diag_rows = [
            [name, f"{self.peak(name):+.3f}", f"{self.tail_value(name):+.3f}"]
            for name in self.curves
        ]
        diagnostics = format_table(
            ["function", "peak output", f"output at x={self.grid[-1]:g}"],
            diag_rows,
            title="\nShape diagnostics (bounded functions must squash the tail):",
        )
        return f"{table}\n{diagnostics}"


def run_fig3(
    bound: float = 4.0,
    k: float = 40.0,
    grid_min: float = -5.0,
    grid_max: float = 10.0,
    points: int = 301,
) -> Fig3Result:
    """Regenerate Fig. 3: sample all four activation functions."""
    grid = np.linspace(grid_min, grid_max, points).astype(np.float32)
    x = Tensor(grid)
    functions = {
        "ReLU": ReLU(),
        "GBReLU": GBReLU(bound, mode="zero"),
        "FitReLU-Naive": FitReLUNaive(np.asarray([bound], dtype=np.float32)),
        "FitReLU": FitReLU(np.asarray([bound], dtype=np.float32), k=k),
    }
    result = Fig3Result(grid=grid, bound=bound, k=k)
    with no_grad():
        for name, module in functions.items():
            result.curves[name] = module(x).data.copy()
    return result
