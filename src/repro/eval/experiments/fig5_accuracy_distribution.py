"""FIG5 — accuracy *distribution* per scheme and fault rate (paper Fig. 5).

The paper's box plots for VGG16/CIFAR-10: at each fault rate, the spread
of accuracy over independent fault-injection trials, for FitAct,
Clip-Act, Ranger and the unprotected model.  Expected shape: FitAct's
boxes stay near the clean accuracy through high rates; Clip-Act falls
beyond ~the mid rates; Ranger collapses almost immediately; Unprotected
is worst everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments.context import ExperimentContext, prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.experiments.runner import MethodSweep, run_method_sweep
from repro.eval.reporting import format_table, percent

__all__ = ["Fig5Result", "run_fig5"]

METHOD_LABELS = {
    "fitact": "FitAct",
    "clipact": "Clip-Act",
    "ranger": "Ranger",
    "none": "Unprotected",
}


@dataclass
class Fig5Result:
    """Box statistics per (method, rate)."""

    sweep: MethodSweep
    methods: tuple[str, ...] = ("fitact", "clipact", "ranger", "none")

    def box(self, method: str, rate: float) -> dict[str, float]:
        return self.sweep.sweeps[method][rate].box_stats()

    def to_text(self) -> str:
        blocks = [
            f"FIG5  Accuracy distribution under faults — "
            f"{self.sweep.model_name}/{self.sweep.dataset_name} "
            f"({self.sweep.sweeps[self.methods[0]][self.sweep.rates[0]].trials} "
            f"trials per cell)"
        ]
        for method in self.methods:
            rows = []
            for rate in self.sweep.rates:
                stats = self.box(method, rate)
                flips = self.sweep.expected_flips[rate]
                rows.append(
                    [
                        f"{rate:.1e}",
                        f"{flips:.1f}",
                        percent(stats["min"]),
                        percent(stats["q1"]),
                        percent(stats["median"]),
                        percent(stats["q3"]),
                        percent(stats["max"]),
                    ]
                )
            blocks.append(
                format_table(
                    ["fault rate", "E[flips]", "min", "q1", "median", "q3", "max"],
                    rows,
                    title=(
                        f"\n{METHOD_LABELS[method]} "
                        f"(clean {percent(self.sweep.clean_accuracy[method])}):"
                    ),
                )
            )
        return "\n".join(blocks)


def run_fig5(
    preset: Preset = QUICK,
    model_name: str = "vgg16",
    dataset_name: str = "synth10",
    methods: tuple[str, ...] = ("fitact", "clipact", "ranger", "none"),
    context: ExperimentContext | None = None,
) -> Fig5Result:
    """Regenerate Fig. 5 (VGG16 on the CIFAR-10 stand-in by default)."""
    context = context or prepare_context(model_name, dataset_name, preset)
    sweep = run_method_sweep(context, methods=methods, tag="fig5")
    return Fig5Result(sweep=sweep, methods=methods)
