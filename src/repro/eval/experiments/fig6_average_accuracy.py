"""FIG6 — average accuracy for every model × dataset × scheme (paper Fig. 6).

The paper's headline grid: ResNet50 / VGG16 / AlexNet on CIFAR-10 and
CIFAR-100, mean accuracy over fault-injection trials at five fault rates,
for FitAct / Clip-Act / Ranger / Unprotected.  Expected shape: every
protection beats unprotected; FitAct is best everywhere and its margin
over Clip-Act opens at the higher rates; Ranger trails both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments.context import prepare_context
from repro.eval.experiments.fig5_accuracy_distribution import METHOD_LABELS
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.experiments.runner import MethodSweep, run_method_sweep
from repro.eval.reporting import format_curves, percent

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Mean-accuracy curves per (model, dataset) panel."""

    panels: dict[tuple[str, str], MethodSweep] = field(default_factory=dict)
    methods: tuple[str, ...] = ("fitact", "clipact", "ranger", "none")

    def panel(self, model_name: str, dataset_name: str) -> MethodSweep:
        return self.panels[(model_name, dataset_name)]

    def fitact_margin(self, model_name: str, dataset_name: str) -> list[float]:
        """FitAct minus Clip-Act mean accuracy per rate (the paper's gap)."""
        sweep = self.panel(model_name, dataset_name)
        fitact = sweep.mean_accuracy("fitact")
        clipact = sweep.mean_accuracy("clipact")
        return [f - c for f, c in zip(fitact, clipact)]

    def to_text(self) -> str:
        blocks = ["FIG6  Average accuracy under faults (all panels)"]
        for (model_name, dataset_name), sweep in self.panels.items():
            series = {
                METHOD_LABELS[m]: sweep.mean_accuracy(m) for m in self.methods
            }
            flips = [f"{sweep.expected_flips[r]:.1f}" for r in sweep.rates]
            title = (
                f"\n{model_name} / {dataset_name} "
                f"(clean: "
                + ", ".join(
                    f"{METHOD_LABELS[m]} {percent(sweep.clean_accuracy[m])}"
                    for m in self.methods
                )
                + f"; E[flips] per rate: {', '.join(flips)})"
            )
            blocks.append(
                format_curves(
                    [f"{r:.1e}" for r in sweep.rates],
                    series,
                    x_label="fault rate",
                    title=title,
                )
            )
        return "\n".join(blocks)


def run_fig6(
    preset: Preset = QUICK,
    models: tuple[str, ...] = ("resnet50", "vgg16", "alexnet"),
    datasets: tuple[str, ...] = ("synth10", "synth100"),
    methods: tuple[str, ...] = ("fitact", "clipact", "ranger", "none"),
) -> Fig6Result:
    """Regenerate Fig. 6 over the full model/dataset grid."""
    result = Fig6Result(methods=methods)
    for dataset_name in datasets:
        for model_name in models:
            context = prepare_context(model_name, dataset_name, preset)
            result.panels[(model_name, dataset_name)] = run_method_sweep(
                context, methods=methods, tag="fig6"
            )
    return result
