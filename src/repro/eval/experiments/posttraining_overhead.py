"""§VI-C1 — post-training runtime relative to conventional training.

The paper: post-training ResNet50/VGG16/AlexNet takes ~21/4/1 minutes vs
340/60/17 minutes of conventional training — a 5.9–6.7% overhead.  Here
both stages run on the same substrate and data, so the *ratio* is the
reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments.context import prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.reporting import format_table

__all__ = ["PostTrainingOverheadResult", "run_posttraining_overhead"]


@dataclass
class PostTrainingOverheadResult:
    """Training vs post-training wall-clock per model."""

    rows: list[dict[str, object]] = field(default_factory=list)

    def max_ratio(self) -> float:
        return max(float(row["ratio"]) for row in self.rows)

    def to_text(self) -> str:
        table_rows = [
            [
                row["model"],
                f"{row['train_seconds']:.1f}",
                f"{row['post_seconds']:.1f}",
                f"{row['ratio']:.1%}",
                f"{row['train_epochs']}",
                f"{row['post_epochs']}",
                f"{row['per_epoch_ratio']:.1%}",
            ]
            for row in self.rows
        ]
        table = format_table(
            [
                "model",
                "train s",
                "post-train s",
                "post/train",
                "train epochs",
                "post epochs",
                "per-epoch ratio",
            ],
            table_rows,
            title="§VI-C1  Post-training runtime overhead (same data/substrate)",
        )
        return (
            table
            + f"\nmax post/train ratio {self.max_ratio():.1%} (paper: 5.9–6.7% — "
            "its full-schedule ratio reflects hundreds of training epochs "
            "vs a handful of post-training epochs; at matched epoch budgets "
            "compare the per-epoch ratio column)"
        )


def run_posttraining_overhead(
    preset: Preset = QUICK,
    models: tuple[str, ...] = ("resnet50", "vgg16", "alexnet"),
    dataset_name: str = "synth10",
) -> PostTrainingOverheadResult:
    """Regenerate the §VI-C1 comparison for each paper model."""
    result = PostTrainingOverheadResult()
    for model_name in models:
        context = prepare_context(model_name, dataset_name, preset)
        _, info = context.protected_model("fitact")
        train_seconds = context.training_seconds
        post_seconds = float(info.get("post_seconds", 0.0))
        train_per_epoch = train_seconds / max(preset.train_epochs, 1)
        post_per_epoch = post_seconds / max(preset.post_epochs, 1)
        result.rows.append(
            {
                "model": model_name,
                "train_seconds": train_seconds,
                "post_seconds": post_seconds,
                "ratio": post_seconds / train_seconds if train_seconds else 0.0,
                "train_epochs": preset.train_epochs,
                "post_epochs": preset.post_epochs,
                "per_epoch_ratio": (
                    post_per_epoch / train_per_epoch if train_per_epoch else 0.0
                ),
            }
        )
    return result
