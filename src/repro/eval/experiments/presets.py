"""Experiment size presets.

The paper's experiments run full-width models on a TITAN V; the numpy
substrate runs the same topologies scaled down (DESIGN.md substitution
#2).  A preset fixes every size knob so benches are reproducible and the
three tiers trade fidelity for wall-clock:

- ``SMOKE`` — seconds; CI-sized sanity runs (LeNet-class models).
- ``QUICK`` — minutes; the default for ``pytest benchmarks/``: the real
  model zoo at reduced width/resolution.  This is the tier whose outputs
  EXPERIMENTS.md records.
- ``FULL`` — hours; closest to paper shape (width ×0.25, 32×32, more
  data/trials).  Run explicitly via the example scripts.

Fault-rate mapping: at a fixed per-bit rate the expected flip count
scales with model size; our scaled models have ~10–100× fewer parameter
bits than the paper's, so the paper's rates yield sub-single flips at the
low end.  Each preset therefore multiplies the paper's rate grid by
``rate_scale``, keeping the grid's relative spacing (1, 10, 30, 100,
300); experiment outputs always report the actual rates and the expected
flip counts so runs at any scale can be compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.fault.fault_model import PAPER_FAULT_RATES

__all__ = ["FULL", "PRESETS", "Preset", "QUICK", "SMOKE", "get_preset"]


@dataclass(frozen=True)
class Preset:
    """All size knobs of an experiment run."""

    name: str
    model_scale: float
    image_size: int
    train_samples: int
    test_samples: int
    batch_size: int
    train_epochs: int
    post_epochs: int
    trials: int
    rate_scale: float
    seed: int = 0
    post_lr: float = 0.005
    zeta: float = 0.05
    delta: float = 0.01
    eval_batches: int | None = None
    scale_overrides: tuple[tuple[str, float], ...] = ()
    workers: int = 0
    """Fault-campaign worker processes (0 = serial; results identical)."""

    @property
    def rates(self) -> tuple[float, ...]:
        """The paper's five-rate grid scaled for this preset's model sizes."""
        return tuple(rate * self.rate_scale for rate in PAPER_FAULT_RATES)

    def scale_for(self, model_name: str) -> float:
        """Width scale for a model (per-model overrides keep the slow
        architectures — ResNet50's 53 convolutions — affordable)."""
        return dict(self.scale_overrides).get(model_name, self.model_scale)

    def with_overrides(self, **kwargs: object) -> "Preset":
        """Copy with fields replaced (e.g. ``preset.with_overrides(trials=3)``)."""
        return replace(self, **kwargs)


SMOKE = Preset(
    name="smoke",
    model_scale=0.5,
    image_size=16,
    train_samples=500,
    test_samples=200,
    batch_size=64,
    train_epochs=8,
    post_epochs=3,
    trials=3,
    rate_scale=100.0,
)

QUICK = Preset(
    name="quick",
    model_scale=0.125,
    image_size=32,
    train_samples=1280,
    test_samples=256,
    batch_size=64,
    train_epochs=14,
    post_epochs=4,
    trials=4,
    rate_scale=1.0,
    scale_overrides=(("resnet50", 0.0625), ("resnet18", 0.0625), ("alexnet", 0.25)),
)

FULL = Preset(
    name="full",
    model_scale=0.25,
    image_size=32,
    train_samples=4000,
    test_samples=1000,
    batch_size=64,
    train_epochs=20,
    post_epochs=8,
    trials=20,
    rate_scale=3.0,
)

PRESETS: dict[str, Preset] = {p.name: p for p in (SMOKE, QUICK, FULL)}


def get_preset(name: str) -> Preset:
    """Look up a preset by name."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
