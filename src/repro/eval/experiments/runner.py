"""Shared campaign runner: protection methods × fault rates.

Figs. 5/6 and several ablations all reduce to the same loop — protect the
trained model with each scheme, then sweep fault rates with a campaign —
so it lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.experiments.context import ExperimentContext
from repro.fault.campaign import FaultCampaign, SweepResult
from repro.fault.injector import FaultInjector
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

__all__ = ["MethodSweep", "run_method_sweep"]

_logger = get_logger("eval.runner")


@dataclass
class MethodSweep:
    """Campaign results for several protection methods on one context."""

    model_name: str
    dataset_name: str
    rates: tuple[float, ...]
    clean_accuracy: dict[str, float] = field(default_factory=dict)
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    expected_flips: dict[float, float] = field(default_factory=dict)
    reference_accuracy: float = 0.0

    def mean_accuracy(self, method: str) -> list[float]:
        """Mean accuracy per rate for one method (a Fig. 6 line)."""
        return self.sweeps[method].mean_curve()


def run_method_sweep(
    context: ExperimentContext,
    methods: tuple[str, ...] = ("fitact", "clipact", "ranger", "none"),
    rates: tuple[float, ...] | None = None,
    trials: int | None = None,
    protection_overrides: dict[str, dict[str, object]] | None = None,
    tag: str = "",
) -> MethodSweep:
    """Protect with each method and run the fault-rate sweep.

    All methods share the campaign seed, so they face statistically
    identical fault streams.  ``protection_overrides`` maps method name to
    extra :class:`ProtectionConfig` fields (ablations use this).
    """
    preset = context.preset
    rates = rates if rates is not None else preset.rates
    trials = trials if trials is not None else preset.trials
    overrides = protection_overrides or {}
    result = MethodSweep(
        model_name=context.model_name,
        dataset_name=context.dataset_name,
        rates=tuple(rates),
        reference_accuracy=context.reference_accuracy,
    )
    for method in methods:
        model, info = context.protected_model(
            method, protection_overrides=overrides.get(method)
        )
        result.clean_accuracy[method] = info["clean_accuracy"]
        injector = FaultInjector(model)
        if not result.expected_flips:
            for rate in rates:
                result.expected_flips[rate] = rate * injector.total_bits
        with FaultCampaign(
            injector,
            context.evaluator.bind(model),
            trials=trials,
            seed=derive_seed(preset.seed, "campaign", tag, context.model_name,
                             context.dataset_name),
            workers=preset.workers,
        ) as campaign:
            result.sweeps[method] = campaign.run_sweep(rates, tag=f"{tag}:{method}")
        _logger.info(
            "%s/%s %s: clean %.1f%%, means %s",
            context.model_name,
            context.dataset_name,
            method,
            100 * result.clean_accuracy[method],
            [f"{v:.2f}" for v in result.sweeps[method].mean_curve()],
        )
    return result
