"""TAB1 — FitAct inference runtime & memory overhead (paper Table I).

For every model × dataset: time one inference batch with plain ReLU vs
FitAct activations (same trained weights) and compare parameter memory
under Q15.16.  The paper reports < 12% runtime and < 6% memory overhead;
absolute milliseconds/megabytes are host-specific, the ratios are the
reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor
from repro.eval.experiments.context import prepare_context
from repro.eval.experiments.presets import Preset, QUICK
from repro.eval.overhead import OverheadReport, measure_overhead
from repro.eval.reporting import format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """One overhead row per (dataset, model)."""

    rows: list[OverheadReport] = field(default_factory=list)

    def max_runtime_overhead(self) -> float:
        return max(row.runtime_overhead for row in self.rows)

    def max_memory_overhead(self) -> float:
        return max(row.memory_overhead for row in self.rows)

    def to_text(self) -> str:
        table = format_table(
            [
                "model",
                "ReLU ms",
                "FitAct ms",
                "runtime O/H",
                "ReLU MB",
                "FitAct MB",
                "memory O/H",
            ],
            [row.row() for row in self.rows],
            title="TAB1  FitAct inference overheads (runtime per batch, Q15.16 memory)",
        )
        summary = (
            f"\nmax runtime overhead {self.max_runtime_overhead():.2%} "
            f"(paper: <12%), max memory overhead "
            f"{self.max_memory_overhead():.2%} (paper: <6%)"
        )
        return table + summary


def run_table1(
    preset: Preset = QUICK,
    models: tuple[str, ...] = ("resnet50", "vgg16", "alexnet"),
    datasets: tuple[str, ...] = ("synth10", "synth100"),
    batch_size: int = 64,
    repeats: int = 10,
) -> Table1Result:
    """Regenerate Table I over the model/dataset grid."""
    result = Table1Result()
    rng = np.random.default_rng(preset.seed)
    for dataset_name in datasets:
        for model_name in models:
            context = prepare_context(model_name, dataset_name, preset)
            baseline = context.fresh_model()
            protected, _ = context.protected_model("fitact")
            inputs = Tensor(
                rng.standard_normal(
                    (batch_size, 3, preset.image_size, preset.image_size)
                ).astype(np.float32)
            )
            report = measure_overhead(
                baseline,
                protected,
                inputs,
                label=f"{dataset_name}/{model_name}",
                repeats=repeats,
            )
            result.rows.append(report)
    return result
