"""Machine-readable export of experiment results.

Every experiment result in this library renders itself as text
(`to_text()`) for the terminal and EXPERIMENTS.md; downstream users who
want to *plot* the reproduction need the numbers.  `result_to_dict`
converts any experiment result into plain JSON-serialisable data
(floats, strings, lists — numpy scalars and arrays are unwrapped), and
`save_json` / `save_csv` write it out.  `examples/run_experiment.py
--json/--csv` exposes both.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import fields, is_dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["result_to_dict", "save_csv", "save_json"]

_MAX_DEPTH = 12


def _plain(value: Any, depth: int = 0) -> Any:
    """Recursively convert a result object into JSON-serialisable data."""
    if depth > _MAX_DEPTH:
        return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer)):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _plain(item, depth + 1) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item, depth + 1) for item in value]
    if is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name), depth + 1)
            for field in fields(value)
        }
    # Opaque objects (profiles, fault models, …): a readable stand-in.
    describe = getattr(value, "describe", None)
    if callable(describe):
        return describe()
    return repr(value)


def result_to_dict(result: Any) -> dict[str, Any]:
    """Convert an experiment result (any of the ``*Result`` dataclasses
    or :class:`~repro.eval.experiments.ablations.AblationResult`) into a
    JSON-serialisable dictionary."""
    data = _plain(result)
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"cannot export {type(result).__name__}: not a result dataclass"
        )
    data["result_type"] = type(result).__name__
    return data


def save_json(path: str | os.PathLike, result: Any) -> None:
    """Write an experiment result as pretty-printed JSON."""
    payload = result_to_dict(result)
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_csv(path: str | os.PathLike, result: Any) -> None:
    """Write a tabular experiment result as CSV.

    Works for any result exposing ``headers`` and ``rows`` (the
    ablation/extension tables).  Curve-style results should use
    :func:`save_json`, which preserves their full structure.
    """
    headers = getattr(result, "headers", None)
    rows = getattr(result, "rows", None)
    if headers is None or rows is None:
        raise ConfigurationError(
            f"{type(result).__name__} has no headers/rows table; "
            "use save_json for curve-style results"
        )
    with open(os.fspath(path), "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([str(h) for h in headers])
        for row in rows:
            writer.writerow([str(cell) for cell in row])
