"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

__all__ = ["class_accuracy", "confusion_matrix", "top1_accuracy", "topk_accuracy"]


def _as_logits(logits: Tensor | np.ndarray) -> np.ndarray:
    array = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    if array.ndim != 2:
        raise ShapeError(f"expected (N, classes) logits, got shape {array.shape}")
    return array


def top1_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Fraction of samples whose argmax matches the target (paper §VI-A1)."""
    array = _as_logits(logits)
    targets = np.asarray(targets)
    if len(targets) == 0:
        raise ShapeError("empty target array")
    return float((array.argmax(axis=1) == targets).mean())


def topk_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose target lands in the top-k logits."""
    array = _as_logits(logits)
    targets = np.asarray(targets)
    if k < 1 or k > array.shape[1]:
        raise ShapeError(f"k must be in [1, {array.shape[1]}], got {k}")
    topk = np.argpartition(-array, k - 1, axis=1)[:, :k]
    return float((topk == targets[:, None]).any(axis=1).mean())


def confusion_matrix(
    logits: Tensor | np.ndarray, targets: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """(true, predicted) count matrix."""
    array = _as_logits(logits)
    targets = np.asarray(targets, dtype=np.int64)
    predictions = array.argmax(axis=1)
    if num_classes is None:
        num_classes = array.shape[1]
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def class_accuracy(
    logits: Tensor | np.ndarray, targets: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Per-class accuracy vector (NaN for classes with no samples)."""
    matrix = confusion_matrix(logits, targets, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
