"""Runtime and memory overhead measurement (paper Table I).

Compares inference latency and parameter memory of a protected model
against the identical weights with plain ReLU activations.  Absolute
numbers are host-specific (DESIGN.md substitution #3); the reproduction
target is the *overhead ratio*: the paper reports < 12% runtime and < 6%
memory for FitAct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, eval_mode
from repro.quant.fixed_point import FixedPointFormat, Q15_16
from repro.quant.model import model_memory_bytes
from repro.utils.timing import time_callable

__all__ = ["OverheadReport", "measure_inference_seconds", "measure_overhead"]


@dataclass
class OverheadReport:
    """One Table I row."""

    label: str
    baseline_seconds: float
    protected_seconds: float
    baseline_memory_bytes: int
    protected_memory_bytes: int

    @property
    def runtime_overhead(self) -> float:
        """Fractional runtime increase (paper reports < 12% for FitAct)."""
        return self.protected_seconds / self.baseline_seconds - 1.0

    @property
    def memory_overhead(self) -> float:
        """Fractional memory increase (paper reports < 6% for FitAct)."""
        return self.protected_memory_bytes / self.baseline_memory_bytes - 1.0

    def row(self) -> list[str]:
        """Formatted cells matching the paper's Table I layout."""
        return [
            self.label,
            f"{self.baseline_seconds * 1e3:.3f}",
            f"{self.protected_seconds * 1e3:.3f}",
            f"{self.runtime_overhead:.2%}",
            f"{self.baseline_memory_bytes / 2**20:.2f}",
            f"{self.protected_memory_bytes / 2**20:.2f}",
            f"{self.memory_overhead:.2%}",
        ]


def measure_inference_seconds(
    model: Module, inputs: Tensor, repeats: int = 10, warmup: int = 2
) -> float:
    """Median-of-min inference wall time for one batch (eval, no grads)."""

    def run() -> None:
        with eval_mode(), no_grad():
            model(inputs)

    timing = time_callable(run, repeats=repeats, warmup=warmup)
    return timing["min"]


def measure_overhead(
    baseline: Module,
    protected: Module,
    inputs: Tensor | np.ndarray,
    label: str = "",
    repeats: int = 10,
    fmt: FixedPointFormat = Q15_16,
) -> OverheadReport:
    """Build a Table I row comparing ``protected`` against ``baseline``.

    Both models should hold the same trained weights; they are timed on
    the same input batch and measured for parameter memory under ``fmt``.
    """
    if not isinstance(inputs, Tensor):
        inputs = Tensor(np.asarray(inputs, dtype=np.float32))
    return OverheadReport(
        label=label,
        baseline_seconds=measure_inference_seconds(baseline, inputs, repeats=repeats),
        protected_seconds=measure_inference_seconds(protected, inputs, repeats=repeats),
        baseline_memory_bytes=model_memory_bytes(baseline, fmt),
        protected_memory_bytes=model_memory_bytes(protected, fmt),
    )
