"""Plain-text reporting: tables, curves and histograms.

Every experiment regenerates its paper artefact as text — the tables
print the same rows the paper reports, the "figures" print aligned series
and unicode histograms so shapes are inspectable in a terminal or log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = [
    "format_atlas",
    "format_curves",
    "format_markdown_table",
    "format_table",
    "percent",
    "text_histogram",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curves(
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    value_format: str = "{:.2%}",
    title: str = "",
) -> str:
    """Aligned multi-series table: one row per x, one column per series.

    The text equivalent of a line plot (Figs. 1, 5, 6).
    """
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for values in series.values():
            row.append(value_format.format(values[index]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """GitHub-flavoured markdown table (column-aligned for raw reading)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"]
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in cells:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def _atlas_rows(
    entries: Sequence[Mapping[str, object]],
    label_key: str,
    with_density: bool = False,
) -> list[list[object]]:
    rows = []
    for entry in entries:
        low, high = entry["sdc_ci"]
        row: list[object] = [
            entry[label_key],
            entry["trials"],
            entry["flips"],
            percent(float(entry["mean_accuracy"])),
            percent(float(entry["min_accuracy"])),
            percent(float(entry["sdc_rate"]), digits=1),
            f"[{percent(float(low), digits=1)}, "
            f"{percent(float(high), digits=1)}]",
        ]
        if with_density:
            density = entry.get("sdc_density")
            row.append("-" if density is None else f"{float(density):.2e}")
        rows.append(row)
    return rows


def format_atlas(atlas: Mapping[str, object]) -> str:
    """Markdown rendering of a vulnerability atlas.

    Takes the JSON-ready dict of :func:`repro.store.build_atlas`: a
    per-layer table (most vulnerable first) and a per-bit-position table
    (ascending bit index, so the fraction→integer→sign damage ramp reads
    top to bottom).  When the atlas carries fault-space-normalised
    densities (stores that journal their fault-space geometry), an
    "SDC density" column renders the size-corrected per-bit rates.
    """
    headers = ["trials hit", "flips", "mean acc", "min acc", "SDC rate", "95% CI"]
    layers = sorted(
        atlas["layers"],
        key=lambda row: (-float(row["sdc_rate"]), -float(row["flips"])),
    )
    bits = sorted(atlas["bits"], key=lambda row: int(row["bit"]))
    with_density = any(
        "sdc_density" in row for table in (layers, bits) for row in table
    )
    if with_density:
        headers = [*headers, "SDC density"]
    lines = [
        "## Vulnerability atlas",
        "",
        f"{atlas['trials']} journaled trials ({atlas['trials_with_faults']} "
        f"with faults, {atlas['flips']} bit flips total); SDC = accuracy "
        f"more than {percent(float(atlas['tolerance']))} below the "
        f"{percent(float(atlas['baseline']))} fault-free baseline.",
        "",
        "### By layer",
        "",
    ]
    if layers:
        lines.append(
            format_markdown_table(
                ["layer", *headers], _atlas_rows(layers, "layer", with_density)
            )
        )
        unhit = int(atlas.get("layers_unhit", 0))
        if unhit:
            lines.append("")
            lines.append(f"({unhit} of {atlas['layers_total']} layers saw no faults.)")
    else:
        lines.append("(no fault sites journaled yet)")
    lines.extend(["", "### By bit position", ""])
    if bits:
        lines.append(
            format_markdown_table(
                ["bit", *headers], _atlas_rows(bits, "bit", with_density)
            )
        )
    else:
        lines.append("(no fault sites journaled yet)")
    return "\n".join(lines)


def text_histogram(
    values: np.ndarray,
    bins: int = 20,
    width: int = 50,
    value_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Unicode bar histogram (the text rendering of Fig. 2)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return "(no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        bar_units = count / peak * width
        full = int(bar_units)
        frac = bar_units - full
        bar = "█" * full
        if frac > 0 and full < width:
            bar += _BLOCKS[max(1, int(frac * (len(_BLOCKS) - 1)))]
        low = value_format.format(edges[index])
        high = value_format.format(edges[index + 1])
        lines.append(f"[{low:>8}, {high:>8}) {bar} {count}")
    return "\n".join(lines)
