"""Plain-text reporting: tables, curves and histograms.

Every experiment regenerates its paper artefact as text — the tables
print the same rows the paper reports, the "figures" print aligned series
and unicode histograms so shapes are inspectable in a terminal or log.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["format_curves", "format_table", "percent", "text_histogram"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curves(
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    value_format: str = "{:.2%}",
    title: str = "",
) -> str:
    """Aligned multi-series table: one row per x, one column per series.

    The text equivalent of a line plot (Figs. 1, 5, 6).
    """
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for values in series.values():
            row.append(value_format.format(values[index]))
        rows.append(row)
    return format_table(headers, rows, title=title)


def text_histogram(
    values: np.ndarray,
    bins: int = 20,
    width: int = 50,
    value_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Unicode bar histogram (the text rendering of Fig. 2)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return "(no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        bar_units = count / peak * width
        full = int(bar_units)
        frac = bar_units - full
        bar = "█" * full
        if frac > 0 and full < width:
            bar += _BLOCKS[max(1, int(frac * (len(_BLOCKS) - 1)))]
        low = value_format.format(edges[index])
        high = value_format.format(edges[index + 1])
        lines.append(f"[{low:>8}, {high:>8}) {bar} {count}")
    return "\n".join(lines)
