"""Fault injection into parameter and activation memory (paper §VI-A2).

The offline equivalent of the paper's PyTorch fault-injection tool:
fault models (uniform bit-flips, stuck-at cells, multi-bit bursts,
whole-word replacement), uniform site sampling, an exact-restore
injector, transient activation faults, a SEC-DED ECC memory model,
campaign runners, and vulnerability statistics.
"""

from repro.fault.activation import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultLayer,
    ActivationFaultModel,
)
from repro.fault.burst import BurstFaultModel, expand_bursts
from repro.fault.campaign import (
    AUTO_REPLICAS,
    CampaignAggregator,
    CampaignResult,
    EarlyStop,
    FaultCampaign,
    SweepResult,
)
from repro.fault.ecc import (
    ECCOutcome,
    ECCProtectedInjector,
    SECDEDCode,
    ecc_memory_bytes,
)
from repro.fault.fault_model import PAPER_FAULT_RATES, BitFlipFaultModel, FaultModel
from repro.fault.injector import FaultInjector
from repro.fault.parallel import (
    GroupTrialRunner,
    ProcessExecutor,
    SerialExecutor,
    TrialExecutor,
    TrialGroup,
    TrialOutcome,
    TrialRunner,
    TrialWork,
    available_workers,
    make_executor,
)
from repro.fault.sites import FaultSites, sample_distinct, sample_sites
from repro.fault.statistics import (
    OutcomeBreakdown,
    accuracy_drop,
    bit_position_vulnerability,
    classify_outcomes,
    critical_bit_threshold,
    mean_confidence_interval,
    parameter_group_vulnerability,
    sdc_probability,
    wilson_interval,
)
from repro.fault.stuck_at import StuckAtFaultModel, active_stuck_sites
from repro.fault.word import WordFaultModel, replacement_flips

__all__ = [
    "AUTO_REPLICAS",
    "PAPER_FAULT_RATES",
    "ActivationFaultCampaign",
    "ActivationFaultInjector",
    "ActivationFaultLayer",
    "ActivationFaultModel",
    "BitFlipFaultModel",
    "BurstFaultModel",
    "CampaignAggregator",
    "CampaignResult",
    "ECCOutcome",
    "ECCProtectedInjector",
    "EarlyStop",
    "FaultCampaign",
    "FaultInjector",
    "FaultModel",
    "FaultSites",
    "GroupTrialRunner",
    "OutcomeBreakdown",
    "ProcessExecutor",
    "SECDEDCode",
    "SerialExecutor",
    "StuckAtFaultModel",
    "SweepResult",
    "TrialExecutor",
    "TrialGroup",
    "TrialOutcome",
    "TrialRunner",
    "TrialWork",
    "WordFaultModel",
    "accuracy_drop",
    "active_stuck_sites",
    "available_workers",
    "bit_position_vulnerability",
    "classify_outcomes",
    "critical_bit_threshold",
    "ecc_memory_bytes",
    "expand_bursts",
    "make_executor",
    "mean_confidence_interval",
    "parameter_group_vulnerability",
    "replacement_flips",
    "sample_distinct",
    "sample_sites",
    "sdc_probability",
    "wilson_interval",
]
