"""Transient activation faults: bit-flips in feature maps during inference.

The paper evaluates *parameter-memory* faults (§VI-A2).  Ranger — one of
its baselines — was originally designed against a different fault model:
transient soft errors striking the datapath, which corrupt *activation
values in flight* rather than stored weights.  This module adds that
fault model so the reproduction can also compare the protection schemes
on Ranger's home turf (bench EXT-A).

Mechanism
---------
:class:`ActivationFaultInjector` performs reversible surgery: every
activation site (ReLU or any protected activation) is wrapped so its
output passes through an :class:`ActivationFaultLayer`.  While a trial
is active, each forward pass encodes the outgoing feature map to
fixed-point words, flips bits at the configured per-bit rate (fresh
random sites per pass — transient faults do not persist), and decodes
back.  Because the flip happens *after* one activation and *before* the
next layer, downstream bounded activations are the only thing standing
between a corrupted value and the logits — exactly the propagation path
the paper's Fig. 5 reasoning describes.

The wrappers change module paths (``features.3`` becomes
``features.3.wrapped``), so install them only *after* all parameter-
level work — training, post-training, quantisation, parameter-fault
snapshotting — is done, or call :meth:`ActivationFaultInjector.remove`
first.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignResult
from repro.fault.sites import sample_sites
from repro.nn.module import Module, is_warmup
from repro.quant.fixed_point import FixedPointFormat, Q15_16, decode, encode, flip_bits
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, new_rng

__all__ = [
    "ActivationFaultCampaign",
    "ActivationFaultInjector",
    "ActivationFaultLayer",
    "ActivationFaultModel",
]

_logger = get_logger("fault.activation")


@dataclass(frozen=True)
class ActivationFaultModel:
    """One transient-fault scenario over activation values.

    Exactly one of ``fault_rate`` (per-bit flip probability per forward
    pass) or ``n_flips`` (exact flips per wrapped layer per forward
    pass) must be set.
    """

    fault_rate: float | None = None
    n_flips: int | None = None

    def __post_init__(self) -> None:
        if (self.fault_rate is None) == (self.n_flips is None):
            raise ConfigurationError("specify exactly one of fault_rate or n_flips")
        if self.fault_rate is not None and not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if self.n_flips is not None and self.n_flips < 0:
            raise ConfigurationError(f"n_flips must be >= 0, got {self.n_flips}")

    @classmethod
    def at_rate(cls, fault_rate: float) -> "ActivationFaultModel":
        """Uniform transient flips at a per-bit probability."""
        return cls(fault_rate=fault_rate)

    @classmethod
    def exact(cls, n_flips: int) -> "ActivationFaultModel":
        """Exactly ``n_flips`` flips per layer per forward pass."""
        return cls(n_flips=n_flips)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        if self.fault_rate is not None:
            return f"activation rate={self.fault_rate:g}"
        return f"activation n_flips={self.n_flips}/layer"


class ActivationFaultLayer(Module):
    """Identity layer that corrupts the values flowing through it.

    Disabled it is a pure pass-through.  Enabled (inference only), each
    forward pass round-trips the input through the fixed-point format
    with freshly sampled bit-flips.  The quantisation itself is part of
    the model: datapaths that carry Q15.16 values quantise activations
    whether or not a particle strikes.
    """

    def __init__(self, fmt: FixedPointFormat = Q15_16) -> None:
        super().__init__()
        self.fmt = fmt
        self.fault_model: ActivationFaultModel | None = None
        self.rng: np.random.Generator | None = None
        self.enabled = False
        self.flips_injected = 0

    def arm(self, fault_model: ActivationFaultModel, rng: np.random.Generator) -> None:
        """Enable fault injection with a dedicated random stream."""
        self.fault_model = fault_model
        self.rng = rng
        self.enabled = True
        self.flips_injected = 0

    def disarm(self) -> None:
        """Return to pass-through behaviour."""
        self.enabled = False
        self.fault_model = None
        self.rng = None

    def apply_faults(self, data: np.ndarray) -> np.ndarray:
        """One forward's surgery: encode, flip fresh sites, decode.

        The single source of truth for the fault arithmetic and the
        random-stream consumption order — the module ``forward`` and the
        compiled runtime's ``FaultStepKernel`` both call it, which is
        what keeps the two paths bit-identical.  Callers check
        ``enabled``/warm-up state; this assumes an armed layer.
        """
        words = encode(data, self.fmt)
        sites = sample_sites(
            self.rng,
            total_words=int(data.size),
            word_bits=self.fmt.total_bits,
            fault_rate=self.fault_model.fault_rate,
            n_flips=self.fault_model.n_flips,
        )
        self.flips_injected += len(sites)
        if len(sites):
            words = flip_bits(
                words, sites.word_positions, sites.bit_positions, self.fmt
            )
        return decode(words, self.fmt).reshape(data.shape)

    def forward(self, x):  # noqa: ANN001, ANN201 - Tensor in/out
        if not self.enabled or self.fault_model is None or is_warmup():
            # Warm-up forwards (plan compilation probing shapes) must
            # not consume the random stream or bump counters — armed
            # trial results would diverge between module and plan paths.
            return x
        from repro.autograd.tensor import Tensor

        return Tensor(self.apply_faults(np.asarray(x.data)))

    def extra_repr(self) -> str:
        state = "armed" if self.enabled else "pass-through"
        return f"fmt={self.fmt}, {state}"


class _FaultedSite(Module):
    """An activation site with a fault layer appended to its output."""

    def __init__(self, wrapped: Module, fault: ActivationFaultLayer) -> None:
        super().__init__()
        self.wrapped = wrapped
        self.fault = fault

    def forward(self, x):  # noqa: ANN001, ANN201 - Tensor in/out
        return self.fault(self.wrapped(x))


def _default_site_filter(module: Module) -> bool:
    """Wrap everything that behaves as an activation function."""
    from repro.core.bounded_relu import BoundedReLU
    from repro.core.bounded_tanh import BoundedTanh
    from repro.core.fitrelu import FitReLU
    from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh

    return isinstance(
        module, (ReLU, LeakyReLU, Sigmoid, Tanh, BoundedReLU, FitReLU, BoundedTanh)
    )


class ActivationFaultInjector:
    """Install, drive, and remove transient-fault layers on a model.

    Parameters
    ----------
    model:
        The (already protected / quantised) model to instrument.
    site_filter:
        Predicate choosing which modules get a fault layer on their
        output; defaults to every activation-like module (plain and
        protected).
    fmt:
        Fixed-point format of the simulated datapath.
    """

    def __init__(
        self,
        model: Module,
        site_filter: Callable[[Module], bool] | None = None,
        fmt: FixedPointFormat = Q15_16,
    ) -> None:
        self.model = model
        self.fmt = fmt
        site_filter = site_filter or _default_site_filter
        self._layers: dict[str, ActivationFaultLayer] = {}
        sites = [
            path
            for path, module in model.named_modules()
            if path and site_filter(module) and not isinstance(module, _FaultedSite)
        ]
        if not sites:
            raise ConfigurationError(
                "no activation sites matched; nothing to instrument"
            )
        for path in sites:
            layer = ActivationFaultLayer(fmt)
            model.set_submodule(path, _FaultedSite(model.get_submodule(path), layer))
            self._layers[path] = layer
        _logger.info("instrumented %d activation sites", len(sites))

    @property
    def sites(self) -> list[str]:
        """Instrumented module paths (pre-wrap names)."""
        return list(self._layers)

    @property
    def flips_injected(self) -> int:
        """Total flips across all layers since the last arm."""
        return sum(layer.flips_injected for layer in self._layers.values())

    def remove(self) -> int:
        """Undo the surgery, restoring the original module tree."""
        for path in self._layers:
            wrapper = self.model.get_submodule(path)
            if isinstance(wrapper, _FaultedSite):
                self.model.set_submodule(path, wrapper.wrapped)
        count = len(self._layers)
        self._layers = {}
        return count

    @contextmanager
    def active(
        self,
        fault_model: ActivationFaultModel,
        seed: int | np.random.Generator | None = None,
    ) -> Iterator["ActivationFaultInjector"]:
        """Context manager: arm every layer, yield, disarm.

        Each layer gets an independent stream derived from ``seed`` and
        its path, so trials are reproducible and layers are decorrelated.
        """
        if not self._layers:
            raise ConfigurationError("injector has been removed; re-instrument first")
        base = new_rng(seed)
        root = int(base.integers(0, 2**31 - 1))
        for path, layer in self._layers.items():
            layer.arm(fault_model, new_rng(derive_seed(root, "act-fault", path)))
        try:
            yield self
        finally:
            for layer in self._layers.values():
                layer.disarm()


class ActivationFaultCampaign:
    """Repeated transient-fault trials (the activation-space analogue of
    :class:`repro.fault.FaultCampaign`).

    Each trial evaluates the model once with every forward pass subject
    to fresh transient flips; accuracies across trials form the
    distribution reported by bench EXT-A.
    """

    def __init__(
        self,
        injector: ActivationFaultInjector,
        evaluate: Callable[[], float],
        trials: int = 10,
        seed: int = 0,
    ) -> None:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        self.injector = injector
        self.evaluate = evaluate
        self.trials = int(trials)
        self.seed = int(seed)

    def run(self, fault_model: ActivationFaultModel, tag: str = "") -> CampaignResult:
        """Run all trials for one transient-fault configuration."""
        accuracies = np.empty(self.trials, dtype=np.float64)
        flip_counts = np.empty(self.trials, dtype=np.int64)
        for trial in range(self.trials):
            trial_seed = derive_seed(
                self.seed, "act-trial", tag, fault_model.describe(), trial
            )
            with self.injector.active(fault_model, seed=trial_seed):
                accuracies[trial] = self.evaluate()
                flip_counts[trial] = self.injector.flips_injected
        result = CampaignResult(fault_model, accuracies, flip_counts)
        _logger.info("activation campaign %s %s", tag, result.summary())
        return result
