"""Multi-bit burst faults: clusters of adjacent flipped bits.

The paper's uniform model flips isolated bits, but real memory upsets
are frequently *spatially correlated*: a single particle strike or a
row-hammer disturbance corrupts several physically adjacent cells at
once (multi-bit upsets, MBUs).  Within one data word that reads as a run
of ``burst_length`` adjacent flipped bits.

Burst faults stress bounded activations differently from isolated
flips: a burst across the high integer bits of a Q15.16 word produces a
*much* larger magnitude error than any single flip, while a burst
confined to the fraction field is still benign — so the comparison
against the iid model at a matched total flip count (bench EXT-F)
isolates the effect of spatial correlation.

Sampling
--------
Burst *starts* are uniform over (word, start-bit) pairs with the start
bit restricted so the burst fits inside the word (no spill into the
neighbouring word: parameters are not guaranteed to be physically
adjacent).  Each start expands into ``burst_length`` consecutive
single-bit sites.  Two bursts can overlap in one word; overlapping
sites XOR-cancel exactly as two physical disturbances of the same cell
would re-flip it, and the expansion dedupes identical sites to keep
:class:`FaultSites` pairs distinct.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.fault.sites import FaultSites

__all__ = ["BurstFaultModel", "expand_bursts"]


def expand_bursts(starts: FaultSites, burst_length: int) -> FaultSites:
    """Expand burst start sites into per-bit flip sites.

    Each ``(word, bit)`` start becomes ``(word, bit) … (word,
    bit+burst_length-1)``.  Duplicate sites produced by overlapping
    bursts are removed (a cell flipped twice by the same event reads as
    flipped once in the stored word).
    """
    if burst_length < 1:
        raise ConfigurationError(f"burst_length must be >= 1, got {burst_length}")
    if len(starts) == 0:
        return starts
    words = np.repeat(starts.word_positions, burst_length)
    bits = (
        np.repeat(starts.bit_positions, burst_length)
        + np.tile(np.arange(burst_length, dtype=np.int64), len(starts))
    )
    keys = np.unique(words * np.int64(1 << 8) + bits)
    return FaultSites(keys >> np.int64(8), keys & np.int64((1 << 8) - 1))


@dataclass(frozen=True)
class BurstFaultModel:
    """Bursts of ``burst_length`` adjacent bit-flips within single words.

    Exactly one of ``burst_rate`` (per-bit rate *of burst starts*) or
    ``n_bursts`` (exact burst count) must be set.  To compare against the
    iid :class:`BitFlipFaultModel` at a matched expected flip count, use
    ``BurstFaultModel.matching_rate``.

    Parameters
    ----------
    burst_length:
        Number of adjacent bits corrupted by one event (2-8 are typical
        MBU sizes; 1 degenerates to the iid model).
    burst_rate:
        Probability per *start position* of a burst beginning there.
    n_bursts:
        Exact number of bursts per trial.
    param_filter:
        Predicate over dotted parameter names selecting the fault-space
        subset (None = every parameter).
    """

    burst_length: int
    burst_rate: float | None = None
    n_bursts: int | None = None
    param_filter: Callable[[str], bool] | None = None

    def __post_init__(self) -> None:
        if self.burst_length < 1:
            raise ConfigurationError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )
        if (self.burst_rate is None) == (self.n_bursts is None):
            raise ConfigurationError("specify exactly one of burst_rate or n_bursts")
        if self.burst_rate is not None and not 0.0 <= self.burst_rate <= 1.0:
            raise ConfigurationError(
                f"burst_rate must be in [0, 1], got {self.burst_rate}"
            )
        if self.n_bursts is not None and self.n_bursts < 0:
            raise ConfigurationError(f"n_bursts must be >= 0, got {self.n_bursts}")

    @classmethod
    def exact(
        cls, burst_length: int, n_bursts: int, **kwargs: object
    ) -> "BurstFaultModel":
        """Exactly ``n_bursts`` bursts per trial."""
        return cls(burst_length=burst_length, n_bursts=n_bursts, **kwargs)

    @classmethod
    def matching_rate(
        cls,
        burst_length: int,
        bit_rate: float,
        word_bits: int = 32,
        **kwargs: object,
    ) -> "BurstFaultModel":
        """Bursts whose expected *total flips* match an iid per-bit rate.

        An iid model at ``bit_rate`` flips ``bit_rate × words × word_bits``
        cells in expectation.  Burst starts are drawn from the
        ``word_bits − L + 1`` in-word start positions, so the start rate
        that matches is ``bit_rate × word_bits / (L × (word_bits − L + 1))``
        (exact up to the rare overlap of two bursts in one word).
        ``word_bits`` must match the injector's format (32 for Q15.16).
        """
        starts_per_word = word_bits - burst_length + 1
        if starts_per_word < 1:
            raise ConfigurationError(
                f"burst_length {burst_length} exceeds the {word_bits}-bit word"
            )
        start_rate = bit_rate * word_bits / (burst_length * starts_per_word)
        return cls(burst_length=burst_length, burst_rate=start_rate, **kwargs)

    def _start_bits(self, word_bits: int) -> tuple[int, ...]:
        """Start-bit indices keeping the whole burst inside the word."""
        last = word_bits - self.burst_length
        if last < 0:
            raise ConfigurationError(
                f"burst_length {self.burst_length} exceeds the "
                f"{word_bits}-bit word"
            )
        return tuple(range(last + 1))

    def sample_sites(
        self, injector: FaultInjector, rng: np.random.Generator
    ) -> FaultSites:
        """Draw burst starts uniformly and expand them into flip sites."""
        starts_model = BitFlipFaultModel(
            fault_rate=self.burst_rate,
            n_flips=self.n_bursts,
            allowed_bits=self._start_bits(injector.fmt.total_bits),
            param_filter=self.param_filter,
        )
        starts = injector.sample(starts_model, rng=rng)
        return expand_bursts(starts, self.burst_length)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        base = f"burst(L={self.burst_length})"
        if self.burst_rate is not None:
            base += f", start_rate={self.burst_rate:g}"
        else:
            base += f", n_bursts={self.n_bursts}"
        if self.param_filter is not None:
            base += ", filtered"
        return base
