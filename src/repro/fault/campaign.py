"""Fault-injection campaigns: repeated trials with accuracy collection.

A campaign fixes a model + evaluation closure, then for each fault
configuration runs K independent trials (fresh fault sites each time),
recording the accuracy under fault.  The resulting distributions are the
raw material of the paper's Fig. 5 (distribution) and Fig. 6 (means).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.fault.fault_model import BitFlipFaultModel, FaultModel
from repro.fault.injector import FaultInjector
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

__all__ = ["CampaignResult", "FaultCampaign", "SweepResult"]

_logger = get_logger("fault.campaign")


@dataclass
class CampaignResult:
    """Accuracy distribution from one fault configuration.

    ``accuracies`` has one entry per trial; ``flip_counts`` records how
    many bits actually flipped in each trial (Binomial draws vary).
    """

    fault_model: FaultModel
    accuracies: np.ndarray
    flip_counts: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.accuracies.size)

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    @property
    def median(self) -> float:
        return float(np.median(self.accuracies))

    @property
    def min(self) -> float:
        return float(self.accuracies.min())

    @property
    def max(self) -> float:
        return float(self.accuracies.max())

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.accuracies, q))

    def box_stats(self) -> dict[str, float]:
        """Five-number summary backing a Fig. 5-style box plot."""
        return {
            "min": self.min,
            "q1": self.quantile(0.25),
            "median": self.median,
            "q3": self.quantile(0.75),
            "max": self.max,
        }

    def summary(self) -> str:
        return (
            f"{self.fault_model.describe()}: mean={self.mean:.2%} "
            f"median={self.median:.2%} std={self.std:.2%} "
            f"[{self.min:.2%}, {self.max:.2%}] over {self.trials} trials"
        )


@dataclass
class SweepResult:
    """Campaign results across a fault-rate sweep (one Fig. 5/6 panel)."""

    rates: tuple[float, ...]
    results: dict[float, CampaignResult] = field(default_factory=dict)

    def mean_curve(self) -> list[float]:
        """Average accuracy per rate — one line of Fig. 6."""
        return [self.results[rate].mean for rate in self.rates]

    def __getitem__(self, rate: float) -> CampaignResult:
        return self.results[rate]


class FaultCampaign:
    """Run repeated fault-injection trials against a fixed model.

    Parameters
    ----------
    injector:
        A :class:`FaultInjector` wrapping the (quantised) model.
    evaluate:
        Zero-argument closure returning accuracy in [0, 1] of the model in
        its *current* (possibly faulty) state.
    trials:
        Number of independent trials per fault configuration.
    seed:
        Base seed; trial t of configuration c derives its own stream, so
        two campaigns with the same seed see identical fault patterns —
        the paper's protection schemes are compared on equal footing.
    """

    def __init__(
        self,
        injector: FaultInjector,
        evaluate: Callable[[], float],
        trials: int = 20,
        seed: int = 0,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.injector = injector
        self.evaluate = evaluate
        self.trials = int(trials)
        self.seed = int(seed)

    def run(self, fault_model: FaultModel, tag: str = "") -> CampaignResult:
        """Run all trials for one fault configuration."""
        accuracies = np.empty(self.trials, dtype=np.float64)
        flip_counts = np.empty(self.trials, dtype=np.int64)
        for trial in range(self.trials):
            trial_seed = derive_seed(self.seed, "trial", tag, fault_model.describe(), trial)
            sites = self.injector.sample(fault_model, rng=trial_seed)
            with self.injector.inject(sites) as count:
                accuracies[trial] = self.evaluate()
                flip_counts[trial] = count
        result = CampaignResult(fault_model, accuracies, flip_counts)
        _logger.info("campaign %s %s", tag, result.summary())
        return result

    def run_sweep(
        self,
        rates: Sequence[float],
        tag: str = "",
        allowed_bits: tuple[int, ...] | None = None,
        param_filter: Callable[[str], bool] | None = None,
    ) -> SweepResult:
        """Run a campaign at each fault rate (a full Fig. 5/6 panel)."""
        sweep = SweepResult(rates=tuple(rates))
        for rate in rates:
            fault_model = BitFlipFaultModel.at_rate(
                rate, allowed_bits=allowed_bits, param_filter=param_filter
            )
            sweep.results[rate] = self.run(fault_model, tag=tag)
        return sweep
