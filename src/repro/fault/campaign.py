"""Fault-injection campaigns: repeated trials with accuracy collection.

A campaign fixes a model + evaluation closure, then for each fault
configuration runs K independent trials (fresh fault sites each time),
recording the accuracy under fault.  The resulting distributions are the
raw material of the paper's Fig. 5 (distribution) and Fig. 6 (means).

Trials are scheduled through an executor (:mod:`repro.fault.parallel`):
``workers=0`` runs them serially in-process, ``workers=N`` fans them out
over a process pool.  Per-trial seeds are derived up front from the
campaign seed, so both backends produce bit-identical results.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CampaignInterrupted, ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel, FaultModel
from repro.fault.injector import FaultInjector
from repro.fault.parallel import (
    GroupTrialRunner,
    TrialExecutor,
    TrialOutcome,
    TrialRunner,
    TrialWork,
    group_works,
    make_executor,
)
from repro.obs.trace import span
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

if TYPE_CHECKING:
    from repro.store import CampaignStore

__all__ = [
    "AUTO_REPLICAS",
    "CampaignAggregator",
    "CampaignResult",
    "EarlyStop",
    "FaultCampaign",
    "SweepResult",
]

_logger = get_logger("fault.campaign")

#: Replica-group width used by ``replicas="auto"``.  Wide enough to
#: amortise the shared clean-prefix forward, small enough that a pooled
#: executor still has groups to balance across workers.
AUTO_REPLICAS = 8


@dataclass
class CampaignResult:
    """Accuracy distribution from one fault configuration.

    ``accuracies`` has one entry per trial; ``flip_counts`` records how
    many bits actually flipped in each trial (Binomial draws vary).
    """

    fault_model: FaultModel
    accuracies: np.ndarray
    flip_counts: np.ndarray

    @property
    def trials(self) -> int:
        return int(self.accuracies.size)

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    @property
    def median(self) -> float:
        return float(np.median(self.accuracies))

    @property
    def min(self) -> float:
        return float(self.accuracies.min())

    @property
    def max(self) -> float:
        return float(self.accuracies.max())

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.accuracies, q))

    def box_stats(self) -> dict[str, float]:
        """Five-number summary backing a Fig. 5-style box plot."""
        return {
            "min": self.min,
            "q1": self.quantile(0.25),
            "median": self.median,
            "q3": self.quantile(0.75),
            "max": self.max,
        }

    def summary(self) -> str:
        return (
            f"{self.fault_model.describe()}: mean={self.mean:.2%} "
            f"median={self.median:.2%} std={self.std:.2%} "
            f"[{self.min:.2%}, {self.max:.2%}] over {self.trials} trials"
        )


@dataclass
class SweepResult:
    """Campaign results across a fault-rate sweep (one Fig. 5/6 panel)."""

    rates: tuple[float, ...]
    results: dict[float, CampaignResult] = field(default_factory=dict)

    def mean_curve(self) -> list[float]:
        """Average accuracy per rate — one line of Fig. 6."""
        return [self[rate].mean for rate in self.rates]

    def __getitem__(self, rate: float) -> CampaignResult:
        # Raw float equality is too brittle for recomputed rates
        # (3 * 1e-6 != 3e-6); resolve near-misses with isclose.
        result = self.results.get(rate)
        if result is not None:
            return result
        for stored, value in self.results.items():
            if math.isclose(rate, stored, rel_tol=1e-9, abs_tol=0.0):
                return value
        available = ", ".join(f"{r:g}" for r in sorted(self.results))
        raise KeyError(
            f"fault rate {rate:g} not in sweep (available rates: {available})"
        )

    def __contains__(self, rate: float) -> bool:
        try:
            self[rate]
        except KeyError:
            return False
        return True


@dataclass(frozen=True)
class EarlyStop:
    """Stop a campaign once its mean-accuracy CI is tight enough.

    After each trial (in trial-index order — identical on every
    backend), the Student-t confidence interval of the running mean is
    checked; the campaign stops when its half-width drops to
    ``ci_halfwidth`` or below, but never before ``min_trials``.
    """

    ci_halfwidth: float
    confidence: float = 0.95
    min_trials: int = 8

    def __post_init__(self) -> None:
        if self.ci_halfwidth <= 0.0:
            raise ConfigurationError(
                f"ci_halfwidth must be > 0, got {self.ci_halfwidth}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_trials < 2:
            raise ConfigurationError(
                f"min_trials must be >= 2, got {self.min_trials}"
            )


class CampaignAggregator:
    """Streaming accumulator of trial outcomes.

    Consumes :class:`~repro.fault.parallel.TrialOutcome`s as they arrive
    (in trial-index order), keeps running statistics for convergence
    checks, and materialises the final :class:`CampaignResult` arrays.
    """

    def __init__(self) -> None:
        self._accuracies: list[float] = []
        self._flips: list[int] = []

    def add(self, outcome: TrialOutcome) -> None:
        if outcome.index != len(self._accuracies):
            raise ConfigurationError(
                f"out-of-order trial outcome: expected index "
                f"{len(self._accuracies)}, got {outcome.index}"
            )
        self._accuracies.append(outcome.accuracy)
        self._flips.append(outcome.flips)

    @property
    def trials(self) -> int:
        return len(self._accuracies)

    @property
    def mean(self) -> float:
        if not self._accuracies:
            raise ConfigurationError("no trial outcomes aggregated yet")
        return float(np.mean(self._accuracies))

    def ci_halfwidth(self, confidence: float = 0.95) -> float:
        """Half-width of the running mean's Student-t CI (inf below n=2)."""
        if self.trials < 2:
            return math.inf
        from repro.fault.statistics import mean_confidence_interval

        low, high = mean_confidence_interval(self._accuracies, confidence)
        return (high - low) / 2.0

    def converged(self, early_stop: EarlyStop) -> bool:
        return (
            self.trials >= early_stop.min_trials
            and self.ci_halfwidth(early_stop.confidence) <= early_stop.ci_halfwidth
        )

    def result(self, fault_model: FaultModel) -> CampaignResult:
        if not self._accuracies:
            raise ConfigurationError("campaign produced no trial outcomes")
        return CampaignResult(
            fault_model,
            np.asarray(self._accuracies, dtype=np.float64),
            np.asarray(self._flips, dtype=np.int64),
        )


class FaultCampaign:
    """Run repeated fault-injection trials against a fixed model.

    Parameters
    ----------
    injector:
        A :class:`FaultInjector` wrapping the (quantised) model.
    evaluate:
        Zero-argument closure returning accuracy in [0, 1] of the model in
        its *current* (possibly faulty) state.  For ``workers > 1`` under
        a ``spawn`` start method it must be picklable
        (:meth:`repro.eval.Evaluator.bind` is).
    trials:
        Number of independent trials per fault configuration.
    seed:
        Base seed; trial t of configuration c derives its own stream, so
        two campaigns with the same seed see identical fault patterns —
        the paper's protection schemes are compared on equal footing.
    workers:
        Trial-execution backend: ``0``/``1`` runs serially in-process,
        ``N >= 2`` fans trials out over an N-process pool
        (bit-identical results either way).  A ready-made
        :class:`~repro.fault.parallel.TrialExecutor` is also accepted.
    start_method:
        Multiprocessing start method override (``fork``/``spawn``/…).
    shard:
        ``(i, n)`` restricts this campaign instance to trial indices
        ``t % n == i`` — the deterministic partition that lets N hosts
        run disjoint slices of one campaign (each into its own
        :class:`~repro.store.CampaignStore`) and merge the stores into a
        result bit-identical to the unsharded run.  Trial seeds depend
        only on the trial index, never on the shard, so slices compose
        exactly.
    replicas:
        Replica-batched evaluation: ``R >= 2`` schedules trials in
        groups of R lanes whose clean forward work is shared
        (:meth:`ReplicaPlan <repro.runtime.ReplicaPlan>` share-until-
        diverge), requiring ``evaluate`` to expose the
        ``lane_accuracies(injector, site_sets)`` hook
        (:meth:`repro.eval.BoundAccuracy.lane_accuracies`).  ``"auto"``
        picks a default group width when the hook is present and falls
        back to per-trial execution when it is not;
        ``None``/``"off"``/``0``/``1`` forces the per-trial path.
        Either way results are bit-identical — grouping is purely a
        scheduling decision.
    """

    def __init__(
        self,
        injector: FaultInjector,
        evaluate: Callable[[], float],
        trials: int = 20,
        seed: int = 0,
        workers: int | TrialExecutor | None = 0,
        start_method: str | None = None,
        shard: tuple[int, int] | None = None,
        replicas: int | str | None = None,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.injector = injector
        self.evaluate = evaluate
        self.trials = int(trials)
        self.seed = int(seed)
        self.shard = self._validated_shard(shard)
        self.replicas = self._resolved_replicas(replicas, evaluate)
        self.executor = make_executor(workers, start_method=start_method)
        # One runner for the campaign's lifetime: process pools key their
        # worker state on it, so a sweep reuses one pool across rates.
        self._runner = TrialRunner(injector, evaluate)
        self._group_runner = (
            GroupTrialRunner(injector, evaluate) if self.replicas else None
        )

    @staticmethod
    def _resolved_replicas(
        replicas: int | str | None, evaluate: Callable[[], float]
    ) -> int:
        """Resolve the ``replicas`` knob to a group width (0 = per-trial)."""
        if replicas is None or replicas == "off":
            return 0
        has_hook = callable(getattr(evaluate, "lane_accuracies", None))
        if replicas == "auto":
            return AUTO_REPLICAS if has_hook else 0
        try:
            width = int(replicas)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"replicas must be an integer, 'auto', or 'off', "
                f"got {replicas!r}"
            )
        if width < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {width}")
        if width <= 1:
            return 0
        if not has_hook:
            raise ConfigurationError(
                f"replicas={width} requires an evaluation callable with a "
                "lane_accuracies(injector, site_sets) hook "
                "(Evaluator.bind provides one); got "
                f"{type(evaluate).__name__}"
            )
        return width

    @staticmethod
    def _validated_shard(
        shard: tuple[int, int] | None,
    ) -> tuple[int, int] | None:
        if shard is None:
            return None
        try:
            index, count = shard
            index, count = int(index), int(count)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"shard must be an (index, count) pair, got {shard!r}"
            )
        if count < 1 or not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must satisfy 0 <= index < count, "
                f"got ({index}, {count})"
            )
        return (index, count)

    @property
    def workers(self) -> int:
        """Worker processes behind this campaign (0 = serial)."""
        return self.executor.workers

    def close(self) -> None:
        """Release pooled workers (serial campaigns: no-op)."""
        self.executor.shutdown()

    def __enter__(self) -> "FaultCampaign":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def trial_plan(self) -> list[int]:
        """Trial indices this campaign instance runs, in consumption order.

        The full range without ``shard``; the shard's deterministic
        slice (``t % n == i``) with it.
        """
        if self.shard is None:
            return list(range(self.trials))
        index, count = self.shard
        return list(range(index, self.trials, count))

    def trial_seeds(self, fault_model: FaultModel, tag: str = "") -> list[int]:
        """Derive every trial's seed up front (the determinism contract).

        Seeds depend only on ``(seed, tag, fault_model.describe(), t)``
        — never on scheduling — so any executor reproduces the serial
        fault patterns exactly.
        """
        return [
            derive_seed(self.seed, "trial", tag, fault_model.describe(), trial)
            for trial in range(self.trials)
        ]

    def _site_metadata(self, sites) -> list[tuple[int, int]]:
        """Applied-site ``(layer, bit)`` pairs for the store journal.

        Injectors without the hook (custom fault spaces) journal trials
        without site attribution — resume still works, the atlas just
        has nothing to aggregate for them.
        """
        metadata = getattr(self.injector, "site_metadata", None)
        if metadata is None:
            return []
        return metadata(sites)

    def _sampled_works(
        self, fault_model: FaultModel, tag: str, indices: Sequence[int]
    ) -> list[TrialWork]:
        """Sample fault sites for exactly ``indices``, in the parent.

        Each trial's seed is independent, so any subset — a resume's
        missing tail, a coord worker's claimed range — skips the
        fault-space-sized sampling of every other trial, and workers
        only ever see concrete site arrays: fault models (with their
        possibly unpicklable ``param_filter``s) never cross a process
        boundary.
        """
        seeds = self.trial_seeds(fault_model, tag)
        return [
            TrialWork(
                index=trial,
                sites=self.injector.sample(fault_model, rng=seeds[trial]),
            )
            for trial in indices
        ]

    def _dispatch(self, pending: Sequence[TrialWork]) -> Iterator[TrialOutcome]:
        """Hand works to the executor, streaming outcomes in index order.

        The replica-batched path groups consecutive works into lanes of
        one shared-forward evaluation; the flattened stream keeps trial
        order, so consumers (journal, early stop, aggregation) are
        oblivious — and bit-identical to the per-trial stream.
        """
        if not pending:
            return iter(())
        if self._group_runner is not None:
            groups = group_works(pending, self.replicas)
            return self.executor.run_groups(self._group_runner, groups)
        return self.executor.run_trials(self._runner, pending)

    def iter_range(
        self,
        fault_model: FaultModel,
        indices: Sequence[int],
        tag: str = "",
    ) -> Iterator[tuple[TrialOutcome, list[tuple[int, int]]]]:
        """Evaluate exactly ``indices`` of one configuration, streaming.

        The coordination layer's entry point (:mod:`repro.coord`): a
        worker that claimed a dynamic trial range evaluates just that
        range.  Yields ``(outcome, sites)`` pairs in ascending trial
        order — ``sites`` being the journal-ready applied-site metadata
        :meth:`run` records — with duplicates collapsed.  Trial seeds
        depend only on the trial index, never on scheduling, so any
        partition of the trial space (static shards, stolen ranges, a
        serial run) produces bit-identical per-trial results.

        Closing the generator early (a lost fence check, a worker
        shutting down) closes the executor stream, which terminates any
        speculative pooled work.
        """
        plan = sorted({int(trial) for trial in indices})
        if plan and not 0 <= plan[0] <= plan[-1] < self.trials:
            raise ConfigurationError(
                f"trial indices must lie in [0, {self.trials}), "
                f"got {plan[0]}..{plan[-1]}"
            )
        pending = self._sampled_works(fault_model, tag, plan)
        outcomes = self._dispatch(pending)
        try:
            for work in pending:
                outcome = next(outcomes)
                if outcome.index != work.index:
                    raise ConfigurationError(
                        f"executor yielded trial {outcome.index} where "
                        f"{work.index} was scheduled"
                    )
                yield outcome, self._site_metadata(work.sites)
            sentinel = object()
            if next(outcomes, sentinel) is not sentinel:
                raise ConfigurationError(
                    "executor yielded more outcomes than scheduled works"
                )
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()

    def run(
        self,
        fault_model: FaultModel,
        tag: str = "",
        early_stop: EarlyStop | None = None,
        store: "CampaignStore | None" = None,
    ) -> CampaignResult:
        """Run all trials for one fault configuration.

        With ``early_stop``, trials are consumed in index order and the
        campaign stops as soon as the accuracy CI converges; because the
        decision stream is order-deterministic, serial and parallel runs
        stop after the same trial with identical results.

        With ``store``, every fresh outcome is journaled to disk as it
        completes (both executors stream through this loop), and trials
        the store already holds are *replayed* from the journal instead
        of re-evaluated — an interrupted campaign resumed against its
        store is bit-identical to an uninterrupted run, because trial
        seeds are schedule-independent and journaled floats round-trip
        exactly.  A configuration the store marks as EarlyStop-converged
        is never re-opened: its journaled trials are replayed and the
        same converged result returned without any evaluation.
        """
        with span("campaign.config", tag=tag, trials=self.trials):
            return self._run(fault_model, tag, early_stop, store)

    def _run(
        self,
        fault_model: FaultModel,
        tag: str,
        early_stop: EarlyStop | None,
        store: "CampaignStore | None",
    ) -> CampaignResult:
        if early_stop is not None and self.shard is not None:
            raise ConfigurationError(
                "early_stop cannot be combined with shard: CI convergence "
                "consumes the full in-order trial stream, which no single "
                "shard sees"
            )
        plan = self.trial_plan()
        key: str | None = None
        journal: dict[int, TrialOutcome] = {}
        if store is not None:
            key = store.open_config(fault_model, tag=tag)
            journal = store.journaled(key)
            converged_at = store.converged_at(key)
            if converged_at is not None:
                plan = [trial for trial in plan if trial < converged_at]
                absent = [trial for trial in plan if trial not in journal]
                if absent:
                    raise ConfigurationError(
                        f"store marks config {key!r} converged after "
                        f"{converged_at} trials but its journal is missing "
                        f"{len(absent)} of them"
                    )
        missing = [trial for trial in plan if trial not in journal]
        budget: int | None = None
        if store is not None:
            # Don't evaluate what the budget forbids journaling: cap the
            # dispatched works so a pooled executor never burns cores on
            # over-budget speculative trials, and raise *before* the
            # first un-journalable evaluation instead of after it.
            budget = store.remaining_budget()
            if budget is not None:
                missing = missing[:budget]
        pending = self._sampled_works(fault_model, tag, missing)
        works = {work.index: work for work in pending}
        aggregator = CampaignAggregator()
        outcomes = self._dispatch(pending)
        stopped_early = False
        try:
            fresh = 0
            for position, trial in enumerate(plan):
                outcome = journal.get(trial)
                if outcome is None:
                    if budget is not None and fresh >= budget:
                        raise CampaignInterrupted(
                            f"store reached its new-trial budget before "
                            f"trial {trial}; resume to continue"
                        )
                    outcome = next(outcomes)
                    fresh += 1
                    if outcome.index != trial:
                        raise ConfigurationError(
                            f"executor yielded trial {outcome.index} where "
                            f"{trial} was scheduled"
                        )
                    if store is not None and key is not None:
                        store.record(
                            key, outcome, self._site_metadata(works[trial].sites)
                        )
                if outcome.index != position:
                    # Sharded plans skip indices; the aggregator consumes
                    # a dense stream, so renumber to the slice position.
                    outcome = replace(outcome, index=position)
                aggregator.add(outcome)
                if early_stop is not None and aggregator.converged(early_stop):
                    if store is not None and key is not None:
                        store.mark_converged(key, aggregator.trials)
                    _logger.info(
                        "campaign %s converged after %d/%d trials "
                        "(CI half-width <= %g)",
                        tag,
                        aggregator.trials,
                        self.trials,
                        early_stop.ci_halfwidth,
                    )
                    stopped_early = True
                    break
            if not stopped_early and pending:
                # Step the stream past its last yield so the executor
                # observes normal completion (a pooled executor would
                # otherwise terminate its still-warm worker pool).
                sentinel = object()
                if next(outcomes, sentinel) is not sentinel:
                    raise ConfigurationError(
                        "executor yielded more outcomes than scheduled works"
                    )
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
        result = aggregator.result(fault_model)
        _logger.info("campaign %s %s", tag, result.summary())
        return result

    def run_sweep(
        self,
        rates: Sequence[float],
        tag: str = "",
        allowed_bits: tuple[int, ...] | None = None,
        param_filter: Callable[[str], bool] | None = None,
        early_stop: EarlyStop | None = None,
        store: "CampaignStore | None" = None,
    ) -> SweepResult:
        """Run a campaign at each fault rate (a full Fig. 5/6 panel)."""
        sweep = SweepResult(rates=tuple(rates))
        fault_models = [
            BitFlipFaultModel.at_rate(
                rate, allowed_bits=allowed_bits, param_filter=param_filter
            )
            for rate in rates
        ]
        if store is not None:
            # Register the whole sweep in the manifest before any trial
            # runs: a campaign killed between rates then shows the later
            # configurations as missing work, not as a complete store.
            for fault_model in fault_models:
                store.open_config(fault_model, tag=tag)
        for rate, fault_model in zip(rates, fault_models):
            sweep.results[rate] = self.run(
                fault_model, tag=tag, early_stop=early_stop, store=store
            )
        return sweep
