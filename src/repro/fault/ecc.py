"""SEC-DED ECC memory: the classic hardware comparator for FitAct.

The paper's related work (§II-A) cites Error Correction Codes as the
traditional redundancy-based protection for DNN parameter memories.
This module models a per-word Hamming SEC-DED code (Single Error
Correct, Double Error Detect — e.g. Hamming(39,32) for 32-bit data) so
experiments can compare FitAct against ECC and against the two
*composed* (bench EXT-E).

Model
-----
Every parameter word is stored as a codeword of ``data_bits`` data bits
plus ``parity_bits`` check bits.  Raw faults strike every codeword bit
independently (the paper's uniform model applied to the *physical*
memory, which is ``total_bits/data_bits`` ≈ 1.22× larger — ECC's
storage overhead).  Per codeword, the decoder sees k raw flips:

- k = 1 → corrected: no data corruption;
- k = 2 → detected but uncorrectable: the system either passes the
  word through (``double_policy="pass"``) or supplies zeros
  (``"zero"``, i.e. a detected-error response that blanks the word);
- k ≥ 3 → *escapes*: syndrome aliases to a legal-looking state.  The
  decoder applies its (wrong) single-bit "correction", modelled as one
  extra flip at a uniformly random codeword position
  (``miscorrect=True``), on top of the raw data flips.

Parity-bit flips corrupt no data themselves but consume the code's
correction budget — a data flip paired with a parity flip in the same
word is an uncorrectable double error.  The model tracks parity hits
for exactly this interaction.

:class:`ECCProtectedInjector` wraps a plain :class:`FaultInjector` with
this filter and exposes the same ``sample``/``inject`` surface, so any
campaign can run against ECC-protected memory unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel, FaultModel
from repro.fault.injector import FaultInjector
from repro.fault.sites import FaultSites, sample_sites
from repro.nn.module import Module
from repro.quant.fixed_point import FixedPointFormat, Q15_16
from repro.utils.rng import new_rng

__all__ = [
    "ECCOutcome",
    "ECCProtectedInjector",
    "SECDEDCode",
    "ecc_memory_bytes",
]

_DOUBLE_POLICIES = ("pass", "zero")


@dataclass(frozen=True)
class SECDEDCode:
    """A per-word Hamming SEC-DED code over ``data_bits`` data bits."""

    data_bits: int = 32

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ConfigurationError(
                f"data_bits must be >= 1, got {self.data_bits}"
            )

    @property
    def parity_bits(self) -> int:
        """Check bits: smallest r with 2^r ≥ data + r + 1, plus the
        overall-parity bit that upgrades SEC to SEC-DED."""
        r = 1
        while (1 << r) < self.data_bits + r + 1:
            r += 1
        return r + 1

    @property
    def total_bits(self) -> int:
        """Codeword width (Hamming(39, 32) for 32-bit data)."""
        return self.data_bits + self.parity_bits

    @property
    def storage_overhead(self) -> float:
        """Extra memory fraction ECC costs (≈ 0.219 for 32-bit words)."""
        return self.parity_bits / self.data_bits

    def __str__(self) -> str:
        return f"SEC-DED({self.total_bits},{self.data_bits})"


@dataclass
class ECCOutcome:
    """What the decoder did with one trial's raw faults."""

    raw_flips: int = 0
    corrected_words: int = 0
    detected_words: int = 0
    escaped_words: int = 0
    zeroed_words: int = 0
    miscorrections: int = 0

    def merge(self, other: "ECCOutcome") -> None:
        """Accumulate another outcome (campaign-level statistics)."""
        self.raw_flips += other.raw_flips
        self.corrected_words += other.corrected_words
        self.detected_words += other.detected_words
        self.escaped_words += other.escaped_words
        self.zeroed_words += other.zeroed_words
        self.miscorrections += other.miscorrections

    def summary(self) -> str:
        return (
            f"raw flips {self.raw_flips}: corrected {self.corrected_words} "
            f"words, detected {self.detected_words}, escaped "
            f"{self.escaped_words} (miscorrections {self.miscorrections}, "
            f"zeroed {self.zeroed_words})"
        )


def ecc_memory_bytes(
    module: Module, code: SECDEDCode | None = None, fmt: FixedPointFormat = Q15_16
) -> int:
    """Parameter memory footprint in bytes including ECC check bits.

    The EXT-E comparison point for Table I-style accounting: FitAct's
    λ words versus ECC's parity bits.
    """
    code = code or SECDEDCode(fmt.total_bits)
    total_words = sum(int(np.prod(p.shape)) for p in module.parameters())
    return int(round(total_words * code.total_bits / 8.0))


class ECCProtectedInjector:
    """A :class:`FaultInjector` view of SEC-DED-protected memory.

    Exposes the campaign-facing injector surface (``sample``, ``inject``,
    ``total_bits``); raw faults are drawn over the *codeword* bit space
    and filtered through the decoder before touching parameters.

    Parameters
    ----------
    injector:
        The plain injector over the underlying (quantised) model.
    code:
        The SEC-DED code; defaults to the format-matched width
        (Hamming(39,32) for Q15.16).
    double_policy:
        Decoder response to detected-uncorrectable words: ``"pass"``
        leaves the corrupted data in place, ``"zero"`` blanks the word.
    miscorrect:
        Whether ≥3-flip words suffer the decoder's bogus single-bit
        "correction" (one extra uniformly placed flip).
    """

    def __init__(
        self,
        injector: FaultInjector,
        code: SECDEDCode | None = None,
        double_policy: str = "pass",
        miscorrect: bool = True,
    ) -> None:
        if double_policy not in _DOUBLE_POLICIES:
            raise ConfigurationError(
                f"double_policy must be one of {_DOUBLE_POLICIES}, "
                f"got {double_policy!r}"
            )
        self.injector = injector
        self.code = code or SECDEDCode(injector.fmt.total_bits)
        if self.code.data_bits != injector.fmt.total_bits:
            raise ConfigurationError(
                f"code data width {self.code.data_bits} does not match the "
                f"injector's {injector.fmt.total_bits}-bit words"
            )
        self.double_policy = double_policy
        self.miscorrect = miscorrect
        self.last_outcome: ECCOutcome = ECCOutcome()
        self.lifetime_outcome: ECCOutcome = ECCOutcome()

    # ------------------------------------------------------------------
    # Injector surface (campaign-compatible)
    # ------------------------------------------------------------------
    @property
    def fmt(self) -> FixedPointFormat:
        return self.injector.fmt

    @property
    def total_words(self) -> int:
        return self.injector.total_words

    @property
    def total_bits(self) -> int:
        """Physical bit count — codeword bits, including parity storage."""
        return self.injector.total_words * self.code.total_bits

    def refresh(self) -> None:
        self.injector.refresh()

    def sample(
        self,
        fault_model: BitFlipFaultModel | FaultModel,
        rng: np.random.Generator | int | None = None,
    ) -> FaultSites:
        """Raw faults over codeword bits, decoded down to data flips.

        Only uniform :class:`BitFlipFaultModel` configurations are
        meaningful here (the decoder model assumes independent raw hits);
        ``allowed_bits`` restrictions apply to data bits, while parity
        bits are always eligible.
        """
        if not isinstance(fault_model, BitFlipFaultModel):
            raise ConfigurationError(
                "ECCProtectedInjector models uniform bit-flip faults; got "
                f"{type(fault_model).__name__}"
            )
        rng = new_rng(rng)
        raw = self._sample_codeword_sites(fault_model, rng)
        effective, outcome = self._decode(raw, rng)
        self.last_outcome = outcome
        self.lifetime_outcome.merge(outcome)
        return effective

    def inject(self, sites: FaultSites) -> Iterator[int]:
        """Delegate to the wrapped injector (sites are already decoded)."""
        return self.injector.inject(sites)

    def apply(self, sites: FaultSites) -> int:
        return self.injector.apply(sites)

    def restore(self) -> None:
        self.injector.restore()

    # ------------------------------------------------------------------
    # Decoder model
    # ------------------------------------------------------------------
    def _sample_codeword_sites(
        self, fault_model: BitFlipFaultModel, rng: np.random.Generator
    ) -> FaultSites:
        """Uniform raw hits over the physical (codeword) bit space."""
        data_bits = self.code.data_bits
        if fault_model.allowed_bits is None:
            allowed = None
        else:
            # Data-bit restriction plus every parity position.
            allowed = tuple(
                sorted(
                    set(fault_model.allowed_bits)
                    | set(range(data_bits, self.code.total_bits))
                )
            )
        if fault_model.param_filter is not None:
            # Respect name filtering by sampling through the inner
            # injector's restricted space: one draw for data-bit hits, a
            # second (rate-scaled) draw whose word positions stand in for
            # uniformly placed parity hits over the same filtered words.
            data_model = BitFlipFaultModel(
                fault_rate=fault_model.fault_rate,
                n_flips=fault_model.n_flips,
                allowed_bits=fault_model.allowed_bits,
                param_filter=fault_model.param_filter,
            )
            data_sites = self.injector.sample(data_model, rng=rng)
            parity_fraction = self.code.parity_bits / data_bits
            if fault_model.fault_rate is not None:
                parity_model = BitFlipFaultModel(
                    fault_rate=min(1.0, fault_model.fault_rate * parity_fraction),
                    param_filter=fault_model.param_filter,
                )
            else:
                parity_model = BitFlipFaultModel(
                    n_flips=int(round(fault_model.n_flips * parity_fraction)),
                    param_filter=fault_model.param_filter,
                )
            parity_sites = self.injector.sample(parity_model, rng=rng)
            parity_bits = rng.integers(
                data_bits,
                self.code.total_bits,
                size=len(parity_sites),
                dtype=np.int64,
            )
            words = np.concatenate(
                [data_sites.word_positions, parity_sites.word_positions]
            )
            bits = np.concatenate([data_sites.bit_positions, parity_bits])
            return FaultSites(words, bits)
        return sample_sites(
            rng,
            total_words=self.injector.total_words,
            word_bits=self.code.total_bits,
            fault_rate=fault_model.fault_rate,
            n_flips=fault_model.n_flips,
            allowed_bits=allowed,
        )

    def _decode(
        self, raw: FaultSites, rng: np.random.Generator
    ) -> tuple[FaultSites, ECCOutcome]:
        """Apply SEC-DED semantics per word; return effective data flips."""
        outcome = ECCOutcome(raw_flips=len(raw))
        if len(raw) == 0:
            return FaultSites.empty(), outcome
        data_bits = self.code.data_bits
        words = raw.word_positions
        bits = raw.bit_positions
        unique_words, inverse, counts = np.unique(
            words, return_inverse=True, return_counts=True
        )
        hits_per_word = counts[inverse]

        keep_words: list[np.ndarray] = []
        keep_bits: list[np.ndarray] = []

        # k == 1 → corrected (nothing reaches the data).
        outcome.corrected_words = int(np.sum(counts == 1))

        # k == 2 → detected; policy decides.
        double_mask = hits_per_word == 2
        double_words = np.unique(words[double_mask])
        outcome.detected_words = int(double_words.size)
        if self.double_policy == "pass":
            data_mask = double_mask & (bits < data_bits)
            keep_words.append(words[data_mask])
            keep_bits.append(bits[data_mask])
        else:  # "zero": blank each detected word.
            zero_sites = self._zeroing_flips(double_words)
            keep_words.append(zero_sites.word_positions)
            keep_bits.append(zero_sites.bit_positions)
            outcome.zeroed_words = int(double_words.size)

        # k >= 3 → escape; data flips pass, plus an optional miscorrection.
        escape_mask = hits_per_word >= 3
        escaped_words = np.unique(words[escape_mask])
        outcome.escaped_words = int(escaped_words.size)
        data_mask = escape_mask & (bits < data_bits)
        keep_words.append(words[data_mask])
        keep_bits.append(bits[data_mask])
        if self.miscorrect and escaped_words.size:
            bogus_bits = rng.integers(
                0, self.code.total_bits, size=escaped_words.size, dtype=np.int64
            )
            in_data = bogus_bits < data_bits
            keep_words.append(escaped_words[in_data])
            keep_bits.append(bogus_bits[in_data])
            outcome.miscorrections = int(escaped_words.size)

        all_words = np.concatenate(keep_words) if keep_words else np.empty(0, np.int64)
        all_bits = np.concatenate(keep_bits) if keep_bits else np.empty(0, np.int64)
        if all_words.size == 0:
            return FaultSites.empty(), outcome
        # XOR semantics collapse duplicate (word, bit) pairs in pairs; a
        # miscorrection landing on an already-flipped bit *repairs* it,
        # which is physically right (the decoder flipped it back).
        keys = all_words * np.int64(256) + all_bits
        keys, key_counts = np.unique(keys, return_counts=True)
        keys = keys[key_counts % 2 == 1]
        return FaultSites(keys >> np.int64(8), keys & np.int64(255)), outcome

    def _zeroing_flips(self, word_positions: np.ndarray) -> FaultSites:
        """Flip sites that turn each given word's current value into 0."""
        if word_positions.size == 0:
            return FaultSites.empty()
        values = self.injector.word_values(word_positions)
        fmt = self.injector.fmt
        modulus = np.int64(1) << np.int64(fmt.total_bits)
        unsigned = np.where(values < 0, values + modulus, values).astype(np.uint64)
        out_words: list[int] = []
        out_bits: list[int] = []
        for word, pattern in zip(word_positions, unsigned):
            bit = 0
            remaining = int(pattern)
            while remaining:
                if remaining & 1:
                    out_words.append(int(word))
                    out_bits.append(bit)
                remaining >>= 1
                bit += 1
        return FaultSites(
            np.asarray(out_words, dtype=np.int64),
            np.asarray(out_bits, dtype=np.int64),
        )
