"""Fault model descriptions.

The paper's model (§VI-A2): random bit-flips distributed uniformly over
the memory words holding model parameters — weights, biases, and the
activation-function parameters λ — at per-bit fault rates from 1e-7 to
3e-5.  :class:`BitFlipFaultModel` captures one such configuration;
restricting ``allowed_bits`` or ``param_filter`` expresses the targeted
campaigns (Fig. 1 injects only into the first two layers; the
bit-position ablation flips one bit index at a time).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = ["BitFlipFaultModel", "FaultModel", "PAPER_FAULT_RATES"]


class FaultModel(Protocol):
    """What a campaign needs from any fault model.

    :class:`BitFlipFaultModel` is sampled natively by the injector; every
    other model (stuck-at, burst, …) additionally provides a
    ``sample_sites(injector, rng)`` hook that the injector dispatches to.
    ``describe`` feeds logs and the campaign's per-trial seed derivation,
    so it must be deterministic.
    """

    def describe(self) -> str:
        """Deterministic one-line description (logs + seed derivation)."""
        ...

PAPER_FAULT_RATES: tuple[float, ...] = (1e-7, 1e-6, 3e-6, 1e-5, 3e-5)
"""The five fault rates of the paper's evaluation (Figs. 5 and 6)."""


@dataclass(frozen=True)
class BitFlipFaultModel:
    """Configuration of one bit-flip fault scenario.

    Exactly one of ``fault_rate`` (per-bit flip probability; flip count is
    Binomial over the fault space) or ``n_flips`` (exact count) must be
    set.

    Parameters
    ----------
    fault_rate:
        Per-bit flip probability.
    n_flips:
        Exact number of distinct bit flips per trial.
    allowed_bits:
        Restrict flips to these bit indices within the word (None = all).
        Bit 0 is the fraction LSB; the top bit is the sign.
    param_filter:
        Predicate over dotted parameter names selecting the fault space
        subset (None = every parameter).
    """

    fault_rate: float | None = None
    n_flips: int | None = None
    allowed_bits: tuple[int, ...] | None = None
    param_filter: Callable[[str], bool] | None = None

    def __post_init__(self) -> None:
        if (self.fault_rate is None) == (self.n_flips is None):
            raise ConfigurationError(
                "specify exactly one of fault_rate or n_flips"
            )
        if self.fault_rate is not None and not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if self.n_flips is not None and self.n_flips < 0:
            raise ConfigurationError(f"n_flips must be >= 0, got {self.n_flips}")
        if self.allowed_bits is not None:
            if len(self.allowed_bits) == 0:
                raise ConfigurationError("allowed_bits must not be empty")
            if len(set(self.allowed_bits)) != len(self.allowed_bits):
                raise ConfigurationError("allowed_bits contains duplicates")

    @classmethod
    def at_rate(cls, fault_rate: float, **kwargs: object) -> "BitFlipFaultModel":
        """Uniform random flips at a per-bit probability (the paper's model)."""
        return cls(fault_rate=fault_rate, **kwargs)

    @classmethod
    def exact(cls, n_flips: int, **kwargs: object) -> "BitFlipFaultModel":
        """Exactly ``n_flips`` distinct flips per trial (targeted studies)."""
        return cls(n_flips=n_flips, **kwargs)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        if self.fault_rate is not None:
            base = f"rate={self.fault_rate:g}"
        else:
            base = f"n_flips={self.n_flips}"
        if self.allowed_bits is not None:
            base += f", bits={list(self.allowed_bits)}"
        if self.param_filter is not None:
            base += ", filtered"
        return base
