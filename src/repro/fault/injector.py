"""Parameter-memory fault injector.

The injector views a model's parameters as one flat array of fixed-point
words (the fault space), flips sampled bits, and restores the exact
pre-fault values afterwards.  It is the offline stand-in for the paper's
PyTorch-based fault-injection tool (§VI-A2).

Typical use::

    injector = FaultInjector(model)           # model already quantised
    model_spec = BitFlipFaultModel.at_rate(1e-5)
    with injector.inject(injector.sample(model_spec, rng)):
        accuracy = evaluate(model, test_loader)
    # parameters are bit-exact restored here
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.sites import FaultSites, sample_sites
from repro.nn.module import Module, invalidate_runtime_plans
from repro.nn.parameter import Parameter
from repro.quant.fixed_point import FixedPointFormat, Q15_16, decode, encode, flip_bits
from repro.utils.rng import new_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Flip bits in a module's parameter memory and restore them.

    Parameters
    ----------
    module:
        The model whose parameters form the fault space.  Quantise it
        first (:func:`repro.quant.quantize_module`) so the encode/decode
        round trip is exact.
    fmt:
        Fixed-point word format (default the paper's Q15.16).

    Notes
    -----
    The injector snapshots encoded words at construction.  If parameters
    change afterwards (e.g. post-training), call :meth:`refresh`.
    """

    def __init__(self, module: Module, fmt: FixedPointFormat = Q15_16) -> None:
        self.module = module
        self.fmt = fmt
        self._names: list[str] = []
        self._params: list[Parameter] = []
        self._words: list[np.ndarray] = []
        self._clean: list[np.ndarray] = []
        self._offsets: np.ndarray = np.empty(0, dtype=np.int64)
        self._active = False
        self.refresh()

    # ------------------------------------------------------------------
    # Fault-space bookkeeping
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Re-snapshot parameter memory (after any parameter update)."""
        if self._active:
            raise ConfigurationError("cannot refresh while faults are injected")
        self._names = []
        self._params = []
        self._words = []
        self._clean = []
        sizes = []
        for name, param in self.module.named_parameters():
            words = encode(param.data, self.fmt)
            self._names.append(name)
            self._params.append(param)
            self._words.append(words)
            self._clean.append(self._clean_array(words, param))
            sizes.append(words.size)
        if not sizes:
            raise ConfigurationError("module has no parameters to inject into")
        self._offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

    def _clean_array(self, words: np.ndarray, param: Parameter) -> np.ndarray:
        """One canonical, read-only clean array in the parameter's shape.

        :meth:`restore` rebinds ``param.data`` to this *same object*
        every time, which keeps restores copy-free and keeps compiled
        plans' identity signatures stable across inject/restore cycles
        (the :class:`repro.runtime.ReplicaPlan` snapshot cache keys on
        them).  Read-only because every sanctioned mutation path rebinds
        ``param.data`` rather than writing through it — an in-place
        write to the canonical clean state would silently corrupt every
        later restore, so it fails loudly instead.
        """
        clean = decode(words, self.fmt).reshape(param.shape)
        clean.flags.writeable = False
        return clean

    # ------------------------------------------------------------------
    # Pickling (worker-pool transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Snapshot for worker transport: encoded words only.

        The decoded clean copies are redundant with ``_words`` (decode
        is deterministic), so dropping them roughly halves the payload a
        spawn-based pool must pickle per worker.  An injector with
        faults applied has no well-defined remote state — refuse.
        """
        if self._active:
            raise ConfigurationError(
                "cannot pickle an injector while faults are injected; "
                "restore first"
            )
        state = self.__dict__.copy()
        state["_clean"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._clean = [
            self._clean_array(words, param)
            for words, param in zip(self._words, self._params)
        ]

    @property
    def total_words(self) -> int:
        """Number of parameter words in the full fault space."""
        return int(self._offsets[-1])

    @property
    def total_bits(self) -> int:
        """Number of bits in the full fault space."""
        return self.total_words * self.fmt.total_bits

    @property
    def parameter_names(self) -> list[str]:
        return list(self._names)

    @property
    def parameters(self) -> list[Parameter]:
        """Live parameter objects, aligned with :attr:`parameter_names`.

        The hook :func:`repro.runtime.fault_parameters` uses to map
        fault sites to the parameters they land in (replica-batched
        evaluation bounds each lane's divergence step with it).
        """
        return list(self._params)

    @property
    def parameter_words(self) -> list[int]:
        """Per-parameter fault-space word counts (:attr:`parameter_names` order).

        Campaign stores persist these so the vulnerability atlas can
        normalise raw per-layer SDC rates by each layer's fault-space
        size into per-bit vulnerability densities.
        """
        sizes = self._offsets[1:] - self._offsets[:-1]
        return [int(size) for size in sizes]

    def fingerprint(self) -> str:
        """Stable digest of the clean fault space (campaign-store identity).

        Hashes the parameter names, word format, and every clean encoded
        word, so two injectors fingerprint equal iff faults would land in
        bit-identical memory — the guard that keeps a resumed campaign
        store from mixing trials of different models or checkpoints.
        """
        digest = hashlib.sha256()
        digest.update(str(self.fmt).encode("utf-8"))
        for name, words in zip(self._names, self._words):
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(np.ascontiguousarray(words).tobytes())
            digest.update(b"\0")
        return f"sha256:{digest.hexdigest()}"

    def site_metadata(self, sites: FaultSites) -> list[tuple[int, int]]:
        """``(parameter_index, bit_position)`` per site, in site order.

        The per-trial applied-site record campaign stores journal for
        the vulnerability atlas: parameter indices refer to
        :attr:`parameter_names`, bit positions to the word format's bit
        numbering (0 = fraction LSB).
        """
        positions, bits = self._validated_sites(sites)
        if positions.size == 0:
            return []
        owner = np.searchsorted(self._offsets, positions, side="right") - 1
        return [(int(o), int(b)) for o, b in zip(owner, bits)]

    def count_words(self, param_filter: "Callable[[str], bool] | None" = None) -> int:
        """Number of fault-space words, optionally under a name filter."""
        if param_filter is None:
            return self.total_words
        sizes = self._offsets[1:] - self._offsets[:-1]
        return int(
            sum(
                size
                for name, size in zip(self._names, sizes)
                if param_filter(name)
            )
        )

    def _selection(self, fault_model: BitFlipFaultModel) -> np.ndarray:
        """Indices of parameters included by the model's name filter."""
        if fault_model.param_filter is None:
            return np.arange(len(self._names))
        selected = [
            i for i, name in enumerate(self._names) if fault_model.param_filter(name)
        ]
        if not selected:
            raise ConfigurationError(
                "param_filter selected no parameters; fault space is empty"
            )
        return np.asarray(selected, dtype=np.int64)

    # ------------------------------------------------------------------
    # Sampling and injection
    # ------------------------------------------------------------------
    def sample(
        self,
        fault_model: BitFlipFaultModel,
        rng: np.random.Generator | int | None = None,
    ) -> FaultSites:
        """Draw fault sites for one trial under ``fault_model``.

        Positions returned are *global* word indices into the full fault
        space, even when a ``param_filter`` restricts sampling.

        Extension fault models (stuck-at, burst, …) implement a
        ``sample_sites(injector, rng)`` hook and are dispatched to it, so
        campaigns treat every model uniformly.
        """
        rng = new_rng(rng)
        if not isinstance(fault_model, BitFlipFaultModel):
            sampler = getattr(fault_model, "sample_sites", None)
            if sampler is None:
                raise ConfigurationError(
                    f"{type(fault_model).__name__} is not a fault model: it has "
                    "no sample_sites(injector, rng) hook"
                )
            return sampler(self, rng)
        selected = self._selection(fault_model)
        sizes = self._offsets[1:] - self._offsets[:-1]
        sub_sizes = sizes[selected]
        sub_total = int(sub_sizes.sum())
        sites = sample_sites(
            rng,
            total_words=sub_total,
            word_bits=self.fmt.total_bits,
            fault_rate=fault_model.fault_rate,
            n_flips=fault_model.n_flips,
            allowed_bits=fault_model.allowed_bits,
        )
        if len(sites) == 0:
            return sites
        # Map positions in the restricted space back to global indices.
        sub_offsets = np.concatenate([[0], np.cumsum(sub_sizes)]).astype(np.int64)
        owner = np.searchsorted(sub_offsets, sites.word_positions, side="right") - 1
        local = sites.word_positions - sub_offsets[owner]
        global_positions = self._offsets[selected[owner]] + local
        return FaultSites(global_positions, sites.bit_positions)

    def _validated_sites(self, sites: FaultSites) -> tuple[np.ndarray, np.ndarray]:
        """Bounds-checked (word, bit) position arrays for ``sites``."""
        positions = np.asarray(sites.word_positions, dtype=np.int64)
        bits = np.asarray(sites.bit_positions, dtype=np.int64)
        if positions.size == 0:
            return positions, bits
        if positions.min() < 0 or positions.max() >= self.total_words:
            raise ConfigurationError("site word position outside the fault space")
        if bits.min() < 0 or bits.max() >= self.fmt.total_bits:
            raise ConfigurationError(
                f"site bit index out of range for {self.fmt} "
                f"(0..{self.fmt.total_bits - 1})"
            )
        return positions, bits

    def apply(self, sites: FaultSites) -> int:
        """Flip the given sites in-place.  Returns the number of flips.

        Sites are bounds-checked before any parameter is touched, and a
        failure mid-apply restores the clean state — ``apply`` either
        succeeds completely or leaves the model untouched and inactive.

        Prefer the :meth:`inject` context manager, which guarantees
        restoration; ``apply``/``restore`` exist for tests and for
        studying persistent faults.
        """
        if self._active:
            raise ConfigurationError("faults already injected; restore first")
        positions, bits = self._validated_sites(sites)
        self._active = True
        if len(sites) == 0:
            return 0
        try:
            order = np.argsort(positions)
            positions = positions[order]
            bits = bits[order]
            owner = np.searchsorted(self._offsets, positions, side="right") - 1
            for index in np.unique(owner):
                mask = owner == index
                local = positions[mask] - self._offsets[index]
                faulty = flip_bits(self._words[index], local, bits[mask], self.fmt)
                param = self._params[index]
                param.data = decode(faulty, self.fmt).reshape(param.shape)
        except BaseException:
            self.restore()
            raise
        # Compiled inference plans cache BatchNorm-folded constants;
        # signal them so the flipped bits are visible in the very next
        # runtime forward.
        invalidate_runtime_plans(self.module)
        return len(sites)

    def canonical_clean(self) -> bool:
        """Whether live parameters hold exactly their canonical clean values.

        The replica-batched evaluation fast path
        (:meth:`repro.eval.Evaluator.lane_accuracies`) shares one clean
        forward across lanes; that is only bit-identical to the
        per-trial path when the model's current state equals the state
        :meth:`restore` re-establishes after every trial.  True for
        quantised models from the start (encode∘decode is exact) and
        for any model after its first restore; False while faults are
        active, or before the first restore of a model whose float
        parameters are not representable in the injector's format.
        """
        if self._active:
            return False
        for param, clean in zip(self._params, self._clean):
            data = param.data
            if data is clean:
                continue
            if (
                data.dtype != clean.dtype
                or data.shape != clean.shape
                or not np.array_equal(data, clean)
            ):
                return False
        return True

    def restore(self) -> None:
        """Restore every parameter to its exact pre-fault value.

        Rebinds each ``param.data`` to the injector's canonical
        (read-only) clean array — the same object every time, so
        restores are copy-free and a compiled plan's identity probe
        sees one stable clean state across trials.
        """
        for param, clean in zip(self._params, self._clean):
            param.data = clean
        self._active = False
        invalidate_runtime_plans(self.module)

    @contextmanager
    def inject(self, sites: FaultSites) -> Iterator[int]:
        """Context manager: flip ``sites``, yield the flip count, restore."""
        count = self.apply(sites)
        try:
            yield count
        finally:
            self.restore()

    def read_bits(self, sites: FaultSites) -> np.ndarray:
        """Current stored bit value (0/1) at each site.

        Reads from the clean snapshot (the memory content that faults
        act on), so the answer is independent of any currently injected
        faults.  Used by data-dependent fault models: a stuck-at fault
        only matters where the stored bit differs from the stuck value,
        and ECC word-zeroing must know which bits are set.
        """
        if len(sites) == 0:
            return np.empty(0, dtype=np.int64)
        positions, bits = self._validated_sites(sites)
        owner = np.searchsorted(self._offsets, positions, side="right") - 1
        values = np.empty(positions.size, dtype=np.int64)
        modulus = np.int64(1) << np.int64(self.fmt.total_bits)
        for index in np.unique(owner):
            mask = owner == index
            local = positions[mask] - self._offsets[index]
            words = self._words[index].reshape(-1)[local]
            unsigned = np.where(words < 0, words + modulus, words).astype(np.uint64)
            values[mask] = (unsigned >> bits[mask].astype(np.uint64)) & np.uint64(1)
        return values

    def word_values(self, word_positions: np.ndarray) -> np.ndarray:
        """Raw (clean) word values at global positions, as int64."""
        positions = np.asarray(word_positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        if positions.min() < 0 or positions.max() >= self.total_words:
            raise ConfigurationError("word position outside the fault space")
        owner = np.searchsorted(self._offsets, positions, side="right") - 1
        values = np.empty(positions.size, dtype=np.int64)
        for index in np.unique(owner):
            mask = owner == index
            local = positions[mask] - self._offsets[index]
            values[mask] = self._words[index].reshape(-1)[local]
        return values

    def describe_site(self, word_position: int, bit: int) -> str:
        """Human-readable location of a fault site (diagnostics)."""
        owner = int(np.searchsorted(self._offsets, word_position, side="right") - 1)
        local = int(word_position - self._offsets[owner])
        return f"{self._names[owner]}[{local}] bit {bit}"
