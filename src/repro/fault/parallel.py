"""Parallel execution backends for fault-injection campaigns.

A campaign is an embarrassingly parallel workload: every trial is fully
determined by its seed-derived fault sites, and evaluates the model
under those faults independently of every other trial.  This module
provides the executor abstraction :class:`FaultCampaign` schedules
trials through:

- :class:`SerialExecutor` — the in-process loop (the historic behaviour);
- :class:`ProcessExecutor` — a ``multiprocessing`` worker pool that ships
  the read-only campaign state (the injector's quantised parameter
  words, the materialised evaluation batches) to each worker once, then
  streams small per-trial messages in chunks.  The pool persists across
  ``run()`` calls, so a full fault-rate sweep pays the worker start-up
  cost once.

Determinism is preserved by construction: fault sites are sampled in the
parent from seeds derived before any work is scheduled, each worker runs
trials against its own private copy of the model, and results are
consumed in trial-index order regardless of which worker finished
first.  A parallel campaign is therefore bit-identical to a serial one
with the same seed.

Workers are started with the platform's ``fork`` method when available
(state is inherited, nothing needs to pickle); under ``spawn`` the
campaign state is pickled instead, which requires the evaluation
callable to be picklable (lambdas are not —
:meth:`repro.eval.Evaluator.bind` is).  Fault models never cross the
process boundary — sampling happens in the parent — so lambda
``param_filter``s work on every backend.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.fault.sites import FaultSites
from repro.obs.trace import span
from repro.utils.logging import get_logger

if TYPE_CHECKING:
    from multiprocessing.pool import Pool

    from repro.fault.injector import FaultInjector

__all__ = [
    "GroupTrialRunner",
    "ProcessExecutor",
    "SerialExecutor",
    "TrialExecutor",
    "TrialGroup",
    "TrialOutcome",
    "TrialRunner",
    "TrialWork",
    "available_workers",
    "default_start_method",
    "group_works",
    "make_executor",
]

_logger = get_logger("fault.parallel")


@dataclass(frozen=True)
class TrialWork:
    """One schedulable unit of campaign work.

    ``sites`` are sampled in the parent from the trial's derived seed,
    so the fault pattern of trial ``index`` is independent of how trials
    are distributed over workers — and fault models (with their possibly
    unpicklable ``param_filter``s) never travel to workers at all.
    """

    index: int
    sites: FaultSites


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one trial: accuracy under fault and the realised flips.

    ``seconds`` is the trial's wall-clock (inject + evaluate + restore),
    excluded from equality — campaign results are identified by their
    accuracy/flip streams, never by timing, so replayed and re-executed
    outcomes compare equal.  Stores journal it for throughput/ETA
    reporting (``repro campaign status``).
    """

    index: int
    accuracy: float
    flips: int
    seconds: float = field(default=0.0, compare=False)


class TrialRunner:
    """The picklable per-trial work function shared by all backends.

    Bundles the injector and the evaluation callable — the read-only
    campaign state — into one object, so a worker pool receives it in a
    single initializer payload (pickle preserves the
    injector-module/evaluator-model aliasing across that payload) and
    can keep serving trials for every fault configuration the campaign
    runs.
    """

    __slots__ = ("injector", "evaluate")

    def __init__(
        self, injector: "FaultInjector", evaluate: Callable[[], float]
    ) -> None:
        self.injector = injector
        self.evaluate = evaluate

    def __call__(self, work: TrialWork) -> TrialOutcome:
        with span("campaign.trial", trial=work.index):
            started = time.perf_counter()
            with self.injector.inject(work.sites) as count:
                accuracy = float(self.evaluate())
            seconds = time.perf_counter() - started
        return TrialOutcome(
            index=work.index,
            accuracy=accuracy,
            flips=int(count),
            seconds=seconds,
        )


def group_works(works: "Sequence[TrialWork]", width: int) -> list["TrialGroup"]:
    """Pack an ordered work list into replica groups of ``width`` lanes.

    The single grouping policy shared by every dispatch path (full runs,
    resumes, and the coord layer's dynamic ranges): consecutive works
    become lanes of one group, the last group holding the remainder.
    Grouping is scheduling only — outcomes stream back flattened in the
    original order, bit-identical to per-trial execution.
    """
    if width < 2:
        raise ConfigurationError(f"replica group width must be >= 2, got {width}")
    return [
        TrialGroup(works=tuple(works[at : at + width]))
        for at in range(0, len(works), width)
    ]


@dataclass(frozen=True)
class TrialGroup:
    """A replica group: consecutive trials evaluated as lanes of one pass.

    Groups carry ordinary :class:`TrialWork` units — the same sites the
    per-trial path would inject — so grouping is purely a scheduling
    decision; lane outcomes are attributed back to the original trial
    indices and must be bit-identical to the ungrouped evaluation.
    """

    works: tuple[TrialWork, ...]


class GroupTrialRunner:
    """Picklable work function evaluating one replica group per call.

    Requires an evaluation callable exposing
    ``lane_accuracies(injector, site_sets)`` — the replicated-evaluation
    hook (:meth:`repro.eval.BoundAccuracy.lane_accuracies`), which
    shares each batch's clean forward across the group's lanes and
    returns one accuracy per site set, in order, bit-identical to the
    per-trial path.
    """

    __slots__ = ("injector", "evaluate")

    def __init__(self, injector: "FaultInjector", evaluate: object) -> None:
        self.injector = injector
        self.evaluate = evaluate

    def __call__(self, group: TrialGroup) -> tuple[TrialOutcome, ...]:
        works = group.works
        with span("campaign.group", trials=len(works)):
            # Group wall time split evenly over lanes: shared work has no
            # per-trial attribution.  Like TrialRunner's raw reads above,
            # kept obs-free so pickled workers need no obs import.
            started = time.perf_counter()  # repro-lint: disable=RPL009
            accuracies = self.evaluate.lane_accuracies(
                self.injector, [work.sites for work in works]
            )
            seconds = time.perf_counter() - started  # repro-lint: disable=RPL009
        if len(accuracies) != len(works):  # pragma: no cover - defensive
            raise ConfigurationError(
                f"lane_accuracies returned {len(accuracies)} accuracies "
                f"for {len(works)} lanes"
            )
        per_lane = seconds / len(works) if works else 0.0
        return tuple(
            TrialOutcome(
                index=work.index,
                accuracy=float(accuracy),
                flips=len(work.sites),
                seconds=per_lane,
            )
            for work, accuracy in zip(works, accuracies)
        )


class TrialExecutor:
    """Strategy interface: run trials, yield outcomes in trial-index order.

    Implementations must yield :class:`TrialOutcome`s ordered by
    ``work.index`` so streaming consumers (incremental aggregation,
    CI-convergence early stop) make identical decisions on every
    backend.  Consumers may stop iterating early; executors must not
    leave abandoned work occupying their resources when that happens.
    """

    #: Worker processes backing this executor (0 = in-process).
    workers: int = 0

    def run_trials(
        self, runner: TrialRunner, works: Iterable[TrialWork]
    ) -> Iterator[TrialOutcome]:
        raise NotImplementedError

    def run_groups(
        self, runner: GroupTrialRunner, groups: Iterable[TrialGroup]
    ) -> Iterator[TrialOutcome]:
        """Run replica groups, yielding a flat trial-index-ordered stream.

        Groups hold consecutive trial indices and outcomes stream back
        flattened in that order, so consumers are oblivious to grouping
        — the journal/early-stop/aggregation loop is byte-identical to
        :meth:`run_trials`.  The default evaluates groups in the calling
        process (correct for any backend); pooled executors override it.
        """
        for group in groups:
            yield from runner(group)

    def shutdown(self, terminate: bool = False) -> None:
        """Release any pooled resources (no-op for in-process backends)."""

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(TrialExecutor):
    """Run every trial in the calling process (the historic behaviour)."""

    workers = 0

    def run_trials(
        self, runner: TrialRunner, works: Iterable[TrialWork]
    ) -> Iterator[TrialOutcome]:
        for work in works:
            yield runner(work)

    def describe(self) -> str:
        return "serial"


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    Fork inherits the campaign state by copy-on-write — no pickling, no
    per-worker re-materialisation — and is the only method that supports
    closure-based ``evaluate`` callables.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Worker-global campaign state, installed once per worker by the pool
# initializer (inherited via fork, or unpickled once under spawn).
_WORKER_RUNNER: TrialRunner | GroupTrialRunner | None = None


def _initialize_worker(runner: TrialRunner | GroupTrialRunner) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner


def _execute_trial(work: TrialWork) -> TrialOutcome:
    if not isinstance(_WORKER_RUNNER, TrialRunner):  # pragma: no cover - defensive
        raise ConfigurationError("worker pool was not initialised with a trial runner")
    return _WORKER_RUNNER(work)


def _execute_group(group: TrialGroup) -> tuple[TrialOutcome, ...]:
    if not isinstance(_WORKER_RUNNER, GroupTrialRunner):  # pragma: no cover
        raise ConfigurationError("worker pool was not initialised with a group runner")
    return _WORKER_RUNNER(group)


class ProcessExecutor(TrialExecutor):
    """Run trials on a persistent ``multiprocessing`` pool.

    The pool is created lazily on the first ``run_trials`` call and
    reused for every later call with the same runner — a fault-rate
    sweep amortises worker start-up over all of its campaigns.  Call
    :meth:`shutdown` (or use the owning campaign as a context manager)
    to release the workers.

    Parameters
    ----------
    workers:
        Worker process count (>= 2; use :class:`SerialExecutor` below
        that).  May exceed the machine's core count, though that rarely
        helps CPU-bound evaluation.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default picks
        :func:`default_start_method`.
    chunk_size:
        Trials handed to a worker per scheduling round.  Default
        balances scheduling overhead against tail latency:
        ``max(1, trials // (workers * 4))``.
    """

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ProcessExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor (workers=0) for in-process runs"
            )
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise ConfigurationError(
                    f"start method {start_method!r} unavailable on this "
                    f"platform (have: {', '.join(available)})"
                )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = int(workers)
        self.start_method = start_method
        self.chunk_size = chunk_size
        self._pool: "Pool | None" = None
        self._pool_runner: TrialRunner | GroupTrialRunner | None = None

    def _resolve_chunk(self, n_trials: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, n_trials // (self.workers * 4))

    def _ensure_pool(self, runner: TrialRunner | GroupTrialRunner) -> "Pool":
        if self._pool is not None and self._pool_runner is runner:
            return self._pool
        self.shutdown()
        method = self.start_method or default_start_method()
        context = multiprocessing.get_context(method)
        _logger.info("starting campaign pool: %d workers (%s)", self.workers, method)
        self._pool = context.Pool(
            processes=self.workers,
            initializer=_initialize_worker,
            initargs=(runner,),
        )
        self._pool_runner = runner
        return self._pool

    def run_trials(
        self, runner: TrialRunner, works: Iterable[TrialWork]
    ) -> Iterator[TrialOutcome]:
        works = list(works)
        if not works:
            return
        pool = self._ensure_pool(runner)
        completed = 0
        try:
            # Ordered imap: outcomes stream back in trial-index order
            # even when later trials finish first on another worker.
            for outcome in pool.imap(
                _execute_trial, works, chunksize=self._resolve_chunk(len(works))
            ):
                yield outcome
                completed += 1
        finally:
            if completed < len(works):
                # Abandoned mid-stream (early stop, worker error): kill
                # the speculative trials instead of letting them occupy
                # the pool; the next run lazily restarts it.
                self.shutdown(terminate=True)

    def run_groups(
        self, runner: GroupTrialRunner, groups: Iterable[TrialGroup]
    ) -> Iterator[TrialOutcome]:
        groups = list(groups)
        if not groups:
            return
        pool = self._ensure_pool(runner)
        completed = 0
        try:
            # Same ordered imap as run_trials, one replica group per
            # message; lane outcomes flatten back in trial-index order.
            for outcomes in pool.imap(
                _execute_group, groups, chunksize=self._resolve_chunk(len(groups))
            ):
                yield from outcomes
                completed += 1
        finally:
            if completed < len(groups):
                self.shutdown(terminate=True)

    def shutdown(self, terminate: bool = False) -> None:
        pool, self._pool, self._pool_runner = self._pool, None, None
        if pool is None:
            return
        if terminate:
            pool.terminate()
        else:
            pool.close()
        pool.join()

    def __del__(self) -> None:  # best-effort; shutdown() is the real API
        try:
            self.shutdown(terminate=True)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def describe(self) -> str:
        return f"process[{self.workers}]"


def available_workers() -> int:
    """Usable CPU count (CPU affinity aware), minimum 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def make_executor(
    workers: int | TrialExecutor | None,
    start_method: str | None = None,
    chunk_size: int | None = None,
) -> TrialExecutor:
    """Resolve a ``workers`` knob into an executor.

    ``None``/``0``/``1`` → serial; ``N >= 2`` → a process pool of N; a
    ready-made :class:`TrialExecutor` passes through unchanged (custom
    backends — threads, remote workers — plug in here).
    """
    if isinstance(workers, TrialExecutor):
        return workers
    if workers is None:
        workers = 0
    workers = int(workers)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers <= 1:
        return SerialExecutor()
    return ProcessExecutor(workers, start_method=start_method, chunk_size=chunk_size)
