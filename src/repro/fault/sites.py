"""Fault-site sampling over a model's parameter memory."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import new_rng

__all__ = ["FaultSites", "sample_distinct", "sample_sites"]


@dataclass(frozen=True)
class FaultSites:
    """A concrete set of bit-flip locations for one trial.

    ``word_positions`` index into the flattened fault-space word array;
    ``bit_positions`` give the bit index within each word.  Pairs are
    distinct.
    """

    word_positions: np.ndarray
    bit_positions: np.ndarray

    def __post_init__(self) -> None:
        if self.word_positions.shape != self.bit_positions.shape:
            raise ConfigurationError("word/bit position arrays must align")

    def __len__(self) -> int:
        return int(self.word_positions.size)

    @classmethod
    def empty(cls) -> "FaultSites":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def sample_distinct(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct integers from ``range(population)``.

    ``np.random.Generator.choice(..., replace=False)`` materialises a
    permutation of the whole population — ruinous for fault spaces of 1e8+
    bits — so for sparse draws we sample with replacement and reject
    duplicates (expected O(count) rounds since count << population).
    """
    if count > population:
        raise ConfigurationError(
            f"cannot draw {count} distinct values from a population of {population}"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count * 4 >= population:
        # Dense draw: a permutation is affordable.
        return rng.permutation(population)[:count].astype(np.int64)
    chosen: set[int] = set()
    while len(chosen) < count:
        draw = rng.integers(0, population, size=2 * (count - len(chosen)))
        chosen.update(int(v) for v in draw)
        while len(chosen) > count:
            chosen.pop()
    return np.fromiter(chosen, dtype=np.int64, count=count)


def sample_sites(
    rng: np.random.Generator | int | None,
    total_words: int,
    word_bits: int,
    fault_rate: float | None = None,
    n_flips: int | None = None,
    allowed_bits: tuple[int, ...] | None = None,
) -> FaultSites:
    """Draw fault sites uniformly over the (restricted) bit space.

    With ``fault_rate`` the flip count is Binomial(total bits, rate) —
    each bit of every word in the fault space flips independently, the
    paper's uniform model.  With ``n_flips`` the count is exact.
    """
    rng = new_rng(rng)
    if total_words <= 0:
        raise ConfigurationError(f"fault space is empty (total_words={total_words})")
    bits = (
        np.arange(word_bits, dtype=np.int64)
        if allowed_bits is None
        else np.asarray(sorted(allowed_bits), dtype=np.int64)
    )
    if bits.size and (bits.min() < 0 or bits.max() >= word_bits):
        raise ConfigurationError(
            f"allowed_bits out of range for a {word_bits}-bit word: {bits.tolist()}"
        )
    population = total_words * bits.size
    if fault_rate is not None:
        count = int(rng.binomial(population, fault_rate))
    elif n_flips is not None:
        count = int(n_flips)
    else:
        raise ConfigurationError("specify fault_rate or n_flips")
    flat = sample_distinct(rng, population, count)
    word_positions = flat // bits.size
    bit_positions = bits[flat % bits.size]
    return FaultSites(word_positions, bit_positions)
