"""Statistical analyses over campaign results.

Beyond the mean/box summaries on :class:`CampaignResult`, this module
implements the per-bit-position vulnerability study (which bit of a
Q15.16 word, when flipped, hurts accuracy most) — the mechanism behind
the paper's observation that high-magnitude corruptions dominate, and the
basis of the ABL-B ablation bench.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignResult, FaultCampaign
from repro.fault.fault_model import BitFlipFaultModel

__all__ = [
    "OutcomeBreakdown",
    "accuracy_drop",
    "bit_position_vulnerability",
    "classify_outcomes",
    "critical_bit_threshold",
    "is_sdc",
    "mean_confidence_interval",
    "parameter_group_vulnerability",
    "sdc_probability",
    "wilson_interval",
]


def accuracy_drop(baseline: float, result: CampaignResult) -> float:
    """Mean accuracy lost relative to the fault-free baseline."""
    return float(baseline - result.mean)


def is_sdc(
    accuracies: float | Sequence[float] | np.ndarray,
    baseline: float,
    tolerance: float = 0.01,
) -> np.ndarray:
    """Elementwise silent-data-corruption predicate.

    A trial is an SDC when accuracy falls more than ``tolerance`` below
    the fault-free baseline (the usual resilience-literature
    definition).  The single definition shared by campaign summaries and
    the store's vulnerability atlas, so "SDC rate" means the same thing
    in every report.
    """
    return np.asarray(accuracies, dtype=np.float64) < baseline - tolerance


def sdc_probability(result: CampaignResult, baseline: float, tolerance: float = 0.01) -> float:
    """Fraction of trials counting as silent data corruption."""
    return float(np.mean(is_sdc(result.accuracies, baseline, tolerance)))


def bit_position_vulnerability(
    campaign: FaultCampaign,
    bits: list[int],
    flips_per_trial: int = 1,
    param_filter: Callable[[str], bool] | None = None,
) -> dict[int, CampaignResult]:
    """Mean accuracy when flipping only bit ``b``, for each b in ``bits``.

    Exposes the Q15.16 vulnerability profile: fraction-LSB flips are
    harmless, high integer/sign bits are catastrophic — exactly why
    bounded activations recover most of the loss.
    """
    results: dict[int, CampaignResult] = {}
    for bit in bits:
        fault_model = BitFlipFaultModel.exact(
            flips_per_trial, allowed_bits=(bit,), param_filter=param_filter
        )
        results[bit] = campaign.run(fault_model, tag=f"bit{bit}")
    return results


def critical_bit_threshold(
    vulnerability: dict[int, CampaignResult],
    baseline: float,
    tolerance: float = 0.01,
) -> int | None:
    """Lowest bit index whose flips cost more than ``tolerance`` accuracy.

    Returns None when no examined bit is critical.
    """
    for bit in sorted(vulnerability):
        if baseline - vulnerability[bit].mean > tolerance:
            return bit
    return None


# ----------------------------------------------------------------------
# Outcome classification (masked / degraded / critical)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OutcomeBreakdown:
    """Trial outcomes of one campaign, FIT-analysis style.

    - *masked*: accuracy within ``masked_tolerance`` of the fault-free
      baseline — the faults had no observable effect;
    - *critical*: accuracy at or below ``critical_accuracy`` — the model
      is effectively guessing (typically set near chance level);
    - *degraded*: everything in between (observable but partial damage,
      the classic silent-data-corruption band).
    """

    trials: int
    masked: int
    degraded: int
    critical: int
    masked_tolerance: float
    critical_accuracy: float

    @property
    def masked_fraction(self) -> float:
        return self.masked / self.trials

    @property
    def degraded_fraction(self) -> float:
        return self.degraded / self.trials

    @property
    def critical_fraction(self) -> float:
        return self.critical / self.trials

    def summary(self) -> str:
        return (
            f"{self.trials} trials: {self.masked_fraction:.0%} masked, "
            f"{self.degraded_fraction:.0%} degraded, "
            f"{self.critical_fraction:.0%} critical"
        )


def classify_outcomes(
    result: CampaignResult,
    baseline: float,
    masked_tolerance: float = 0.01,
    critical_accuracy: float = 0.2,
) -> OutcomeBreakdown:
    """Bucket each trial of a campaign into masked / degraded / critical.

    ``critical_accuracy`` defaults to 0.2 — twice the 10-class chance
    level; pass ``2/num_classes`` for other class counts.
    """
    if not 0.0 <= baseline <= 1.0:
        raise ConfigurationError(f"baseline must be in [0, 1], got {baseline}")
    accuracies = result.accuracies
    masked = int(np.sum(accuracies >= baseline - masked_tolerance))
    critical = int(
        np.sum(
            (accuracies <= critical_accuracy)
            & (accuracies < baseline - masked_tolerance)
        )
    )
    degraded = int(accuracies.size) - masked - critical
    return OutcomeBreakdown(
        trials=int(accuracies.size),
        masked=masked,
        degraded=degraded,
        critical=critical,
        masked_tolerance=masked_tolerance,
        critical_accuracy=critical_accuracy,
    )


# ----------------------------------------------------------------------
# Confidence intervals
# ----------------------------------------------------------------------
def mean_confidence_interval(
    samples: CampaignResult | Sequence[float] | np.ndarray,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Student-t confidence interval for a campaign's mean accuracy.

    Campaign trial counts are small (4–20), so the t correction matters.
    A single trial yields a degenerate ``(mean, mean)`` interval.
    """
    if isinstance(samples, CampaignResult):
        samples = samples.accuracies
    values = np.asarray(samples, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot build an interval from zero samples")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(values.mean())
    if values.size == 1:
        return (mean, mean)
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    if sem == 0.0:
        return (mean, mean)
    half = float(stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1) * sem)
    return (mean - half, mean + half)


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The right interval for small-sample fault statistics (SDC rates,
    outcome fractions): unlike the normal approximation it stays inside
    [0, 1] and behaves at 0 and N successes.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z * np.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials)) / denom
    )
    # At the boundary counts the analytic endpoint is exactly 0 (or 1);
    # keep it exact rather than trusting float cancellation.
    low = 0.0 if successes == 0 else max(0.0, centre - half)
    high = 1.0 if successes == trials else min(1.0, centre + half)
    return (low, high)


# ----------------------------------------------------------------------
# Per-parameter-group vulnerability
# ----------------------------------------------------------------------
def parameter_group_vulnerability(
    campaign: FaultCampaign,
    prefixes: Sequence[str],
    flips_per_trial: int = 8,
    allowed_bits: tuple[int, ...] | None = None,
) -> dict[str, CampaignResult]:
    """Accuracy under faults confined to each parameter-name prefix.

    The layer-wise counterpart of :func:`bit_position_vulnerability`:
    flipping the same number of bits in different layers exposes which
    parts of the network the protection must cover first (early conv
    layers fan corruption out over the whole feature map; the classifier
    corrupts at most a few logits).
    """
    results: dict[str, CampaignResult] = {}
    for prefix in prefixes:
        fault_model = BitFlipFaultModel.exact(
            flips_per_trial,
            allowed_bits=allowed_bits,
            param_filter=_prefix_filter(prefix),
        )
        results[prefix] = campaign.run(fault_model, tag=f"group:{prefix}")
    return results


def _prefix_filter(prefix: str) -> Callable[[str], bool]:
    """Name predicate bound to its own prefix (no late-binding bugs)."""

    def accept(name: str) -> bool:
        return name.startswith(prefix)

    return accept
