"""Stuck-at (permanent) memory faults.

The paper's fault model is transient uniform bit-flips (§VI-A2), but the
memories it targets also fail *permanently*: a worn or manufacturing-
defective cell reads as a constant 0 or 1 regardless of what was written
(the classic stuck-at-0 / stuck-at-1 model of memory test literature).
Protection schemes that survive flips should also survive stuck cells —
this module lets the same campaigns measure that.

Lowering to flips
-----------------
A stuck-at fault is *data dependent*: a cell stuck at 1 that already
stores a 1 is invisible.  We therefore sample candidate stuck cells
uniformly (exactly like bit-flip sites), read the currently stored bits
through :meth:`FaultInjector.read_bits`, and keep only the cells whose
content differs from the stuck value.  Those survivors are injected as
ordinary XOR flips — the injector's exact-restore machinery carries over
unchanged, and the *masking rate* (fraction of stuck cells with no
effect) is reported alongside.

Masking is strongly *data dependent*.  For Q15.16 two's-complement DNN
weights the two polarities are roughly balanced overall — positive
words carry 0s in their high bits (masking stuck-at-0 there) but
negative words sign-extend with 1s (masking stuck-at-1) — while the
*damage* is asymmetric: an active stuck-at-1 in a positive word's
integer field adds a huge magnitude, whereas an active stuck-at-0 can
only shrink it.  :meth:`StuckAtFaultModel.masking_rate` measures the
masking split for a concrete model.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.fault.sites import FaultSites

__all__ = ["StuckAtFaultModel", "active_stuck_sites"]


def active_stuck_sites(
    injector: FaultInjector, cells: FaultSites, stuck_value: int
) -> FaultSites:
    """Reduce candidate stuck cells to the ones that corrupt data.

    Keeps exactly the cells whose stored bit differs from ``stuck_value``;
    flipping those reproduces the stuck read.  The dropped cells are the
    *masked* faults.
    """
    if stuck_value not in (0, 1):
        raise ConfigurationError(f"stuck_value must be 0 or 1, got {stuck_value}")
    if len(cells) == 0:
        return cells
    stored = injector.read_bits(cells)
    keep = stored != stuck_value
    return FaultSites(cells.word_positions[keep], cells.bit_positions[keep])


@dataclass(frozen=True)
class StuckAtFaultModel:
    """Permanent stuck-at-0/1 cells, uniform over the parameter memory.

    Exactly one of ``fault_rate`` (per-cell probability of being stuck)
    or ``n_cells`` (exact stuck-cell count) must be set.  The *effective*
    flip count per trial is data dependent and at most the stuck-cell
    count; campaigns record it per trial via the injector.

    Parameters
    ----------
    stuck_value:
        What the faulty cells read as: 0 or 1.
    fault_rate:
        Per-cell probability of being stuck.
    n_cells:
        Exact number of distinct stuck cells per trial.
    allowed_bits:
        Restrict candidate cells to these bit indices (None = all).
    param_filter:
        Predicate over dotted parameter names selecting the fault-space
        subset (None = every parameter).
    """

    stuck_value: int
    fault_rate: float | None = None
    n_cells: int | None = None
    allowed_bits: tuple[int, ...] | None = None
    param_filter: Callable[[str], bool] | None = None

    def __post_init__(self) -> None:
        if self.stuck_value not in (0, 1):
            raise ConfigurationError(
                f"stuck_value must be 0 or 1, got {self.stuck_value}"
            )
        # Reuse BitFlipFaultModel's validation of the shared fields.
        self._candidate_model()

    def _candidate_model(self) -> BitFlipFaultModel:
        """The uniform sampling spec for candidate stuck cells."""
        return BitFlipFaultModel(
            fault_rate=self.fault_rate,
            n_flips=self.n_cells,
            allowed_bits=self.allowed_bits,
            param_filter=self.param_filter,
        )

    @classmethod
    def at_rate(
        cls, stuck_value: int, fault_rate: float, **kwargs: object
    ) -> "StuckAtFaultModel":
        """Uniform stuck cells at a per-cell probability."""
        return cls(stuck_value=stuck_value, fault_rate=fault_rate, **kwargs)

    @classmethod
    def exact(
        cls, stuck_value: int, n_cells: int, **kwargs: object
    ) -> "StuckAtFaultModel":
        """Exactly ``n_cells`` stuck cells per trial (targeted studies)."""
        return cls(stuck_value=stuck_value, n_cells=n_cells, **kwargs)

    def sample_sites(
        self, injector: FaultInjector, rng: np.random.Generator
    ) -> FaultSites:
        """Draw stuck cells, keep the data-corrupting ones as flip sites."""
        cells = injector.sample(self._candidate_model(), rng=rng)
        return active_stuck_sites(injector, cells, self.stuck_value)

    def masking_rate(
        self,
        injector: FaultInjector,
        rng: np.random.Generator | int | None = None,
        sample_cells: int = 4096,
    ) -> float:
        """Estimate the fraction of stuck cells that are masked.

        Samples ``sample_cells`` candidate cells and reports how many
        already store ``stuck_value``.  For Q15.16-encoded DNN weights
        this is close to 1 for stuck-at-0 (most stored bits are 0) and
        close to 0 for stuck-at-1.
        """
        bits_per_word = (
            len(self.allowed_bits)
            if self.allowed_bits is not None
            else injector.fmt.total_bits
        )
        population = injector.count_words(self.param_filter) * bits_per_word
        probe = BitFlipFaultModel.exact(
            min(sample_cells, population),
            allowed_bits=self.allowed_bits,
            param_filter=self.param_filter,
        )
        cells = injector.sample(probe, rng=rng)
        if len(cells) == 0:
            return 0.0
        stored = injector.read_bits(cells)
        return float(np.mean(stored == self.stuck_value))

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        base = f"stuck-at-{self.stuck_value}"
        if self.fault_rate is not None:
            base += f", rate={self.fault_rate:g}"
        else:
            base += f", n_cells={self.n_cells}"
        if self.allowed_bits is not None:
            base += f", bits={list(self.allowed_bits)}"
        if self.param_filter is not None:
            base += ", filtered"
        return base
