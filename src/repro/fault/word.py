"""Word-granularity faults: whole-word replacement.

Bit-flips model single-event upsets; real memories also fail at *word*
granularity — a dead row, a failed burst transfer, or the random-value
replacement model used by Ares (Reagen et al., DAC 2018 [29]).  This
model picks whole parameter words and replaces their content:

- ``"random"`` — an independent uniform random word (Ares' model);
- ``"zero"``   — the word reads as 0 (dead cell column, or an ECC
  detected-error response — the same semantics as
  ``ECCProtectedInjector(double_policy="zero")``);
- ``"max"``    — the word saturates to the format's most positive value
  (a pathological worst case for unbounded activations).

Lowering: the replacement is expressed as the XOR between the currently
stored word and the target pattern, which turns into ordinary bit-flip
sites — the injector's exact-restore machinery carries over, and the
*effective* flip count per word (popcount of the XOR) is visible in
campaign records.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.fault.sites import FaultSites

__all__ = ["WordFaultModel", "replacement_flips"]

_MODES = ("random", "zero", "max")


def replacement_flips(
    injector: FaultInjector,
    word_positions: np.ndarray,
    targets: np.ndarray,
) -> FaultSites:
    """Flip sites turning each stored word into its target pattern.

    ``targets`` holds raw (signed two's-complement) word values aligned
    with ``word_positions``.  Words already equal to their target yield
    no sites.
    """
    word_positions = np.asarray(word_positions, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if word_positions.shape != targets.shape:
        raise ConfigurationError("word positions and targets must align")
    if word_positions.size == 0:
        return FaultSites.empty()
    current = injector.word_values(word_positions)
    fmt = injector.fmt
    modulus = np.int64(1) << np.int64(fmt.total_bits)

    def unsigned(values: np.ndarray) -> np.ndarray:
        return np.where(values < 0, values + modulus, values).astype(np.uint64)

    diff = unsigned(current) ^ unsigned(targets)
    out_words: list[np.ndarray] = []
    out_bits: list[np.ndarray] = []
    for bit in range(fmt.total_bits):
        mask = (diff >> np.uint64(bit)) & np.uint64(1) == 1
        if mask.any():
            out_words.append(word_positions[mask])
            out_bits.append(np.full(int(mask.sum()), bit, dtype=np.int64))
    if not out_words:
        return FaultSites.empty()
    return FaultSites(np.concatenate(out_words), np.concatenate(out_bits))


@dataclass(frozen=True)
class WordFaultModel:
    """Whole-word corruption, uniform over the parameter memory.

    Exactly one of ``fault_rate`` (per-word probability) or ``n_words``
    (exact corrupted-word count) must be set.

    Parameters
    ----------
    mode:
        ``"random"`` | ``"zero"`` | ``"max"`` — what the corrupted word
        reads as.
    fault_rate:
        Per-word corruption probability.
    n_words:
        Exact number of distinct corrupted words per trial.
    param_filter:
        Predicate over dotted parameter names selecting the fault-space
        subset (None = every parameter).
    """

    mode: str = "random"
    fault_rate: float | None = None
    n_words: int | None = None
    param_filter: Callable[[str], bool] | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        # Word selection reuses bit-flip validation for the shared fields.
        self._selector()

    def _selector(self) -> BitFlipFaultModel:
        """Uniform word picker: one candidate bit per word stands in for
        the word itself."""
        return BitFlipFaultModel(
            fault_rate=self.fault_rate,
            n_flips=self.n_words,
            allowed_bits=(0,),
            param_filter=self.param_filter,
        )

    @classmethod
    def exact(cls, mode: str, n_words: int, **kwargs: object) -> "WordFaultModel":
        """Exactly ``n_words`` corrupted words per trial."""
        return cls(mode=mode, n_words=n_words, **kwargs)

    @classmethod
    def at_rate(cls, mode: str, fault_rate: float, **kwargs: object) -> "WordFaultModel":
        """Uniform word corruption at a per-word probability."""
        return cls(mode=mode, fault_rate=fault_rate, **kwargs)

    def _targets(
        self, count: int, injector: FaultInjector, rng: np.random.Generator
    ) -> np.ndarray:
        fmt = injector.fmt
        if self.mode == "zero":
            return np.zeros(count, dtype=np.int64)
        if self.mode == "max":
            return np.full(count, fmt.max_raw, dtype=np.int64)
        modulus = np.int64(1) << np.int64(fmt.total_bits)
        half = np.int64(1) << np.int64(fmt.total_bits - 1)
        raw = rng.integers(0, int(modulus), size=count, dtype=np.uint64).astype(
            np.int64
        )
        return np.where(raw >= half, raw - modulus, raw)

    def sample_sites(
        self, injector: FaultInjector, rng: np.random.Generator
    ) -> FaultSites:
        """Pick words, draw target patterns, lower to XOR flip sites."""
        picked = injector.sample(self._selector(), rng=rng)
        words = np.unique(picked.word_positions)
        targets = self._targets(words.size, injector, rng)
        return replacement_flips(injector, words, targets)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        base = f"word-{self.mode}"
        if self.fault_rate is not None:
            base += f", rate={self.fault_rate:g}"
        else:
            base += f", n_words={self.n_words}"
        if self.param_filter is not None:
            base += ", filtered"
        return base
