"""Model zoo: the paper's AlexNet / VGG16 / ResNet50 (CIFAR variants)
plus lighter members of each family and a MobileNetV1 extension target."""

from repro.models.alexnet import AlexNet, build_alexnet
from repro.models.common import scaled_width
from repro.models.lenet import LeNet, build_lenet
from repro.models.mobilenet import MOBILENET_PLAN, MobileNet, build_mobilenet
from repro.models.registry import (
    MODEL_NAMES,
    PAPER_MODELS,
    build_model,
    register_model,
)
from repro.models.resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    build_resnet18,
    build_resnet50,
)
from repro.models.vgg import VGG, VGG_CONFIGS, build_vgg11, build_vgg16

__all__ = [
    "MOBILENET_PLAN",
    "MODEL_NAMES",
    "PAPER_MODELS",
    "VGG",
    "VGG_CONFIGS",
    "AlexNet",
    "BasicBlock",
    "Bottleneck",
    "LeNet",
    "MobileNet",
    "ResNet",
    "build_alexnet",
    "build_lenet",
    "build_mobilenet",
    "build_model",
    "build_resnet18",
    "build_resnet50",
    "build_vgg11",
    "build_vgg16",
    "register_model",
    "scaled_width",
]
