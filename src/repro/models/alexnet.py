"""AlexNet adapted to CIFAR-scale 32×32 inputs (paper model #3).

The standard CIFAR adaptation of Krizhevsky et al.'s architecture: five
convolutions (the first strided), three max-pools, and a three-layer
classifier.  ``scale`` multiplies every width so the same topology runs
at laptop-simulator size; ``scale=1.0`` is the paper-size network.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.common import scaled_width
from repro.utils.rng import derive_seed, new_rng

__all__ = ["AlexNet", "build_alexnet"]


class AlexNet(nn.Module):
    """CIFAR AlexNet: features → flatten → classifier."""

    def __init__(
        self,
        num_classes: int = 10,
        scale: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = new_rng(derive_seed(seed, "alexnet"))
        c1 = scaled_width(64, scale)
        c2 = scaled_width(192, scale)
        c3 = scaled_width(384, scale)
        c4 = scaled_width(256, scale)
        hidden = scaled_width(4096, scale)
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, c1, 3, stride=2, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c2, c3, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c3, c4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(c4, c4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.flatten = nn.Flatten()
        # Spatial plan: stride-2 conv, then three 2× max-pools.
        spatial = (image_size - 1) // 2 + 1
        for _ in range(3):
            spatial //= 2
        if spatial < 1:
            raise ValueError(
                f"image_size {image_size} too small for the AlexNet topology"
            )
        feature_dim = c4 * spatial * spatial
        self.classifier = nn.Sequential(
            nn.Dropout(dropout, rng=derive_seed(seed, "alexnet-drop1")),
            nn.Linear(feature_dim, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(dropout, rng=derive_seed(seed, "alexnet-drop2")),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: object) -> object:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)


def build_alexnet(
    num_classes: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    **kwargs: object,
) -> AlexNet:
    """Registry builder for :class:`AlexNet`."""
    return AlexNet(num_classes=num_classes, scale=scale, seed=seed, **kwargs)
