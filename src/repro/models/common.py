"""Shared model-construction helpers."""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["scaled_width"]


def scaled_width(width: int, scale: float, minimum: int = 4) -> int:
    """Scale a channel/feature width, keeping at least ``minimum`` units.

    The paper's models are evaluated at full width on a GPU; the numpy
    substrate runs the identical topology at ``scale < 1`` (DESIGN.md
    substitution #2).  Widths stay multiples of 1 but never drop below
    ``minimum`` so bottleneck blocks remain well-formed.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(width * scale)))
