"""A small LeNet-style CNN.

Not part of the paper's model set — it exists because the reproduction's
unit/integration tests and quick examples need a network that trains in
seconds on the numpy substrate while exercising the same code paths
(conv → ReLU → pool → linear → ReLU) that FitAct surgery targets.
"""

from __future__ import annotations

from repro import nn
from repro.models.common import scaled_width
from repro.utils.rng import derive_seed, new_rng

__all__ = ["LeNet", "build_lenet"]


class LeNet(nn.Module):
    """Two conv stages + two-layer classifier for 32×32 (or 16×16) input."""

    def __init__(
        self,
        num_classes: int = 10,
        scale: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = new_rng(derive_seed(seed, "lenet"))
        c1 = scaled_width(8, scale)
        c2 = scaled_width(16, scale)
        hidden = scaled_width(32, scale)
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, c1, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.flatten = nn.Flatten()
        spatial = image_size // 4
        self.classifier = nn.Sequential(
            nn.Linear(c2 * spatial * spatial, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: object) -> object:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)


def build_lenet(
    num_classes: int = 10, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> LeNet:
    """Registry builder for :class:`LeNet`."""
    return LeNet(num_classes=num_classes, scale=scale, seed=seed, **kwargs)
