"""MobileNetV1 for CIFAR-scale inputs (beyond-paper architecture).

The paper evaluates AlexNet, VGG16 and ResNet50; MobileNet is the
architecture actually shipped on the resource-constrained edge devices
the paper motivates with, so the zoo carries a CIFAR-form MobileNetV1
as an extension target.  Depthwise-separable convolutions change the
protection problem in an interesting way: each depthwise filter touches
only one channel, so a corrupted weight damages exactly one feature map
— per-neuron bounds align with that failure granularity.

Structure (Howard et al. 2017, CIFAR adaptation): a 3×3 stem, then 13
depthwise-separable blocks — depthwise 3×3 (groups = channels) + BN +
ReLU, pointwise 1×1 + BN + ReLU — with stride-2 downsampling moved to
fit 32×32 inputs, global average pooling, and a linear classifier.
"""

from __future__ import annotations

from repro import nn
from repro.errors import ConfigurationError
from repro.models.common import scaled_width
from repro.nn.module import Module
from repro.utils.rng import derive_seed, new_rng

__all__ = ["MobileNet", "MOBILENET_PLAN", "build_mobilenet"]

MOBILENET_PLAN: list[tuple[int, int]] = [
    # (output channels, stride) per depthwise-separable block.
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]
"""The 13 separable blocks of MobileNetV1 (CIFAR strides)."""


class _SeparableBlock(Module):
    """Depthwise 3×3 + BN + ReLU, then pointwise 1×1 + BN + ReLU."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng) -> None:
        super().__init__()
        self.depthwise = nn.Conv2d(
            in_channels,
            in_channels,
            kernel_size=3,
            stride=stride,
            padding=1,
            groups=in_channels,
            bias=False,
            rng=rng,
        )
        self.bn_dw = nn.BatchNorm2d(in_channels)
        self.relu_dw = nn.ReLU()
        self.pointwise = nn.Conv2d(
            in_channels, out_channels, kernel_size=1, bias=False, rng=rng
        )
        self.bn_pw = nn.BatchNorm2d(out_channels)
        self.relu_pw = nn.ReLU()

    def forward(self, x):  # noqa: ANN001, ANN201 - Tensor in/out
        x = self.relu_dw(self.bn_dw(self.depthwise(x)))
        return self.relu_pw(self.bn_pw(self.pointwise(x)))


class MobileNet(Module):
    """MobileNetV1 backbone + classifier for 32×32 inputs."""

    def __init__(
        self,
        num_classes: int = 10,
        scale: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        downsamples = 1 + sum(1 for _, s in MOBILENET_PLAN if s == 2)
        if image_size < 2**downsamples:
            raise ConfigurationError(
                f"image_size {image_size} collapses under the {downsamples} "
                f"stride-2 stages; need at least {2**downsamples}"
            )
        rng = new_rng(derive_seed(seed, "mobilenet"))
        stem_width = scaled_width(32, scale)
        self.stem = nn.Sequential(
            nn.Conv2d(
                in_channels,
                stem_width,
                kernel_size=3,
                stride=2,
                padding=1,
                bias=False,
                rng=rng,
            ),
            nn.BatchNorm2d(stem_width),
            nn.ReLU(),
        )
        blocks: list[Module] = []
        channels = stem_width
        for width, stride in MOBILENET_PLAN:
            out_channels = scaled_width(width, scale)
            blocks.append(_SeparableBlock(channels, out_channels, stride, rng))
            channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x):  # noqa: ANN001, ANN201 - Tensor in/out
        x = self.stem(x)
        x = self.blocks(x)
        return self.classifier(self.flatten(self.pool(x)))


def build_mobilenet(
    num_classes: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    image_size: int = 32,
    in_channels: int = 3,
) -> MobileNet:
    """Registry builder for the CIFAR MobileNetV1."""
    return MobileNet(
        num_classes=num_classes,
        scale=scale,
        in_channels=in_channels,
        image_size=image_size,
        seed=seed,
    )
