"""Model registry: build any supported architecture by name."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.models.alexnet import build_alexnet
from repro.models.lenet import build_lenet
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet import build_resnet18, build_resnet50
from repro.models.vgg import build_vgg11, build_vgg16
from repro.nn.module import Module

__all__ = ["MODEL_NAMES", "PAPER_MODELS", "build_model", "register_model"]

_REGISTRY: dict[str, Callable[..., Module]] = {
    "alexnet": build_alexnet,
    "vgg11": build_vgg11,
    "vgg16": build_vgg16,
    "resnet18": build_resnet18,
    "resnet50": build_resnet50,
    "lenet": build_lenet,
    "mobilenet": build_mobilenet,
}

PAPER_MODELS = ("resnet50", "vgg16", "alexnet")
"""The three architectures of the paper's evaluation (§VI-A1)."""

MODEL_NAMES = tuple(sorted(_REGISTRY))


def register_model(name: str, builder: Callable[..., Module]) -> None:
    """Register a custom architecture under ``name`` (extension point)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"model {name!r} is already registered")
    _REGISTRY[name] = builder


def build_model(
    name: str,
    num_classes: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    **kwargs: object,
) -> Module:
    """Build a model by registry name.

    ``scale`` multiplies layer widths (1.0 = paper-size topology);
    ``seed`` fixes weight initialisation.
    """
    try:
        builder = _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None
    return builder(num_classes=num_classes, scale=scale, seed=seed, **kwargs)
