"""ResNet for CIFAR-scale inputs (paper model #1 is ResNet50).

He et al.'s residual networks with the CIFAR stem (single 3×3
convolution, no initial max-pool).  ResNet50 uses bottleneck blocks
[3, 4, 6, 3]; ResNet18 (basic blocks [2, 2, 2, 2]) is included as a
lighter member of the family for fast experiments.

Every ReLU is a distinct module instance — required so FitAct surgery
can give each activation *site* its own bounds.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor
from repro.models.common import scaled_width
from repro.utils.rng import derive_seed, new_rng

__all__ = ["BasicBlock", "Bottleneck", "ResNet", "build_resnet18", "build_resnet50"]


class BasicBlock(nn.Module):
    """Two 3×3 convolutions with identity shortcut (ResNet18/34)."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(
            in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(channels)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu2 = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + identity)


class Bottleneck(nn.Module):
    """1×1 reduce → 3×3 → 1×1 expand bottleneck (ResNet50+)."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(
            channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(channels)
        self.relu2 = nn.ReLU()
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.relu3 = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.relu2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu3(out + identity)


class ResNet(nn.Module):
    """CIFAR-stem ResNet over configurable blocks."""

    def __init__(
        self,
        block: type,
        layers: tuple[int, int, int, int],
        num_classes: int = 10,
        scale: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        # Global average pooling makes ResNet size-agnostic; image_size is
        # accepted for registry uniformity (any size >= 8 works).
        del image_size
        rng = new_rng(derive_seed(seed, "resnet"))
        widths = [scaled_width(w, scale) for w in (64, 128, 256, 512)]
        self.stem_conv = nn.Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.stem_bn = nn.BatchNorm2d(widths[0])
        self.stem_relu = nn.ReLU()
        channels = widths[0]
        stages = []
        for stage_index, (width, count) in enumerate(zip(widths, layers)):
            stride = 1 if stage_index == 0 else 2
            blocks = []
            for block_index in range(count):
                blocks.append(
                    block(
                        channels,
                        width,
                        stride=stride if block_index == 0 else 1,
                        rng=rng,
                    )
                )
                channels = width * block.expansion
            stages.append(nn.Sequential(*blocks))
        self.layer1, self.layer2, self.layer3, self.layer4 = stages
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.pool(x)
        return self.fc(x)


def build_resnet50(
    num_classes: int = 10, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> ResNet:
    """Registry builder for ResNet50 (paper configuration)."""
    return ResNet(
        Bottleneck, (3, 4, 6, 3), num_classes=num_classes, scale=scale, seed=seed, **kwargs
    )


def build_resnet18(
    num_classes: int = 10, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> ResNet:
    """Registry builder for the lighter ResNet18 variant."""
    return ResNet(
        BasicBlock, (2, 2, 2, 2), num_classes=num_classes, scale=scale, seed=seed, **kwargs
    )
