"""VGG for CIFAR-scale inputs (paper model #2 is VGG16).

Configurations A (VGG11) and D (VGG16) from Simonyan & Zisserman, in the
standard CIFAR form: 3×3 convolutions with padding 1, five max-pool
stages taking 32×32 down to 1×1, then a compact two-layer classifier.
BatchNorm after every convolution is on by default (as in common CIFAR
VGG training recipes); disable with ``batch_norm=False``.
"""

from __future__ import annotations

from repro import nn
from repro.errors import ConfigurationError
from repro.models.common import scaled_width
from repro.utils.rng import derive_seed, new_rng

__all__ = ["VGG", "VGG_CONFIGS", "build_vgg11", "build_vgg16"]

VGG_CONFIGS: dict[str, list[int | str]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
}


class VGG(nn.Module):
    """VGG backbone + classifier for 32×32 inputs."""

    def __init__(
        self,
        config: str = "vgg16",
        num_classes: int = 10,
        scale: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        batch_norm: bool = True,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if config not in VGG_CONFIGS:
            raise ConfigurationError(
                f"config must be one of {sorted(VGG_CONFIGS)}, got {config!r}"
            )
        pools = sum(1 for t in VGG_CONFIGS[config] if t == "M")
        if image_size < 2**pools:
            raise ConfigurationError(
                f"image_size {image_size} collapses under the {pools} pooling "
                f"stages of {config}; need at least {2**pools}"
            )
        self.config_name = config
        rng = new_rng(derive_seed(seed, "vgg", config))
        layers: list[nn.Module] = []
        channels = in_channels
        last_width = channels
        for token in VGG_CONFIGS[config]:
            if token == "M":
                layers.append(nn.MaxPool2d(2))
                continue
            width = scaled_width(int(token), scale)
            layers.append(nn.Conv2d(channels, width, 3, padding=1, rng=rng))
            if batch_norm:
                layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            channels = width
            last_width = width
        self.features = nn.Sequential(*layers)
        self.flatten = nn.Flatten()
        hidden = scaled_width(512, scale)
        self.classifier = nn.Sequential(
            nn.Linear(last_width, hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(dropout, rng=derive_seed(seed, "vgg-drop")),
            nn.Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: object) -> object:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)


def build_vgg16(
    num_classes: int = 10, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> VGG:
    """Registry builder for VGG16 (paper configuration)."""
    return VGG("vgg16", num_classes=num_classes, scale=scale, seed=seed, **kwargs)


def build_vgg11(
    num_classes: int = 10, scale: float = 1.0, seed: int = 0, **kwargs: object
) -> VGG:
    """Registry builder for the lighter VGG11 variant."""
    return VGG("vgg11", num_classes=num_classes, scale=scale, seed=seed, **kwargs)
