"""Neural-network layers, containers, losses and initialisers.

A compact, PyTorch-shaped layer library over :mod:`repro.autograd`,
providing everything the paper's models (AlexNet, VGG16, ResNet50) need.
"""

from repro.nn import init
from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.container import ModuleList, Sequential
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.flatten import Flatten
from repro.nn.linear import Linear
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.module import (
    Module,
    eval_mode,
    invalidate_runtime_plans,
    is_warmup,
    register_runtime_plan,
    warmup_mode,
)
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.parameter import Parameter
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LeakyReLU",
    "Linear",
    "MSELoss",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "eval_mode",
    "init",
    "invalidate_runtime_plans",
    "is_warmup",
    "register_runtime_plan",
    "warmup_mode",
]
