"""Standard activation modules.

The protected activations (GBReLU, FitReLU, …) live in :mod:`repro.core`;
this module provides the unprotected baselines that model surgery swaps
out.
"""

from __future__ import annotations

from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["Identity", "LeakyReLU", "ReLU", "Sigmoid", "Softmax", "Tanh"]


class ReLU(Module):
    """``max(0, x)`` — the activation FitAct replaces (paper Eq. 3)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent (the bounded activation of Hong et al. [17])."""

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.tanh(x)


class Softmax(Module):
    """Softmax along ``axis`` (default: class axis)."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = int(axis)

    def forward(self, x: Tensor) -> Tensor:
        return ops_nn.softmax(x, axis=self.axis)

    def extra_repr(self) -> str:
        return f"axis={self.axis}"


class Identity(Module):
    """Pass-through module (handy placeholder in surgery and tests)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
