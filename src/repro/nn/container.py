"""Module containers."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["ModuleList", "Sequential"]


class Sequential(Module):
    """Chain modules in order; children are addressable by index.

    >>> from repro import nn
    >>> block = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU())
    >>> len(block)
    2
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for child in self.children():
            x = child(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(self._normalize(index))]

    def __setitem__(self, index: int, module: Module) -> None:
        setattr(self, str(self._normalize(index)), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.children())

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self

    def _normalize(self, index: int) -> int:
        length = len(self._modules)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"index {index} out of range for Sequential of length {length}")
        return index


class ModuleList(Module):
    """List of modules registered for traversal (no implicit forward)."""

    def __init__(self, modules: Sequence[Module] = ()) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        if index < 0:
            index += len(self._modules)
        return self._modules[str(index)]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.children())

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError("ModuleList has no forward; iterate it explicitly")
