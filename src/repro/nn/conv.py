"""2-D convolution layer."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import ops_conv
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution over NCHW inputs.

    Weight layout is OIHW (``(O, C/groups, kh, kw)``).  ``stride`` and
    ``padding`` accept an int or pair; ``groups > 1`` runs a grouped
    convolution and ``groups == in_channels`` the depthwise convolution
    of the MobileNet family.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        groups: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.groups = int(groups)
        if self.groups < 1:
            raise ShapeError(f"groups must be >= 1, got {groups}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ShapeError(
                f"channels ({self.in_channels} in, {self.out_channels} out) "
                f"must divide by groups {self.groups}"
            )
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kernel_size = tuple(int(k) for k in kernel_size)
        # Normalise to canonical 2-tuples up front, so extra_repr,
        # checkpoint metadata, and the runtime compiler all see one
        # form regardless of how the layer was constructed.
        self.stride = ops_conv.as_pair(stride, "stride")
        self.padding = ops_conv.as_pair(padding, "padding")
        shape = (
            self.out_channels,
            self.in_channels // self.groups,
            *self.kernel_size,
        )
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = (
                self.in_channels
                // self.groups
                * self.kernel_size[0]
                * self.kernel_size[1]
            )
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(
                rng.uniform(-bound, bound, size=self.out_channels).astype(np.float32)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        return ops_conv.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def extra_repr(self) -> str:
        groups = f", groups={self.groups}" if self.groups != 1 else ""
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, "
            f"bias={self.bias is not None}{groups}"
        )
