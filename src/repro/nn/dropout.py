"""Dropout regularisation."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.utils.rng import new_rng

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: zero activations with probability ``p`` in
    training, scale survivors by ``1/(1-p)``; identity in eval mode.

    The mask generator is owned by the layer so training runs are
    reproducible given the construction seed.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)

    def extra_repr(self) -> str:
        return f"p={self.p}"
