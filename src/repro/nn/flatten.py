"""Flatten layer bridging conv stacks and classifier heads."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Collapse all dims from ``start_dim`` onward (default keeps batch)."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = int(start_dim)

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)

    def extra_repr(self) -> str:
        return f"start_dim={self.start_dim}"
