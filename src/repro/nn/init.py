"""Weight initialisation schemes.

All functions take an explicit ``numpy.random.Generator`` so model
construction is deterministic given a seed — a prerequisite for
reproducible fault campaigns that compare protection schemes on the
*same* trained weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "calculate_fan",
    "constant",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]


def calculate_fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of ``shape``.

    Linear weights are (out, in); conv weights are (out, in, kh, kw) with
    the receptive field folded into both fans.
    """
    if len(shape) < 2:
        raise ShapeError(f"fan calculation requires >=2-D weights, got {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    a: float = math.sqrt(5.0),
    dtype: type = np.float32,
) -> np.ndarray:
    """He-uniform init (PyTorch's default for conv/linear with a=sqrt(5))."""
    fan_in, _ = calculate_fan(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    dtype: type = np.float32,
) -> np.ndarray:
    """He-normal init: N(0, sqrt(2/fan_in)) — suits ReLU-family nets."""
    fan_in, _ = calculate_fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    dtype: type = np.float32,
) -> np.ndarray:
    """Glorot-uniform init."""
    fan_in, fan_out = calculate_fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    dtype: type = np.float32,
) -> np.ndarray:
    """Glorot-normal init."""
    fan_in, fan_out = calculate_fan(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(dtype)


def zeros(shape: tuple[int, ...], dtype: type = np.float32) -> np.ndarray:
    """All-zero init (biases, BN shift)."""
    return np.zeros(shape, dtype=dtype)


def constant(shape: tuple[int, ...], value: float, dtype: type = np.float32) -> np.ndarray:
    """Constant fill (BN scale, bound initial values in tests)."""
    return np.full(shape, value, dtype=dtype)
