"""Fully-connected layer."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import ops_basic
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x Wᵀ + b`` (paper Eq. 1).

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Include the additive bias term (default True).
    rng:
        Generator (or seed) for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.kaiming_uniform((self.out_features, self.in_features), rng)
        )
        if bias:
            bound = 1.0 / math.sqrt(self.in_features)
            self.bias = Parameter(
                rng.uniform(-bound, bound, size=self.out_features).astype(np.float32)
            )
        else:
            self.register_parameter("bias", None)

    def forward(self, x: Tensor) -> Tensor:
        out = ops_basic.matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
