"""Loss functions.

:class:`CrossEntropyLoss` drives both FitAct training stages; the
post-training stage wraps it with the bound regulariser (paper Eq. 10) in
:mod:`repro.core.post_training`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_nn, ops_shape
from repro.autograd.tensor import Tensor, as_tensor
from repro.errors import ShapeError
from repro.nn.module import Module

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets.

    Parameters
    ----------
    label_smoothing:
        Mix the one-hot target with the uniform distribution by this
        amount (0 disables).
    reduction:
        ``"mean"`` (default), ``"sum"`` or ``"none"``.
    """

    def __init__(self, label_smoothing: float = 0.0, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
        if logits.ndim != 2:
            raise ShapeError(f"expected (N, classes) logits, got shape {logits.shape}")
        targets = np.asarray(
            targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64
        )
        if targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"expected targets of shape ({logits.shape[0]},), got {targets.shape}"
            )
        log_probs = ops_nn.log_softmax(logits, axis=1)
        picked = ops_shape.gather(log_probs, targets[:, None], axis=1)
        nll = -picked.reshape(-1)
        if self.label_smoothing > 0.0:
            smooth = -log_probs.mean(axis=1)
            eps = self.label_smoothing
            nll = (1.0 - eps) * nll + eps * smooth
        if self.reduction == "mean":
            return nll.mean()
        if self.reduction == "sum":
            return nll.sum()
        return nll

    def extra_repr(self) -> str:
        return f"label_smoothing={self.label_smoothing}, reduction={self.reduction}"


class MSELoss(Module):
    """Mean squared error (used in regression-shaped unit tests)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
        target = as_tensor(target)
        if prediction.shape != target.shape:
            raise ShapeError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )
        diff = prediction - target.detach()
        squared = diff * diff
        if self.reduction == "mean":
            return squared.mean()
        if self.reduction == "sum":
            return squared.sum()
        return squared

    def extra_repr(self) -> str:
        return f"reduction={self.reduction}"
