"""Module base class: parameter registration, traversal, (de)serialisation.

A deliberately PyTorch-shaped API so the reproduction reads like the
original FitAct codebase would: ``named_parameters``, ``state_dict``,
``train``/``eval``, and attribute-assignment registration of children.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError, ShapeError
from repro.nn.parameter import Parameter

__all__ = [
    "Module",
    "eval_mode",
    "invalidate_runtime_plans",
    "is_eval_forced",
    "is_warmup",
    "register_runtime_plan",
    "warmup_mode",
]

# ----------------------------------------------------------------------
# Thread-local inference override
# ----------------------------------------------------------------------
# Inference-mode forwards (fault campaigns, the serving stack) must not
# mutate the *shared* ``training`` flag: under ``repro.serve`` several
# threads run forwards on the same model concurrently, and a
# set-eval/restore dance in one thread can leave another thread's
# forward running BatchNorm in training mode (updating running stats
# mid-serve).  Instead, ``eval_mode()`` forces ``Module.training`` to
# read False *in the current thread only* — other threads, and the
# stored flag itself, are untouched.
_eval_override = threading.local()


def is_eval_forced() -> bool:
    """Whether the current thread is inside an :func:`eval_mode` block."""
    return getattr(_eval_override, "depth", 0) > 0


@contextmanager
def eval_mode() -> Iterator[None]:
    """Force eval-mode semantics for the current thread only.

    Inside the block every ``module.training`` read returns False
    (BatchNorm uses running stats, Dropout is the identity) without
    writing to any module — safe to nest and safe to run concurrently
    with other threads training or serving the same model.
    """
    depth = getattr(_eval_override, "depth", 0)
    _eval_override.depth = depth + 1
    try:
        yield
    finally:
        _eval_override.depth = depth


# ----------------------------------------------------------------------
# Warm-up override
# ----------------------------------------------------------------------
# Compiled plans run one throwaway forward at build time to allocate
# buffers and validate shapes.  That pass must be side-effect free even
# for modules with per-forward state — most importantly transient
# activation-fault layers, whose random streams would otherwise be
# advanced by the warm-up and desynchronised from the module path.
_warmup_override = threading.local()


def is_warmup() -> bool:
    """Whether the current thread is inside a :func:`warmup_mode` block."""
    return getattr(_warmup_override, "depth", 0) > 0


@contextmanager
def warmup_mode() -> Iterator[None]:
    """Mark forwards on the current thread as shape-probing warm-ups.

    Stateful per-forward effects (transient activation-fault injection)
    check this flag and skip themselves, so a compile-time warm pass
    consumes no random numbers and perturbs no counters.
    """
    depth = getattr(_warmup_override, "depth", 0)
    _warmup_override.depth = depth + 1
    try:
        yield
    finally:
        _warmup_override.depth = depth


# ----------------------------------------------------------------------
# Compiled-plan bookkeeping
# ----------------------------------------------------------------------
def register_runtime_plan(module: "Module", plan: object) -> None:
    """Attach a compiled inference plan to the module it was built from.

    The module keeps only a weak reference; plans register themselves so
    parameter-mutating code paths (fault injection, checkpoint loads,
    quantisation) can call :func:`invalidate_runtime_plans` and have
    every plan recompute its folded constants before its next forward.
    """
    plans = module.__dict__.setdefault("_runtime_plans", [])
    plans.append(weakref.ref(plan))


def invalidate_runtime_plans(module: "Module") -> None:
    """Mark every compiled plan of ``module`` stale (dead refs pruned)."""
    plans = module.__dict__.get("_runtime_plans")
    if not plans:
        return
    alive = []
    for ref in plans:
        plan = ref()
        if plan is not None:
            plan.invalidate()
            alive.append(ref)
    module.__dict__["_runtime_plans"] = alive


class Module:
    """Base class for all neural-network modules.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Assigning a :class:`Parameter`, :class:`Module`, or registered buffer
    as an attribute automatically records it for traversal, optimisation,
    state saving, and fault injection.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_training", True)

    # ------------------------------------------------------------------
    # Training flag
    # ------------------------------------------------------------------
    @property
    def training(self) -> bool:
        """Training-mode flag, as seen by the *current thread*.

        Reads False inside an :func:`eval_mode` block regardless of the
        stored flag, so inference-mode forwards never need to mutate
        (and racily restore) shared module state.  Assignment writes the
        stored flag as before.
        """
        if is_eval_forced():
            return False
        return self.__dict__.get("_training", True)

    @training.setter
    def training(self, mode: bool) -> None:
        self.__dict__["_training"] = bool(mode)

    # ------------------------------------------------------------------
    # Attribute routing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        registries_ready = "_parameters" in self.__dict__
        if isinstance(value, Parameter):
            if not registries_ready:
                raise ConfigurationError(
                    "assign parameters after calling Module.__init__()"
                )
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
            # Plain dict assignment: replacing an existing key keeps its
            # position, so swapping a child (model surgery) preserves the
            # forward order of containers like Sequential.
            self._parameters[name] = value
        elif isinstance(value, Module):
            if not registries_ready:
                raise ConfigurationError(
                    "assign submodules after calling Module.__init__()"
                )
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
            self._modules[name] = value
        else:
            if registries_ready:
                self._parameters.pop(name, None)
                self._buffers.pop(name, None)
                self._modules.pop(name, None)
            object.__setattr__(self, name, value)
            return
        # Also expose via normal attribute access.
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray | None) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats).

        Buffers are saved in ``state_dict`` but are *not* parameters, so
        they are excluded from both optimisation and the fault space.
        """
        if value is not None:
            value = np.asarray(value)
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Parameter | None) -> None:
        """Register a (possibly absent) parameter slot by name."""
        self._parameters[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer's value (keeps registry in sync)."""
        if name not in self._buffers:
            raise ConfigurationError(f"unknown buffer {name!r}")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Drop compiled-plan weakrefs: they are process-local state.

        Weak references cannot pickle, and a transported model has no
        live plans anyway — consumers (e.g. a campaign worker's
        ``Evaluator``) recompile lazily after transport.  Without this,
        compiling a plan would make the model unpicklable and break
        spawn-based campaign pools.
        """
        state = self.__dict__.copy()
        state.pop("_runtime_plans", None)
        return state

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        yield from self._modules.items()

    def children(self) -> Iterator["Module"]:
        for _, child in self.named_children():
            yield child

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if param is not None:
                yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            if buffer is not None:
                yield (f"{prefix}.{name}" if prefix else name), buffer
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def buffers(self) -> Iterator[np.ndarray]:
        for _, buffer in self.named_buffers():
            yield buffer

    def get_submodule(self, path: str) -> "Module":
        """Resolve a dotted module path (e.g. ``"features.3"``)."""
        module: Module = self
        if not path:
            return module
        for part in path.split("."):
            if part not in module._modules:
                raise ConfigurationError(f"no submodule {part!r} in path {path!r}")
            module = module._modules[part]
        return module

    def set_submodule(self, path: str, replacement: "Module") -> None:
        """Replace the submodule at a dotted path (used by model surgery)."""
        if not path:
            raise ConfigurationError("cannot replace the root module")
        parent_path, _, leaf = path.rpartition(".")
        parent = self.get_submodule(parent_path)
        if leaf not in parent._modules:
            raise ConfigurationError(f"no submodule {leaf!r} under {parent_path!r}")
        setattr(parent, leaf, replacement)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to self and every submodule (children first)."""
        for child in self.children():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------
    # Mode and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, requires_grad: bool = True) -> "Module":
        """Set ``requires_grad`` on every parameter (used to freeze ΘA)."""
        for param in self.parameters():
            param.requires_grad = requires_grad
        return self

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{dotted_name: array}`` of parameters and buffers (copies)."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(
        self, state: Mapping[str, np.ndarray], strict: bool = True
    ) -> None:
        """Load values produced by :meth:`state_dict`.

        With ``strict`` (default) every entry must match a parameter or
        buffer and vice versa; shapes must agree exactly.
        """
        own_params = dict(self.named_parameters())
        own_buffer_names = [name for name, _ in self.named_buffers()]
        matched: set[str] = set()
        for name, value in state.items():
            value = np.asarray(value)
            if name in own_params:
                param = own_params[name]
                if param.shape != value.shape:
                    raise ShapeError(
                        f"parameter {name!r}: expected shape {param.shape}, "
                        f"got {value.shape}"
                    )
                param.data = value.astype(param.dtype, copy=True)
                matched.add(name)
            elif name in own_buffer_names:
                self._assign_buffer_by_path(name, value)
                matched.add(name)
            elif strict:
                raise ConfigurationError(f"unexpected state entry {name!r}")
        if strict:
            missing = (set(own_params) | set(own_buffer_names)) - matched
            if missing:
                raise ConfigurationError(f"missing state entries: {sorted(missing)}")
        invalidate_runtime_plans(self)

    def _assign_buffer_by_path(self, path: str, value: np.ndarray) -> None:
        module_path, _, leaf = path.rpartition(".")
        module = self.get_submodule(module_path)
        current = module._buffers.get(leaf)
        if current is not None and np.asarray(current).shape != value.shape:
            raise ShapeError(
                f"buffer {path!r}: expected shape {np.asarray(current).shape}, "
                f"got {value.shape}"
            )
        module._update_buffer(leaf, value.copy())

    # ------------------------------------------------------------------
    # Repr
    # ------------------------------------------------------------------
    def extra_repr(self) -> str:
        """One-line summary of configuration, shown in :meth:`__repr__`."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        if len(lines) == 1:
            return lines[0] + ")"
        lines.append(")")
        return "\n".join(lines)
