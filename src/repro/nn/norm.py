"""Batch normalisation layers.

Implemented with composed autograd primitives (mean/var/rsqrt), so the
backward pass is derived automatically and verified by gradcheck in
``tests/nn/test_norm.py``.  Running statistics live in *buffers*: they are
saved with the model but are outside the paper's parameter fault space.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn.module import Module
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNormBase(Module):
    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        affine: bool = True,
    ) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.affine = bool(affine)
        if affine:
            self.weight = Parameter(np.ones(self.num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(self.num_features, dtype=np.float32))
        else:
            self.register_parameter("weight", None)
            self.register_parameter("bias", None)
        self.register_buffer("running_mean", np.zeros(self.num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(self.num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    # Subclasses define which axes are reduced and how stats broadcast.
    _reduce_axes: tuple[int, ...] = ()

    def _check_input(self, x: Tensor) -> None:
        raise NotImplementedError

    def _stat_shape(self, ndim: int) -> tuple[int, ...]:
        shape = [1] * ndim
        shape[1] = self.num_features
        return tuple(shape)

    def forward(self, x: Tensor) -> Tensor:
        self._check_input(x)
        stat_shape = self._stat_shape(x.ndim)
        if self.training:
            mean = x.mean(axis=self._reduce_axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=self._reduce_axes, keepdims=True)
            self._update_running_stats(mean.data, var.data, x)
        else:
            mean = Tensor(self.running_mean.reshape(stat_shape))
            centered = x - mean
            var = Tensor(self.running_var.reshape(stat_shape))
        inv_std = (var + self.eps) ** -0.5
        out = centered * inv_std
        if self.affine:
            out = out * self.weight.reshape(stat_shape) + self.bias.reshape(stat_shape)
        return out

    def _update_running_stats(self, mean: np.ndarray, var: np.ndarray, x: Tensor) -> None:
        count = x.size // self.num_features
        # Running var uses the unbiased estimator, matching PyTorch.
        unbiased = var * (count / max(count - 1, 1))
        m = self.momentum
        self._update_buffer(
            "running_mean",
            ((1 - m) * self.running_mean + m * mean.reshape(-1)).astype(np.float32),
        )
        self._update_buffer(
            "running_var",
            ((1 - m) * self.running_var + m * unbiased.reshape(-1)).astype(np.float32),
        )
        self._update_buffer("num_batches_tracked", self.num_batches_tracked + 1)

    def extra_repr(self) -> str:
        return (
            f"{self.num_features}, eps={self.eps}, momentum={self.momentum}, "
            f"affine={self.affine}"
        )


class BatchNorm2d(_BatchNormBase):
    """Batch normalisation over NCHW feature maps (per-channel stats)."""

    _reduce_axes = (0, 2, 3)

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2d expects NCHW input, got {x.ndim}-D")
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expects {self.num_features} channels, got {x.shape[1]}"
            )


class BatchNorm1d(_BatchNormBase):
    """Batch normalisation over (N, F) feature vectors."""

    _reduce_axes = (0,)

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != 2:
            raise ShapeError(f"BatchNorm1d expects (N, F) input, got {x.ndim}-D")
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expects {self.num_features} features, got {x.shape[1]}"
            )
