"""Trainable parameter type."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Parameter"]


class Parameter(Tensor):
    """A :class:`~repro.autograd.Tensor` registered as trainable state.

    Modules collect Parameters automatically on attribute assignment; the
    fault injector treats the set of parameters as the memory fault space
    (paper §VI-A2: weights, biases and activation-function parameters).
    """

    __slots__ = ()

    def __init__(self, data: np.ndarray | Tensor, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"
