"""Pooling layers."""

from __future__ import annotations

from repro.autograd import ops_conv, ops_reduce
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["AvgPool2d", "GlobalAvgPool2d", "MaxPool2d"]


class MaxPool2d(Module):
    """Max pooling; ``stride`` defaults to the kernel size."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops_conv.max_pool2d(
            x, self.kernel_size, stride=self.stride, padding=self.padding
        )

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AvgPool2d(Module):
    """Average pooling; ``stride`` defaults to the kernel size."""

    def __init__(
        self,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops_conv.avg_pool2d(
            x, self.kernel_size, stride=self.stride, padding=self.padding
        )

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2d(Module):
    """Mean over the spatial axes: (N, C, H, W) → (N, C).

    ResNet's final pooling stage; implemented as a reduction so it adapts
    to any spatial size.
    """

    def forward(self, x: Tensor) -> Tensor:
        return ops_reduce.mean(x, axis=(2, 3))
