"""Unified observability: metrics registry, span tracer, plan profiler.

``repro.obs`` is the low-level telemetry layer every higher layer
(runtime, campaigns, store, serving, CLI) feeds:

- :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms
  behind one lock, with a JSON snapshot and Prometheus text exposition
  (``repro.serve``'s ``ServerMetrics`` is built on it);
- :func:`span` — context-manager tracing into a bounded ring buffer,
  exported as Chrome-trace/Perfetto JSON (:func:`export_chrome_trace`);
- :class:`KernelProfiler` / :class:`PlanProfile` — opt-in per-kernel
  gather/GEMM/epilogue timing for compiled inference plans
  (``plan.profile()``, ``repro profile``).

The hard invariant, enforced by tests and the ``obs-smoke`` CI job:
telemetry is strictly *side-band*.  Enabling any of it never changes a
journaled byte, an RNG stream, or a float result, and disabled
instrumentation costs < 2% (``benchmarks/test_bench_obs.py``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    bucket_label,
    default_registry,
)
from repro.obs.profile import KernelProfiler, PlanProfile
from repro.obs.trace import (
    SpanRecord,
    chrome_trace,
    configure_tracing,
    export_chrome_trace,
    reset_tracing,
    span,
    trace_events,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "KernelProfiler",
    "MetricsRegistry",
    "PlanProfile",
    "SpanRecord",
    "bucket_label",
    "chrome_trace",
    "configure_tracing",
    "default_registry",
    "export_chrome_trace",
    "reset_tracing",
    "span",
    "trace_events",
    "tracing_enabled",
]
