"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` owns a flat namespace of metric *families*
(a name plus a label schema); each combination of label values is a
*series* inside its family.  The design is deliberately zero-dependency
and small — the Prometheus client library's data model, reduced to what
this repo's serving and campaign paths actually emit:

- every mutation takes the registry's one lock (observers are cheap:
  an integer add or a bucket increment), so families are safe to share
  across serve-lane threads;
- :meth:`MetricsRegistry.snapshot` returns a JSON-ready dict, deep
  copied under the lock, so handlers serialise without racing the hot
  path;
- :meth:`MetricsRegistry.render_prometheus` emits the text exposition
  format (``# HELP``/``# TYPE``, cumulative ``le`` buckets,
  ``_sum``/``_count``) that ``GET /metrics?format=prometheus`` serves.

Registration is idempotent: asking for an already-registered name with
the same kind/labels/buckets returns the existing family (so module
import order never matters), while a conflicting re-registration fails
loudly.

Telemetry is strictly side-band (see docs/OBSERVABILITY.md): nothing in
this module may influence journaled bytes, RNG streams, or float
results — it only ever *observes*.
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "bucket_label",
    "default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: Label names the exposition format claims for itself.
_RESERVED_LABELS = frozenset({"le", "quantile"})


def bucket_label(bound: float) -> str:
    """Prometheus ``le`` label for a bucket upper bound (``+Inf`` for inf)."""
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a HELP line per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Exposition-format number: integral counts render without a dot."""
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    Observations are binned internally, and :meth:`snapshot` emits
    *cumulative* bucket counts — ``le_X`` counts every observation
    ``<= X``, as ``histogram_quantile``-style consumers expect.  Not
    thread-safe on its own; the owning family (or, historically,
    ``ServerMetrics``) serialises access.  A final ``+Inf`` bound is
    appended when the caller's bounds do not end in one, so the last
    cumulative bucket always equals the total count.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        resolved = tuple(float(bound) for bound in bounds)
        if any(b >= a for b, a in zip(resolved, resolved[1:])):
            raise ValueError(
                f"histogram bounds must be strictly increasing, got {bounds!r}"
            )
        if not resolved or not math.isinf(resolved[-1]):
            resolved = resolved + (math.inf,)
        self.bounds = resolved
        self.counts = [0] * len(resolved)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break

    def cumulative_counts(self) -> list[int]:
        """Per-bound cumulative counts (the ``le`` series)."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Standard ``histogram_quantile`` semantics: find the bucket the
        target rank falls in and interpolate linearly inside it (from
        the previous bound, or 0 for the first bucket).  Values landing
        in the ``+Inf`` bucket are clamped to the last finite bound —
        the estimate is then a lower bound, which is the conservative
        direction for latency SLO burn accounting.  Returns 0.0 with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        running = 0
        for index, bound in enumerate(self.bounds):
            previous = running
            running += self.counts[index]
            if running >= rank and self.counts[index] > 0:
                if math.isinf(bound):
                    finite = [b for b in self.bounds if not math.isinf(b)]
                    return finite[-1] if finite else 0.0
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                fraction = (rank - previous) / self.counts[index]
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
        finite = [b for b in self.bounds if not math.isinf(b)]
        return finite[-1] if finite else 0.0

    def snapshot(self) -> dict[str, object]:
        buckets: dict[str, int] = {}
        for bound, cumulative in zip(self.bounds, self.cumulative_counts()):
            buckets[f"le_{bucket_label(bound)}"] = cumulative
        return {
            "count": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.sum / self.total, 6) if self.total else 0.0,
            "buckets": buckets,
        }


def _label_key(
    family: "_Family", labels: dict[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(family.labelnames):
        raise ValueError(
            f"metric {family.name!r} takes labels "
            f"{list(family.labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in family.labelnames)


class _Family:
    """Shared family state: name, help text, label schema, series map."""

    kind = ""

    def __init__(
        self,
        lock: threading.Lock,
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        self._lock = lock
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def signature(self) -> tuple[object, ...]:
        """Identity under idempotent re-registration."""
        return (self.kind, self.labelnames)


class Counter(_Family):
    """Monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(
        self,
        lock: threading.Lock,
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        super().__init__(lock, name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(self, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(self, labels)
        with self._lock:
            return self._series.get(key, 0)

    def series(self) -> dict[tuple[str, ...], float]:
        with self._lock:
            return dict(self._series)


class Gauge(_Family):
    """A value that goes up and down (progress, rates, ETAs)."""

    kind = "gauge"

    def __init__(
        self,
        lock: threading.Lock,
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        super().__init__(lock, name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self, labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(self, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = _label_key(self, labels)
        with self._lock:
            return self._series.get(key, 0)

    def series(self) -> dict[tuple[str, ...], float]:
        with self._lock:
            return dict(self._series)


class HistogramFamily(_Family):
    """Fixed-bucket distribution, optionally split by labels."""

    kind = "histogram"

    def __init__(
        self,
        lock: threading.Lock,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(lock, name, help, labelnames)
        self.buckets = Histogram(buckets).bounds  # validated + +Inf-capped
        self._series: dict[tuple[str, ...], Histogram] = {}

    def signature(self) -> tuple[object, ...]:
        return (self.kind, self.labelnames, self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = Histogram(self.buckets)
            series.observe(value)

    def snapshot_series(self, **labels: object) -> dict[str, object]:
        """One series' JSON snapshot (zeros when never observed)."""
        key = _label_key(self, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return Histogram(self.buckets).snapshot()
            return series.snapshot()

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-interpolated quantile of one series (0.0 if empty)."""
        key = _label_key(self, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return 0.0
            return series.quantile(q)

    def series(self) -> dict[tuple[str, ...], Histogram]:
        with self._lock:
            # Snapshot copies: callers must not race live bucket arrays.
            out: dict[tuple[str, ...], Histogram] = {}
            for key, hist in self._series.items():
                copy = Histogram(self.buckets)
                copy.counts = list(hist.counts)
                copy.total = hist.total
                copy.sum = hist.sum
                out[key] = copy
            return out


class MetricsRegistry:
    """A namespace of metric families sharing one lock.

    The module-level :func:`default_registry` serves process-wide
    consumers (campaign progress, CLI views); components with their own
    lifecycle (one ``ServerMetrics`` per :class:`~repro.serve.ServeApp`)
    own private registries so concurrent instances never share counts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def __getstate__(self) -> dict[str, object]:
        """Registries hold a lock; refuse to pickle (RPL007)."""
        raise TypeError(
            "MetricsRegistry holds a lock and cannot be pickled; export "
            "snapshot() or render_prometheus() instead"
        )

    def _register(self, family: _Family) -> _Family:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        for label in family.labelnames:
            if (
                not _LABEL_RE.match(label)
                or label in _RESERVED_LABELS
                or label.startswith("__")
            ):
                raise ValueError(
                    f"invalid label name {label!r} on metric {family.name!r}"
                )
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if existing.signature() != family.signature():
                    raise ValueError(
                        f"metric {family.name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        family = self._register(Counter(self._lock, name, help, labelnames))
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        family = self._register(Gauge(self._lock, name, help, labelnames))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Iterable[float],
        labelnames: Sequence[str] = (),
    ) -> HistogramFamily:
        family = self._register(
            HistogramFamily(self._lock, name, help, labelnames, tuple(buckets))
        )
        assert isinstance(family, HistogramFamily)
        return family

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Zero every series, keeping registrations (test isolation).

        Families stay registered so module-level handles (e.g. the
        store's journaled-trials counter) keep feeding the same family
        after a reset; only the accumulated series are dropped.
        """
        with self._lock:
            for family in self._families.values():
                family._series.clear()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """JSON-ready view: ``{name: {kind, help, series: [...]}}``."""
        out: dict[str, object] = {}
        for family in self.families():
            series: list[dict[str, object]] = []
            if isinstance(family, HistogramFamily):
                for key, hist in sorted(family.series().items()):
                    series.append(
                        {
                            "labels": dict(zip(family.labelnames, key)),
                            **hist.snapshot(),
                        }
                    )
            elif isinstance(family, (Counter, Gauge)):
                for key, value in sorted(family.series().items()):
                    series.append(
                        {
                            "labels": dict(zip(family.labelnames, key)),
                            "value": value,
                        }
                    )
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Text exposition format (``text/plain; version=0.0.4``)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, HistogramFamily):
                for key, hist in sorted(family.series().items()):
                    base = list(zip(family.labelnames, key))
                    for bound, cumulative in zip(
                        hist.bounds, hist.cumulative_counts()
                    ):
                        le = [*base, ("le", bucket_label(bound))]
                        lines.append(
                            f"{family.name}_bucket{_render_labels(le)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(base)} "
                        f"{_format_value(hist.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(base)} "
                        f"{hist.total}"
                    )
            elif isinstance(family, (Counter, Gauge)):
                for key, value in sorted(family.series().items()):
                    labels = list(zip(family.labelnames, key))
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(pairs: Sequence[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (campaign progress, CLI live views)."""
    return _DEFAULT
