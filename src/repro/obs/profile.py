"""Per-kernel plan profiling: wall time split into gather/GEMM/epilogue.

The compiled runtime (PR 4) picks a convolution execution tier per
layer at plan build time; until now the only way to judge those
decisions was whole-model wall clock.  A :class:`KernelProfiler`
attached to an :class:`~repro.runtime.plan.InferencePlan` records, for
every kernel step (including the kernels nested inside residual
blocks):

- ``total``   — the step's full ``run()`` wall time;
- ``gather``  — column-matrix assembly: the im2col fill, the 1x1
  strided copy, the grouped window copy, and padding copies;
- ``gemm``    — the BLAS call (or grouped einsum) itself;
- ``epilogue``— everything else, *derived* as
  ``total - gather - gemm - children``: bias add, BatchNorm vectors,
  the channels-last→NCHW transpose, and the fused activation (for a
  residual step: the add + activation around its child kernels).

The profiler is opt-in (``plan.profile()`` for a one-shot report,
``compile_model(profile=True)`` for a persistent attachment); detached
plans pay only a ``prof is None`` test per instrumented section.
Profiled forwards run under ``warmup_mode`` so transient
activation-fault layers never advance their random streams — profiling
a campaign's plan is side-band by construction.

Timing flows through :meth:`KernelProfiler.now` (the repo's RPL009
rule keeps raw clock calls out of instrumented modules), and phase
intervals double as :class:`~repro.obs.trace.SpanRecord` events, so
:meth:`PlanProfile.chrome_trace` renders the same Chrome-trace JSON the
span tracer exports — one file format for Perfetto either way.
"""

from __future__ import annotations

import threading
import time

from repro.obs.trace import SpanRecord, chrome_trace

__all__ = ["KernelProfiler", "PlanProfile"]

#: Cap on buffered phase/step events: deep plans at many repeats stay
#: far below this; a runaway persistent attachment must not grow RAM.
MAX_EVENTS = 100_000


class KernelProfiler:
    """Accumulates per-kernel wall time for one plan.

    Pure data plus a clock — no locks (the owning plan serialises its
    forwards), no influence on results.  ``attach`` registers the
    kernel tree in execution order; ``step``/``phase`` accumulate; and
    ``rows`` averages over the recorded forwards.
    """

    def __init__(self) -> None:
        self._labels: dict[int, str] = {}
        self._names: dict[str, str] = {}
        self._order: list[str] = []
        self._children: dict[str, list[str]] = {}
        self._top_level: list[str] = []
        self._totals: dict[str, float] = {}
        self._phases: dict[str, dict[str, float]] = {}
        self._calls: dict[str, int] = {}
        self.forwards = 0
        self.events: list[SpanRecord] = []

    @staticmethod
    def now() -> float:
        """The profiling clock (monotonic seconds)."""
        return time.perf_counter()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def attach(self, steps: list[object]) -> None:
        """Register a plan's kernel tree (recursing into residual blocks).

        Re-attaching (a plan ``refresh()`` rebuilds its kernels) resets
        all accumulation — mixing rows across kernel generations would
        double-count steps and report retired kernels.
        """
        self._labels.clear()
        self._names.clear()
        self._order.clear()
        self._children.clear()
        self._totals.clear()
        self._phases.clear()
        self._calls.clear()
        self.forwards = 0
        self.events.clear()
        self._top_level = self._register(steps, prefix="")

    def _register(self, steps: list[object], prefix: str) -> list[str]:
        labels: list[str] = []
        for index, step in enumerate(steps):
            label = f"{prefix}{index}"
            self._labels[id(step)] = label
            describe = getattr(step, "describe", None)
            self._names[label] = (
                describe() if callable(describe) else type(step).__name__
            )
            self._order.append(label)
            self._totals[label] = 0.0
            self._phases[label] = {}
            self._calls[label] = 0
            children: list[str] = []
            child_kernels = getattr(step, "child_kernels", None)
            if callable(child_kernels):
                for branch, sub_steps in child_kernels():
                    children.extend(
                        self._register(sub_steps, prefix=f"{label}.{branch}.")
                    )
            self._children[label] = children
            labels.append(label)
        return labels

    # ------------------------------------------------------------------
    # Accumulation (called from instrumented kernels and the plan)
    # ------------------------------------------------------------------
    def begin_forward(self) -> None:
        self.forwards += 1

    def step(self, kernel: object, start: float, end: float) -> None:
        """Record one kernel step's full ``run()`` interval."""
        label = self._labels.get(id(kernel))
        if label is None:
            return
        self._totals[label] += end - start
        self._calls[label] += 1
        self._record_event(f"plan.step.{label}", self._names[label], start, end)

    def phase(
        self, kernel: object, phase: str, start: float, end: float
    ) -> None:
        """Record one gather/GEMM sub-interval inside a kernel step."""
        label = self._labels.get(id(kernel))
        if label is None:
            return
        phases = self._phases[label]
        phases[phase] = phases.get(phase, 0.0) + (end - start)
        self._record_event(f"plan.{phase}.{label}", phase, start, end)

    def _record_event(
        self, name: str, detail: str, start: float, end: float
    ) -> None:
        if len(self.events) >= MAX_EVENTS:
            return
        thread = threading.current_thread()
        self.events.append(
            SpanRecord(
                name=name,
                start=start,
                end=end,
                thread_id=thread.ident or 0,
                thread_name=thread.name,
                attrs=(("detail", detail),),
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def rows(self) -> list[dict[str, object]]:
        """Per-kernel averages (ms per forward), in execution order.

        ``epilogue_ms`` is derived: the step total minus its own
        gather/GEMM phases minus nested child totals, floored at zero
        (clock noise can make the difference marginally negative).
        """
        forwards = max(self.forwards, 1)
        rows: list[dict[str, object]] = []
        for label in self._order:
            total = self._totals[label]
            gather = self._phases[label].get("gather", 0.0)
            gemm = self._phases[label].get("gemm", 0.0)
            children = sum(
                self._totals[child] for child in self._children[label]
            )
            epilogue = max(0.0, total - gather - gemm - children)
            rows.append(
                {
                    "step": label,
                    "kernel": self._names[label],
                    "calls": self._calls[label],
                    "total_ms": total / forwards * 1e3,
                    "gather_ms": gather / forwards * 1e3,
                    "gemm_ms": gemm / forwards * 1e3,
                    "epilogue_ms": epilogue / forwards * 1e3,
                }
            )
        return rows

    def result(self) -> "PlanProfile":
        return PlanProfile(
            rows=self.rows(),
            forwards=self.forwards,
            events=list(self.events),
            top_level=list(self._top_level),
        )


class PlanProfile:
    """One profiling run's report: per-kernel rows plus raw events."""

    def __init__(
        self,
        rows: list[dict[str, object]],
        forwards: int,
        events: list[SpanRecord],
        top_level: list[str],
    ) -> None:
        self.rows = rows
        self.forwards = forwards
        self.events = events
        self._top_level = set(top_level)

    @property
    def total_ms(self) -> float:
        """Mean per-forward wall time summed over top-level steps."""
        return sum(
            float(row["total_ms"])
            for row in self.rows
            if str(row["step"]) in self._top_level
        )

    def table(self) -> str:
        """The per-layer text table ``repro profile`` prints."""
        headers = ("step", "kernel", "total ms", "gather", "gemm", "epilogue")
        body: list[tuple[str, ...]] = []
        for row in self.rows:
            body.append(
                (
                    str(row["step"]),
                    str(row["kernel"]),
                    f"{float(row['total_ms']):.3f}",
                    f"{float(row['gather_ms']):.3f}",
                    f"{float(row['gemm_ms']):.3f}",
                    f"{float(row['epilogue_ms']):.3f}",
                )
            )
        widths = [
            max(len(headers[col]), *(len(line[col]) for line in body))
            if body
            else len(headers[col])
            for col in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
            "  ".join("-" * width for width in widths),
        ]
        for line in body:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            )
        lines.append(
            f"total {self.total_ms:.3f} ms/forward "
            f"(mean over {self.forwards} forwards)"
        )
        return "\n".join(lines)

    def chrome_trace(self) -> dict[str, object]:
        """Chrome-trace JSON of the recorded step/phase intervals."""
        return chrome_trace(self.events)

    def write_chrome_trace(self, path: str) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns the event count."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")
        return len(self.events)
