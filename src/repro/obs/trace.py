"""Span tracer: context-manager spans into a bounded ring buffer.

The tracer instruments the seams that already exist — serve
request→batch→lane forward, campaign config→trial, compile→plan
forward — without ever touching results: spans observe wall time
(``time.perf_counter``, the monotonic duration clock) and record
nothing that any journaled or served byte depends on.

Disabled is the default and must stay near-free: ``span()`` returns a
shared no-op singleton, so an instrumented call site costs one function
call, one truth test, and a ``with`` enter/exit — measured at well
under 2% of any plan forward by ``benchmarks/test_bench_obs.py``.

Enabled, each span records name, attributes, thread, and a
``perf_counter`` interval into a ``collections.deque`` ring (bounded:
a serving process tracing every request must not grow without bound).
:func:`export_chrome_trace` writes the buffer in the Chrome trace /
Perfetto JSON format (``traceEvents`` with ``ph: "X"`` complete
events); load the file at https://ui.perfetto.dev or
``chrome://tracing``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from types import TracebackType
from typing import NamedTuple

from repro.utils.logging import get_logger

__all__ = [
    "SpanRecord",
    "chrome_trace",
    "configure_tracing",
    "export_chrome_trace",
    "reset_tracing",
    "span",
    "trace_events",
    "tracing_enabled",
]

_logger = get_logger("obs.trace")

DEFAULT_CAPACITY = 4096


class SpanRecord(NamedTuple):
    """One closed span (times are ``perf_counter`` seconds)."""

    name: str
    start: float
    end: float
    thread_id: int
    thread_name: str
    attrs: tuple[tuple[str, object], ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


class _TraceState:
    """Process-local tracer state behind one lock.

    Holds a lock and a live buffer; never pickled (module-private, and
    every public holder of obs state refuses pickling per RPL007).
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.enabled = False
        self.events: deque[SpanRecord] = deque(maxlen=DEFAULT_CAPACITY)

    def __getstate__(self) -> dict[str, object]:
        raise TypeError(
            "tracer state holds a lock and a live ring buffer and cannot "
            "be pickled; export_chrome_trace() instead"
        )


_STATE = _TraceState()


class _NullSpan:
    """The shared disabled span: enter/exit are no-ops."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; closing it appends one :class:`SpanRecord`."""

    __slots__ = ("name", "attrs", "start")

    def __init__(self, name: str, attrs: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0

    def __enter__(self) -> "_Span":
        self.start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = time.perf_counter()
        thread = threading.current_thread()
        record = SpanRecord(
            name=self.name,
            start=self.start,
            end=end,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attrs=self.attrs,
        )
        # deque.append with maxlen is atomic — no lock on the hot path.
        _STATE.events.append(record)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span %s %.3fms %s",
                record.name,
                record.duration * 1e3,
                dict(record.attrs),
            )


def span(name: str, **attrs: object) -> "_Span | _NullSpan":
    """Open a span; a no-op singleton when tracing is disabled.

    >>> with span("runtime.forward", steps=12):
    ...     pass
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return _Span(name, tuple(sorted(attrs.items())))


def tracing_enabled() -> bool:
    return _STATE.enabled


def configure_tracing(
    enabled: bool = True, capacity: int | None = None
) -> None:
    """Turn span recording on/off; optionally resize the ring buffer.

    Resizing drops buffered events (the deque is rebuilt); pass
    ``capacity=None`` to keep the current buffer.
    """
    with _STATE.lock:
        if capacity is not None:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            _STATE.events = deque(maxlen=capacity)
        _STATE.enabled = bool(enabled)


def reset_tracing() -> None:
    """Disable tracing and drop every buffered span (test isolation)."""
    with _STATE.lock:
        _STATE.enabled = False
        _STATE.events = deque(maxlen=DEFAULT_CAPACITY)


def trace_events() -> list[SpanRecord]:
    """The buffered spans, oldest first (a copy)."""
    return list(_STATE.events)


def chrome_trace(events: list[SpanRecord] | None = None) -> dict[str, object]:
    """The Chrome-trace JSON object for ``events`` (default: the buffer).

    Timestamps are microseconds relative to the earliest buffered span;
    ``cat`` is the span name's first dotted component (``serve``,
    ``campaign``, ``runtime``), which Perfetto uses for filtering.
    """
    records = trace_events() if events is None else events
    origin = min((r.start for r in records), default=0.0)
    trace_records: list[dict[str, object]] = []
    thread_names: dict[int, str] = {}
    for record in records:
        thread_names.setdefault(record.thread_id, record.thread_name)
        trace_records.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((record.start - origin) * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": 0,
                "tid": record.thread_id,
                "args": {key: _json_safe(value) for key, value in record.attrs},
            }
        )
    meta: list[dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(thread_names.items())
    ]
    return {"traceEvents": meta + trace_records, "displayTimeUnit": "ms"}


def _json_safe(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def export_chrome_trace(path: str) -> int:
    """Write the buffered spans as a Chrome-trace file; returns the count.

    Plain ``json.dump`` on purpose: trace files are diagnostics, not
    journaled artifacts, so the store's exact-float encoder contract
    (RPL005) does not apply outside ``repro/store/``.
    """
    records = trace_events()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records), handle)
        handle.write("\n")
    return len(records)
