"""Optimisers and learning-rate schedules (SGD for accuracy training,
Adam for FitAct bound post-training per paper §V-B)."""

from repro.optim.adam import Adam
from repro.optim.optimizer import Optimizer
from repro.optim.scheduler import CosineAnnealingLR, MultiStepLR, StepLR
from repro.optim.sgd import SGD

__all__ = [
    "SGD",
    "Adam",
    "CosineAnnealingLR",
    "MultiStepLR",
    "Optimizer",
    "StepLR",
]
