"""ADAM optimiser (Kingma & Ba) — the paper's post-training solver (§V-B)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    The FitAct post-training phase solves Eq. 9 with this optimiser over
    the bound parameters ΘR.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0.0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.betas = (float(beta1), float(beta2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._exp_avg: dict[int, np.ndarray] = {}
        self._exp_avg_sq: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        beta1, beta2 = self.betas
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        exp_avg = self._exp_avg.get(index)
        exp_avg_sq = self._exp_avg_sq.get(index)
        if exp_avg is None:
            exp_avg = np.zeros_like(param.data, dtype=np.float64)
            exp_avg_sq = np.zeros_like(param.data, dtype=np.float64)
        exp_avg = beta1 * exp_avg + (1.0 - beta1) * grad
        exp_avg_sq = beta2 * exp_avg_sq + (1.0 - beta2) * (grad * grad)
        self._exp_avg[index] = exp_avg
        self._exp_avg_sq[index] = exp_avg_sq

        step = self._step_count
        bias_correction1 = 1.0 - beta1**step
        bias_correction2 = 1.0 - beta2**step
        corrected_avg = exp_avg / bias_correction1
        corrected_sq = exp_avg_sq / bias_correction2
        update = self.lr * corrected_avg / (np.sqrt(corrected_sq) + self.eps)
        param.data = (param.data - update).astype(param.dtype, copy=False)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        for index, value in self._exp_avg.items():
            state[f"exp_avg.{index}"] = value.copy()
        for index, value in self._exp_avg_sq.items():
            state[f"exp_avg_sq.{index}"] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._exp_avg = {
            int(name.split(".", 1)[1]): np.asarray(value).copy()
            for name, value in state.items()
            if name.startswith("exp_avg.")
        }
        self._exp_avg_sq = {
            int(name.split(".", 1)[1]): np.asarray(value).copy()
            for name, value in state.items()
            if name.startswith("exp_avg_sq.")
        }
