"""Optimiser base class."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.parameter import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and step/zero_grad plumbing.

    The FitAct post-training stage builds an optimiser over *only* the
    activation-bound parameters ΘR, leaving the accuracy parameters ΘA
    untouched (paper §V-B: "only bound values ΘR would be adjusted").
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = [p for p in parameters]
        if not self.parameters:
            raise ConfigurationError("optimizer received an empty parameter list")
        seen: set[int] = set()
        for param in self.parameters:
            if not isinstance(param, Parameter):
                raise ConfigurationError(
                    f"optimizer expects Parameters, got {type(param).__name__}"
                )
            if id(param) in seen:
                raise ConfigurationError("optimizer received a duplicate parameter")
            seen.add(id(param))
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        self._step_count += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            self._update(index, param, param.grad)

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable optimiser state (subclasses add slot buffers)."""
        return {"step_count": np.asarray(self._step_count)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._step_count = int(state["step_count"])
