"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer

__all__ = ["CosineAnnealingLR", "MultiStepLR", "StepLR"]


class _Scheduler:
    """Base: remembers the optimiser's initial LR and rewrites it per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimiser's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.compute_lr(self.epoch)

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(_Scheduler):
    """Multiply LR by ``gamma`` at each epoch in ``milestones``."""

    def __init__(
        self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def compute_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma**passed


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def compute_lr(self, epoch: int) -> float:
        epoch = min(epoch, self.t_max)
        cosine = (1.0 + math.cos(math.pi * epoch / self.t_max)) / 2.0
        return self.eta_min + (self.base_lr - self.eta_min) * cosine
