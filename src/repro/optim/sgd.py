"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay.

    Used for the conventional accuracy-training stage; the velocity
    buffers are lazily allocated per parameter.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: Parameter, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            grad = grad + self.momentum * velocity if self.nesterov else velocity
        param.data = param.data - self.lr * grad.astype(param.dtype, copy=False)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        for index, velocity in self._velocity.items():
            state[f"velocity.{index}"] = velocity.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._velocity = {
            int(name.split(".", 1)[1]): np.asarray(value).copy()
            for name, value in state.items()
            if name.startswith("velocity.")
        }
