"""Fixed-point parameter representation (paper §VI-A1).

Q15.16 codec, a catalog of alternative word formats (for the word-width
ablation), model-level quantisation, and memory accounting.
"""

from repro.quant.fixed_point import (
    FixedPointFormat,
    Q7_8,
    Q15_16,
    decode,
    encode,
    flip_bits,
    quantize,
)
from repro.quant.formats import FORMATS, Q1_6, Q3_4, Q3_12, Q7_24, parse_format
from repro.quant.model import model_memory_bytes, quantize_module

__all__ = [
    "FORMATS",
    "FixedPointFormat",
    "Q15_16",
    "Q1_6",
    "Q3_12",
    "Q3_4",
    "Q7_24",
    "Q7_8",
    "decode",
    "encode",
    "flip_bits",
    "model_memory_bytes",
    "parse_format",
    "quantize",
    "quantize_module",
]
