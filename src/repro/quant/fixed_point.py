"""Signed fixed-point codec.

The paper stores model parameters as 32-bit fixed point — 1 sign bit,
15 integer bits, 16 fractional bits (§VI-A1) — and injects faults as
bit-flips in those words.  This module provides the generic codec:
encode float arrays to two's-complement words, decode back, and flip
individual bits.  Formats other than Q15.16 (e.g. Q7.8) support the
word-width ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FixedPointFormat",
    "Q7_8",
    "Q15_16",
    "decode",
    "encode",
    "flip_bits",
    "quantize",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed two's-complement fixed-point format.

    ``integer_bits`` counts magnitude bits left of the binary point (the
    sign bit is separate), ``fraction_bits`` right of it.
    Q15.16 → 1 + 15 + 16 = 32 bits total.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ConfigurationError(
                f"bit counts must be non-negative, got "
                f"({self.integer_bits}, {self.fraction_bits})"
            )
        if self.total_bits > 63:
            raise ConfigurationError(
                f"formats wider than 63 bits are not supported, got {self.total_bits}"
            )
        if self.total_bits < 2:
            raise ConfigurationError("format needs at least a sign and one value bit")

    @property
    def total_bits(self) -> int:
        """Word width including the sign bit."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        """Value of one, in raw integer units: 2**fraction_bits."""
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw word value."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest (most negative) representable raw word value."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Quantisation step (1 ulp)."""
        return 1.0 / self.scale

    @property
    def bytes_per_word(self) -> float:
        """Storage per parameter in bytes (Table I memory accounting)."""
        return self.total_bits / 8.0

    def __str__(self) -> str:
        return f"Q{self.integer_bits}.{self.fraction_bits}"


Q15_16 = FixedPointFormat(15, 16)
"""The paper's parameter format: 1 sign + 15 integer + 16 fraction bits."""

Q7_8 = FixedPointFormat(7, 8)
"""A 16-bit format used by the word-width ablation."""


def encode(values: np.ndarray, fmt: FixedPointFormat = Q15_16) -> np.ndarray:
    """Encode real values to raw two's-complement words (int64).

    Values outside the representable range saturate (the standard
    fixed-point convention; also what a hardware quantiser would do).
    """
    values = np.asarray(values, dtype=np.float64)
    scaled = np.round(values * fmt.scale)
    scaled = np.clip(scaled, fmt.min_raw, fmt.max_raw)
    return scaled.astype(np.int64)


def decode(words: np.ndarray, fmt: FixedPointFormat = Q15_16) -> np.ndarray:
    """Decode raw words back to float32 real values."""
    words = np.asarray(words, dtype=np.int64)
    return (words.astype(np.float64) / fmt.scale).astype(np.float32)


def quantize(values: np.ndarray, fmt: FixedPointFormat = Q15_16) -> np.ndarray:
    """Round-trip values through the format (deploy-time quantisation)."""
    return decode(encode(values, fmt), fmt)


def _to_unsigned(words: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    modulus = np.int64(1) << np.int64(fmt.total_bits)
    return np.where(words < 0, words + modulus, words).astype(np.uint64)


def _to_signed(unsigned: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    unsigned = unsigned.astype(np.int64)
    half = np.int64(1) << np.int64(fmt.total_bits - 1)
    modulus = np.int64(1) << np.int64(fmt.total_bits)
    return np.where(unsigned >= half, unsigned - modulus, unsigned)


def flip_bits(
    words: np.ndarray,
    positions: np.ndarray,
    bits: np.ndarray,
    fmt: FixedPointFormat = Q15_16,
) -> np.ndarray:
    """Flip ``bits[i]`` of ``words.flat[positions[i]]`` for every i.

    Returns a new array; the input is untouched.  Bit 0 is the LSB of the
    fraction; bit ``total_bits - 1`` is the sign.  Flipping the same site
    twice restores the original word (XOR involution), which the injector
    relies on for exact restoration.
    """
    words = np.asarray(words, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    bits = np.asarray(bits, dtype=np.int64)
    if positions.shape != bits.shape:
        raise ConfigurationError(
            f"positions and bits must align, got {positions.shape} vs {bits.shape}"
        )
    if positions.size == 0:
        return words.copy()
    if positions.min() < 0 or positions.max() >= words.size:
        raise ConfigurationError("bit-flip position out of range")
    if bits.min() < 0 or bits.max() >= fmt.total_bits:
        raise ConfigurationError(
            f"bit index out of range for {fmt} (0..{fmt.total_bits - 1})"
        )
    flat = words.reshape(-1).copy()
    unsigned = _to_unsigned(flat, fmt)
    masks = (np.uint64(1) << bits.astype(np.uint64)).astype(np.uint64)
    # Accumulate XOR masks per position: duplicate sites on the same word
    # combine, duplicate (position, bit) pairs cancel — true XOR semantics.
    combined = np.zeros(flat.shape, dtype=np.uint64)
    np.bitwise_xor.at(combined, positions, masks)
    unsigned ^= combined
    flat = _to_signed(unsigned, fmt)
    return flat.reshape(words.shape)
