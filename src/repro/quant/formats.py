"""Named fixed-point formats and the format-string parser.

The paper fixes Q15.16 (§VI-A1); the word-width ablation (bench ABL-W)
asks how much of the resilience story is specific to that choice.
Narrower words change two things at once: the representable range
shrinks (Q3.4 saturates at ±8, so a bit-flip cannot create a huge
weight in the first place) and each parameter exposes fewer bits to a
fixed per-bit fault rate.  The catalog below covers the widths commonly
deployed on edge accelerators; ``parse_format`` accepts any ``"Qi.f"``
spec for CLI and experiment configuration.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.quant.fixed_point import FixedPointFormat, Q7_8, Q15_16

__all__ = [
    "FORMATS",
    "Q1_6",
    "Q3_4",
    "Q3_12",
    "Q7_24",
    "parse_format",
]

Q3_4 = FixedPointFormat(3, 4)
"""8-bit: 1 sign + 3 integer + 4 fraction — aggressive edge quantisation."""

Q1_6 = FixedPointFormat(1, 6)
"""8-bit, fraction-heavy: range ±2, resolution 1/64 (weights-only use)."""

Q3_12 = FixedPointFormat(3, 12)
"""16-bit, fraction-heavy alternative to Q7.8."""

Q7_24 = FixedPointFormat(7, 24)
"""32-bit, fraction-heavy alternative to the paper's Q15.16."""

FORMATS: dict[str, FixedPointFormat] = {
    "q1.6": Q1_6,
    "q3.4": Q3_4,
    "q3.12": Q3_12,
    "q7.8": Q7_8,
    "q7.24": Q7_24,
    "q15.16": Q15_16,
}
"""Catalog of named formats, keyed by lower-case ``"qI.F"`` spec."""

_FORMAT_RE = re.compile(r"^[qQ](\d+)\.(\d+)$")


def parse_format(spec: str) -> FixedPointFormat:
    """Parse ``"Q15.16"``-style format specs (case-insensitive).

    Named catalog entries are returned as the shared singletons;
    anything else matching ``Qi.f`` builds a fresh format (subject to
    the codec's 63-bit ceiling).
    """
    key = spec.strip().lower()
    if key in FORMATS:
        return FORMATS[key]
    match = _FORMAT_RE.match(spec.strip())
    if match is None:
        raise ConfigurationError(
            f"cannot parse fixed-point format {spec!r}; expected 'Qi.f' "
            f"like 'Q15.16' (named formats: {', '.join(sorted(FORMATS))})"
        )
    return FixedPointFormat(int(match.group(1)), int(match.group(2)))
