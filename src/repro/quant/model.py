"""Model-level quantisation helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, invalidate_runtime_plans
from repro.quant.fixed_point import FixedPointFormat, Q15_16, quantize

__all__ = ["model_memory_bytes", "quantize_module"]


def quantize_module(module: Module, fmt: FixedPointFormat = Q15_16) -> Module:
    """Snap every parameter to its fixed-point representable value.

    Deploy-time step (paper §VI-A1): after this, encoding parameters to
    words and decoding back is the identity, so fault-free inference on
    the quantised model is bit-exact with the injector's restore path.
    Returns the same module for chaining.
    """
    for _, param in module.named_parameters():
        # Safe rebind: the plan cache is flushed right after the loop (RPL001).
        param.data = quantize(param.data, fmt).astype(  # repro-lint: disable=RPL001
            param.dtype, copy=False
        )
    invalidate_runtime_plans(module)
    return module


def model_memory_bytes(module: Module, fmt: FixedPointFormat = Q15_16) -> int:
    """Parameter memory footprint in bytes under the given word format.

    This is the Table I "Memory" column: every parameter — weights,
    biases, and activation bound values — occupies one word.
    """
    total_words = sum(int(np.prod(p.shape)) for p in module.parameters())
    return int(round(total_words * fmt.bytes_per_word))
