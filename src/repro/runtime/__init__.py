"""Compiled inference runtime: the repeated-forward fast path.

Fault-injection campaigns and the serving stack spend essentially all
their time in inference-only forward passes; the module path pays
autograd ``Tensor``/``Function`` allocation, per-layer python dispatch,
and fresh intermediate allocation on every one.  ``repro.runtime``
removes all three:

    from repro.runtime import compile_model

    plan = compile_model(model, (batch, 3, 32, 32))
    logits = plan(inputs)          # bit-identical to the eval forward

The plan is a flat list of pure-numpy kernels (im2col conv GEMMs with
fused BatchNorm + bounded-activation epilogues, buffer reuse, zero
autograd objects) that is **bit-exact** with the eval-mode module
forward and preserves fault-injection semantics: parameters are read by
live view and folded constants refresh automatically when the fault
injector, a checkpoint load, or quantisation touches the model (see
:mod:`repro.runtime.plan` for the exact contract).

Consumers: ``Evaluator(loader, runtime=True)`` for campaigns,
``ModelRegistry(runtime=True)`` for serving, and the CLI's
``repro evaluate --runtime`` / ``repro serve --runtime``.
"""

from repro.runtime.compiler import compile_module, register_block_compiler
from repro.runtime.config import RuntimeConfig, resolve_runtime_config
from repro.runtime.kernels import Kernel
from repro.runtime.plan import InferencePlan, compile_model, resolve_gemm_workers
from repro.runtime.replica import ReplicaPlan, fault_parameters

__all__ = [
    "InferencePlan",
    "Kernel",
    "ReplicaPlan",
    "RuntimeConfig",
    "compile_model",
    "compile_module",
    "fault_parameters",
    "register_block_compiler",
    "resolve_gemm_workers",
    "resolve_runtime_config",
]
