"""Module-tree → kernel-list compilation with peephole fusion.

The compiler walks a model structurally (no tracing, no example input)
and emits the flat kernel list an :class:`~repro.runtime.plan.InferencePlan`
executes.  Dispatch is by module type:

- containers flatten into their children, then a peephole pass fuses
  ``Conv2d → BatchNorm2d → activation`` and ``Linear → BatchNorm1d →
  activation`` windows into single GEMM-epilogue kernels;
- the model zoo's composite blocks (ResNet basic/bottleneck blocks,
  MobileNet separable blocks) and the zoo architectures themselves have
  structural compilers that reproduce their ``forward`` dataflow;
- activation-fault wrappers (:class:`repro.fault.activation._FaultedSite`)
  compile natively: the wrapped activation fuses into the preceding
  GEMM epilogue as usual and a :class:`FaultStepKernel` replays the
  encode/flip/decode surgery — protected-model campaigns keep the full
  compiled speedup at instrumented sites;
- eval-mode no-ops (``Dropout``, ``Identity``) compile to nothing;
- anything unrecognised becomes a :class:`FallbackKernel`, which runs
  the module's own forward (still eval-mode, still no-grad) — custom
  architectures compile correctly, just without the speedup.

``register_block_compiler`` is the extension point for custom composite
modules (checked before the built-ins, so registering a subclass of a
known block overrides the default treatment).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.models.lenet import LeNet
from repro.models.mobilenet import MobileNet, _SeparableBlock
from repro.models.alexnet import AlexNet
from repro.models.resnet import BasicBlock, Bottleneck, ResNet
from repro.models.vgg import VGG
from repro.nn.activations import Identity
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.flatten import Flatten
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.runtime.kernels import (
    ACTIVATION_TYPES,
    ActivationKernel,
    AvgPoolKernel,
    BatchNormKernel,
    ConvKernel,
    FallbackKernel,
    FaultStepKernel,
    FlattenKernel,
    GlobalAvgPoolKernel,
    Kernel,
    LinearKernel,
    MaxPoolKernel,
    ResidualKernel,
)

__all__ = ["compile_module", "register_block_compiler"]

BlockCompiler = Callable[[Module], list[Kernel]]

_CUSTOM_COMPILERS: list[tuple[type, BlockCompiler]] = []


def register_block_compiler(cls: type, compiler: BlockCompiler) -> None:
    """Register a structural compiler for a custom composite module.

    ``compiler(module)`` must return the kernel list realising the
    module's eval-mode forward.  Custom entries are consulted before the
    built-ins, most-recently-registered first.
    """
    _CUSTOM_COMPILERS.insert(0, (cls, compiler))


def _is_activation(module: Module) -> bool:
    return isinstance(module, ACTIVATION_TYPES) and not isinstance(module, Identity)


def _fault_site_parts(module: Module) -> tuple[Module, Module] | None:
    """``(wrapped, fault_layer)`` when ``module`` is a ``_FaultedSite``.

    Imported lazily: the fault package is a consumer of the runtime,
    not a dependency, and plenty of plans never see an instrumented
    model.
    """
    from repro.fault.activation import _FaultedSite

    if isinstance(module, _FaultedSite):
        return module.wrapped, module.fault
    return None


def _epilogue_activation(
    module: Module | None,
) -> tuple[Module | None, list[Kernel]]:
    """Resolve a GEMM epilogue candidate to ``(activation, trailing)``.

    A plain activation fuses directly; a ``_FaultedSite`` wrapping one
    fuses its *wrapped* activation and appends a native
    :class:`FaultStepKernel` for the encode/flip/decode step.  Returns
    ``(None, [])`` when the candidate cannot fuse.
    """
    if module is None:
        return None, []
    if _is_activation(module):
        return module, []
    site = _fault_site_parts(module)
    if site is not None and _is_activation(site[0]):
        return site[0], [FaultStepKernel(site[1])]
    return None, []


def _compile_chain(children: list[Module]) -> list[Kernel]:
    """Compile an ordered layer list, fusing GEMM → BN → activation runs."""
    steps: list[Kernel] = []
    i = 0
    while i < len(children):
        module = children[i]
        if isinstance(module, Conv2d):
            bn = None
            j = i + 1
            if (
                j < len(children)
                and isinstance(children[j], BatchNorm2d)
                and children[j].num_features == module.out_channels
            ):
                bn = children[j]
                j += 1
            act, trailing = _epilogue_activation(
                children[j] if j < len(children) else None
            )
            if act is not None:
                j += 1
            steps.append(ConvKernel(module, bn, act))
            steps.extend(trailing)
            i = j
        elif isinstance(module, Linear):
            bn = None
            j = i + 1
            if (
                j < len(children)
                and isinstance(children[j], BatchNorm1d)
                and children[j].num_features == module.out_features
            ):
                bn = children[j]
                j += 1
            act, trailing = _epilogue_activation(
                children[j] if j < len(children) else None
            )
            if act is not None:
                j += 1
            steps.append(LinearKernel(module, bn, act))
            steps.extend(trailing)
            i = j
        else:
            steps.extend(compile_module(module))
            i += 1
    return steps


def _compile_sequential(module: Sequential) -> list[Kernel]:
    return _compile_chain(list(module.children()))


def _compile_shortcut(module: Module) -> list[Kernel] | None:
    """A residual block's downsample branch (None = identity shortcut)."""
    if isinstance(module, Identity):
        return None
    return compile_module(module)


def _residual_activation(module: Module) -> tuple[Module, list[Kernel]]:
    """A residual block's closing activation, unwrapping fault sites."""
    site = _fault_site_parts(module)
    if site is not None and _is_activation(site[0]):
        return site[0], [FaultStepKernel(site[1])]
    return module, []


def _compile_basic_block(block: BasicBlock) -> list[Kernel]:
    main = _compile_chain(
        [block.conv1, block.bn1, block.relu1, block.conv2, block.bn2]
    )
    act, trailing = _residual_activation(block.relu2)
    return [
        ResidualKernel(main, _compile_shortcut(block.downsample), act),
        *trailing,
    ]


def _compile_bottleneck(block: Bottleneck) -> list[Kernel]:
    main = _compile_chain(
        [
            block.conv1,
            block.bn1,
            block.relu1,
            block.conv2,
            block.bn2,
            block.relu2,
            block.conv3,
            block.bn3,
        ]
    )
    act, trailing = _residual_activation(block.relu3)
    return [
        ResidualKernel(main, _compile_shortcut(block.downsample), act),
        *trailing,
    ]


def _compile_separable(block: _SeparableBlock) -> list[Kernel]:
    return _compile_chain(
        [
            block.depthwise,
            block.bn_dw,
            block.relu_dw,
            block.pointwise,
            block.bn_pw,
            block.relu_pw,
        ]
    )


def _compile_feature_classifier(model: Module) -> list[Kernel]:
    """The LeNet/AlexNet/VGG shape: features → flatten → classifier."""
    return (
        compile_module(model.features)
        + compile_module(model.flatten)
        + compile_module(model.classifier)
    )


def _compile_resnet(model: ResNet) -> list[Kernel]:
    steps = _compile_chain([model.stem_conv, model.stem_bn, model.stem_relu])
    for layer in (model.layer1, model.layer2, model.layer3, model.layer4):
        steps.extend(compile_module(layer))
    steps.extend(compile_module(model.pool))
    steps.extend(compile_module(model.fc))
    return steps


def _compile_mobilenet(model: MobileNet) -> list[Kernel]:
    return (
        compile_module(model.stem)
        + compile_module(model.blocks)
        + compile_module(model.pool)
        + compile_module(model.flatten)
        + compile_module(model.classifier)
    )


def _leaf(kernel: Kernel) -> BlockCompiler:
    return lambda module: [kernel(module)]  # type: ignore[call-arg]


_BUILTIN_COMPILERS: list[tuple[type, BlockCompiler]] = [
    # Composite blocks and architectures first (most specific match wins
    # by order, e.g. a ResNet is also a Module with children).
    (BasicBlock, _compile_basic_block),
    (Bottleneck, _compile_bottleneck),
    (_SeparableBlock, _compile_separable),
    (ResNet, _compile_resnet),
    (MobileNet, _compile_mobilenet),
    (LeNet, _compile_feature_classifier),
    (AlexNet, _compile_feature_classifier),
    (VGG, _compile_feature_classifier),
    (Sequential, _compile_sequential),
    # Leaves.
    (Conv2d, _leaf(ConvKernel)),
    (Linear, _leaf(LinearKernel)),
    (BatchNorm1d, _leaf(BatchNormKernel)),
    (BatchNorm2d, _leaf(BatchNormKernel)),
    (MaxPool2d, _leaf(MaxPoolKernel)),
    (AvgPool2d, _leaf(AvgPoolKernel)),
    (GlobalAvgPool2d, _leaf(GlobalAvgPoolKernel)),
    (Flatten, lambda module: [FlattenKernel(module.start_dim)]),
    # Eval-mode no-ops compile away entirely.
    (Dropout, lambda module: []),
    (Identity, lambda module: []),
]


def compile_module(module: Module) -> list[Kernel]:
    """Compile one module (recursively) into its kernel steps."""
    for cls, compiler in _CUSTOM_COMPILERS:
        if isinstance(module, cls):
            return compiler(module)
    site = _fault_site_parts(module)
    if site is not None:
        # Compile whatever the wrapper encloses, then replay the
        # encode/flip/decode surgery on its output.
        return compile_module(site[0]) + [FaultStepKernel(site[1])]
    if _is_activation(module):
        return [ActivationKernel(module)]
    for cls, compiler in _BUILTIN_COMPILERS:
        if isinstance(module, cls):
            return compiler(module)
    return [FallbackKernel(module)]
