"""One runtime configuration object instead of four sprawling kwargs.

Before PR 9, every layer that could touch the compiled runtime grew its
own copy of the same knob tangle — ``Evaluator(runtime=, gemm_workers=)``,
``ModelRegistry(runtime=)``, ``compile_model(gemm_workers=, profile=,
replicas=)``, plus the CLI flags feeding them — and adding a knob meant
editing every signature.  :class:`RuntimeConfig` collapses the tangle
into one frozen dataclass accepted everywhere inference is configured:

- :func:`repro.runtime.compile_model` (``config=``)
- :class:`repro.eval.Evaluator` (``config=``)
- :class:`repro.serve.ModelRegistry` (``config=``)
- the CLI, which builds exactly one instance per command via
  ``repro.cli.main._runtime_config`` (the single lint-visible
  construction path)

The old per-call kwargs still work as deprecated aliases — passing both
an alias and ``config`` is an error rather than a silent precedence
guess — so existing callers keep running while new code converges on
the config object.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["RuntimeConfig", "resolve_runtime_config"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Every compiled-inference knob in one place.

    Parameters
    ----------
    enabled:
        Route inference through a compiled
        :class:`~repro.runtime.InferencePlan` (bit-exact with the module
        forward).  Consumers that *are* the compiler — ``compile_model``
        itself — ignore this flag; gatekeepers (``Evaluator``,
        ``ModelRegistry``) use it to decide whether to compile at all.
    gemm_workers:
        Gather-threading width forwarded to the plan: ``None``/``0``/
        ``1`` serial (the 1-core determinism default), ``"auto"`` one
        thread per usable core, ``N >= 2`` an explicit width.
        Bit-identical either way (the BLAS call is never row-split).
    replicas:
        Replica-batched fault-lane width for campaign evaluation
        (``compile_model(replicas=)`` / ``plan.replicate``); ``None``
        leaves plans unreplicated.
    profile:
        Attach a persistent :class:`~repro.obs.KernelProfiler` to
        compiled plans.
    """

    enabled: bool = False
    gemm_workers: int | str | None = None
    replicas: int | None = None
    profile: bool = False

    def __post_init__(self) -> None:
        workers = self.gemm_workers
        if isinstance(workers, str) and workers != "auto":
            raise ConfigurationError(
                f'gemm_workers must be an int, None, or "auto", got {workers!r}'
            )
        if isinstance(workers, int) and workers < 0:
            raise ConfigurationError(
                f"gemm_workers must be >= 0, got {workers}"
            )
        if self.replicas is not None and self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )

    def with_enabled(self, enabled: bool = True) -> "RuntimeConfig":
        """A copy with the ``enabled`` gate flipped (configs are frozen)."""
        return replace(self, enabled=bool(enabled))


def resolve_runtime_config(
    config: RuntimeConfig | None,
    owner: str,
    **aliases: object,
) -> RuntimeConfig:
    """Fold deprecated per-call kwargs into one :class:`RuntimeConfig`.

    ``aliases`` maps config field names to the values the caller's
    legacy kwargs carried (``None`` / ``False`` meaning "not passed",
    matching every alias's historical default).  Passing a legacy alias
    *and* an explicit ``config`` is rejected — the caller's intent is
    ambiguous and silently preferring either side would hide a bug.
    """
    used = {
        name: value
        for name, value in aliases.items()
        if value not in (None, False)
    }
    if config is not None:
        if used:
            raise ConfigurationError(
                f"{owner} got both config= and the deprecated "
                f"{', '.join(sorted(used))} alias(es); pass the values "
                "inside RuntimeConfig instead"
            )
        return config
    if used:
        warnings.warn(
            f"{owner}({', '.join(sorted(used))}=...) is deprecated; pass "
            f"config=RuntimeConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RuntimeConfig(**aliases)  # type: ignore[arg-type]
