"""Pure-numpy inference kernels with preallocated, reused buffers.

Each kernel wraps one (or a fused group of) :class:`~repro.nn.Module`
layers and evaluates the *identical* float32 arithmetic the module's
autograd forward performs — same primitive calls, same operand order —
without constructing a single ``Tensor`` or ``Function``.  Bit-for-bit
equality with the eval-mode module forward is a hard contract, verified
for every registry model by ``tests/runtime/test_bit_exact.py``; it is
what lets fault campaigns switch the compiled path on and off without
changing a result.

Two rules keep fault-injection semantics intact:

- **Live parameter views.**  Kernels never copy weights: every ``run``
  reads ``param.data`` at call time, so a bit flipped by
  :class:`repro.fault.FaultInjector` (which *replaces* ``param.data``)
  is picked up by the very next forward.
- **Refreshable folded constants.**  The only derived quantities a
  kernel caches between calls are eval-mode BatchNorm statistics (the
  reshaped running mean and the precomputed ``(var + eps) ** -0.5``).
  :meth:`Kernel.refresh` recomputes them from the live module; the
  owning :class:`~repro.runtime.plan.InferencePlan` calls it whenever a
  parameter mutation is signalled or detected.

Intermediate buffers are allocated lazily per ``(name, shape)`` and
reused across calls — the im2col column matrix, the GEMM output, and
the NCHW output of every layer are written in place on each forward,
which removes the per-pass allocation churn that dominates the module
path.  Kernels never write into their *input* array: plan inputs (e.g.
an :class:`~repro.eval.Evaluator`'s materialised batches) are read-only.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.grad_mode import no_grad
from repro.autograd.ops_conv import _out_size, as_pair
from repro.autograd.tensor import Tensor
from repro.core.bounded_relu import BoundedReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.errors import ConfigurationError
from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module, eval_mode, is_warmup
from repro.nn.norm import _BatchNormBase
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

if TYPE_CHECKING:
    from repro.obs.profile import KernelProfiler

__all__ = [
    "ACTIVATION_TYPES",
    "ActivationKernel",
    "AvgPoolKernel",
    "BatchNormKernel",
    "ConvKernel",
    "FallbackKernel",
    "FaultStepKernel",
    "FlattenKernel",
    "GlobalAvgPoolKernel",
    "Kernel",
    "LinearKernel",
    "MaxPoolKernel",
    "ResidualKernel",
    "apply_activation",
]

# ----------------------------------------------------------------------
# GEMM execution knobs
# ----------------------------------------------------------------------
#: Byte budget for one batch-block's staging buffer in the blocked
#: im2col gather — sized so a block transposes L2/L3-resident instead
#: of round-tripping main memory.
GEMM_BLOCK_BYTES = 1 << 20

#: Minimum spatial positions per image for the blocked K-major gather;
#: below this the position-major copy is already cheap (short planes,
#: python loop overhead dominates) and the kernel uses it directly.
KMAJOR_MIN_AREA = 64

#: Column matrices smaller than this many cells keep the serial gather
#: even when a kernel's ``gemm_workers`` allows threading: partitioning
#: overhead would exceed the work.
GEMM_THREAD_MIN_WORK = 1 << 21

# Why the threads drive the *gather*, not the GEMM itself: splitting
# one BLAS GEMM into row-partitioned calls is NOT float32-bit-exact —
# BLAS backends select micro-kernels by matrix shape (OpenBLAS's
# small-matrix paths accumulate K in a different order), so a sliced
# call can round differently from the full one.  Copies, by contrast,
# commute: parallel workers assembling disjoint column-matrix slices
# produce byte-identical input for the one full-shape GEMM the module
# path also performs.  The GEMM still parallelises — BLAS threads it
# natively wherever more than one core is usable.

_gemm_pool: ThreadPoolExecutor | None = None
_gemm_pool_size = 0
_gemm_pool_lock = threading.Lock()


def _run_partitioned(jobs: list) -> None:
    """Run thunks on the shared GEMM pool, propagating the first error.

    The pool grows to the widest parallelism ever requested and is
    shared by every kernel in the process; jobs from concurrently
    executing plans simply interleave.  Correctness never depends on
    the pool's actual width — each job owns a disjoint output slice —
    so over-subscription (more jobs than cores) only costs scheduling.
    """
    global _gemm_pool, _gemm_pool_size
    width = len(jobs)
    with _gemm_pool_lock:
        if _gemm_pool is None or _gemm_pool_size < width:
            old = _gemm_pool
            _gemm_pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-gemm"
            )
            _gemm_pool_size = width
            if old is not None:
                # Queued jobs on the retired pool still complete;
                # wait=False only refuses new submissions.
                old.shutdown(wait=False)
        # Submit while still holding the lock: a concurrent wider
        # request may retire this pool, and submitting to a shut-down
        # executor raises.  Execution is unaffected — only the (cheap)
        # enqueue is serialised.
        futures = [_gemm_pool.submit(job) for job in jobs]
    for future in futures:
        future.result()


def _row_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous, near-even runs."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges

#: Activation modules the kernels can evaluate inline (as fused
#: epilogues or standalone steps) with bit-exact module semantics.
#: ``BoundedReLU`` covers its subclasses GBReLU and FitReLUNaive.
ACTIVATION_TYPES = (
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Softmax,
    BoundedReLU,
    BoundedTanh,
    FitReLU,
    Identity,
)


class _Buffers:
    """Lazily-allocated scratch arrays, reused by ``(name, shape)``.

    Distinct batch sizes (a serve lane's variable micro-batches, an
    evaluator's ragged final batch) keep distinct buffers, so switching
    between them never reallocates.
    """

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict[tuple, np.ndarray] = {}

    def get(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: type = np.float32,
        fill: float | None = None,
    ) -> np.ndarray:
        key = (name, shape, np.dtype(dtype))
        buf = self._store.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            if fill is not None:
                # One-time fill: callers rely on never-rewritten regions
                # (padding borders) keeping this value across reuses.
                buf.fill(fill)
            self._store[key] = buf
        return buf


def _sigmoid_into(a: np.ndarray, out: np.ndarray) -> np.ndarray:
    """The numerically stable sigmoid of ``ops_nn._Sigmoid``, verbatim."""
    positive = a >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
    exp_a = np.exp(a[~positive])
    out[~positive] = exp_a / (1.0 + exp_a)
    return out


def apply_activation(
    module: Module, src: np.ndarray, out: np.ndarray, bufs: _Buffers
) -> np.ndarray:
    """Evaluate ``module``'s activation on ``src``, writing into ``out``.

    ``out`` may alias ``src`` (the fused-epilogue case); every branch
    reads any pre-activation-dependent masks before overwriting.  The
    arithmetic mirrors each module's forward exactly — same primitive
    ops in the same order — so results are bit-identical to the
    autograd path.
    """
    if isinstance(module, Identity):
        return src
    if isinstance(module, ReLU):
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(src, 0, out=mask)
        return np.multiply(src, mask, out=out)
    if isinstance(module, BoundedReLU):
        bound = module.bound.data
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        if module.mode == "saturate":
            np.greater(src, 0, out=mask)
            np.multiply(src, mask, out=out)
            return np.minimum(out, bound, out=out)
        over = bufs.get("act_over", src.shape, dtype=np.bool_)
        np.greater(src, bound, out=over)
        np.greater(src, 0, out=mask)
        np.multiply(src, mask, out=out)
        out[over] = 0.0
        return out
    if isinstance(module, BoundedTanh):
        bound = module.bound.data
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(src, 0, out=mask)
        np.multiply(src, mask, out=out)
        np.divide(out, bound, out=out)
        np.tanh(out, out=out)
        return np.multiply(bound, out, out=out)
    if isinstance(module, FitReLU):
        bound = module.bound.data
        if module.slope_mode == "relative":
            scale = (module.k / np.maximum(np.abs(bound), 1e-6)).astype(np.float32)
        else:
            scale = np.float32(module.k)
        z = bufs.get("act_z", src.shape)
        np.subtract(bound, src, out=z)
        np.multiply(z, scale, out=z)
        gate = bufs.get("act_gate", src.shape)
        _sigmoid_into(z, gate)
        np.multiply(src, gate, out=out)
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(out, 0, out=mask)
        return np.multiply(out, mask, out=out)
    if isinstance(module, LeakyReLU):
        mask = src > 0
        out[...] = np.where(mask, src, module.negative_slope * src)
        return out
    if isinstance(module, Sigmoid):
        return _sigmoid_into(src, out)
    if isinstance(module, Tanh):
        return np.tanh(src, out=out)
    if isinstance(module, Softmax):
        shifted = src - src.max(axis=module.axis, keepdims=True)
        exp = np.exp(shifted)
        out[...] = exp / exp.sum(axis=module.axis, keepdims=True)
        return out
    raise ConfigurationError(
        f"no inline kernel for activation {type(module).__name__}"
    )


class Kernel:
    """One step of an :class:`~repro.runtime.plan.InferencePlan`."""

    #: Attached :class:`~repro.obs.KernelProfiler` — set per instance by
    #: ``InferencePlan.attach_profiler`` while profiling is on, ``None``
    #: otherwise.  Instrumented sections guard on ``prof is not None``,
    #: so a detached kernel pays one truth test, not a clock read.
    prof: "KernelProfiler | None" = None

    def refresh(self) -> None:
        """Recompute cached constants from the live module state."""

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def child_kernels(self) -> "tuple[tuple[str, list[Kernel]], ...]":
        """Nested kernel lists as ``(branch, steps)`` pairs (profiling)."""
        return ()

    def source_modules(self) -> "tuple[Module, ...]":
        """The modules whose live state this step reads at run time.

        :class:`~repro.runtime.replica.ReplicaPlan` builds its
        parameter → earliest-reading-step map from this: a fault in one
        of these modules' parameters can change this step's output but
        no earlier step's.  Kernels with nested branches report their
        children's sources as their own (the whole block is one step of
        the owning plan).
        """
        return ()

    def describe(self) -> str:
        return type(self).__name__


class _BNFold:
    """Cached eval-mode BatchNorm constants (the plan's folded state).

    ``mean`` and ``inv_std`` are flat per-channel vectors; the affine
    weight/bias are read live at run time (views are cheap and live
    views keep injected faults in BN parameters immediately visible).
    """

    __slots__ = ("bn", "mean", "inv_std")

    def __init__(self, bn: _BatchNormBase) -> None:
        self.bn = bn
        self.refresh()

    def refresh(self) -> None:
        bn = self.bn
        # Snapshots, not views: both constants change only via refresh(),
        # which is the whole point of the fold/refresh contract.
        self.mean = np.array(bn.running_mean, dtype=np.float32).reshape(-1)
        # Same expression as the module's (var + eps) ** -0.5: float32
        # array + float32 scalar, then a python-float exponent.
        self.inv_std = (
            np.asarray(bn.running_var, dtype=np.float32).reshape(-1)
            + np.float32(bn.eps)
        ) ** -0.5

    def apply_vectors(self, flat: np.ndarray) -> None:
        """Normalise a channels-last 2-D view in place (GEMM epilogue)."""
        np.subtract(flat, self.mean, out=flat)
        np.multiply(flat, self.inv_std, out=flat)
        if self.bn.affine:
            np.multiply(flat, self.bn.weight.data.reshape(-1), out=flat)
            np.add(flat, self.bn.bias.data.reshape(-1), out=flat)


class ConvKernel(Kernel):
    """Tiered im2col convolution with optional fused BatchNorm + activation.

    The execution tier is picked from the convolution's static geometry
    at construction time (the compiler builds one kernel per layer, so
    this is the "per-layer dispatch at plan build time"):

    ``direct1x1``
        Pointwise convolutions (1x1 kernel, no padding, any stride)
        skip im2col entirely: the strided input view is copied to a
        channels-last buffer once and multiplied in a single GEMM.
    ``im2col``
        General convolutions build the patch matrix blockwise: each
        cache-sized batch block (``GEMM_BLOCK_BYTES``) is gathered in
        **K-major** staging layout — one contiguous destination plane
        per (channel, ki, kj) column, near-memcpy strided copies
        instead of the cache-hostile position-major transpose — then
        transposed, still cache-resident, into the standard
        position-major column matrix.  Small feature maps
        (``KMAJOR_MIN_AREA``) skip the staging and copy position-major
        directly.
    ``grouped``
        Grouped/depthwise convolutions keep the batched-einsum
        formulation of the autograd op.

    Every tier hands BLAS the *identical* GEMM the module forward
    performs — the same column-matrix values in the same memory layout
    with the same shapes — so results are bit-exact by construction on
    any BLAS backend, not merely on the one this machine happens to
    link (enforced per tier by ``tests/runtime``).

    The BatchNorm epilogue runs on the GEMM output while it is still in
    channels-last ``(positions, channels)`` layout — per-channel
    vectors broadcast along rows for free — and the activation runs on
    the final NCHW buffer (bound arrays of any granularity broadcast
    there).  Elementwise ops are layout-independent, so both fusions
    stay bit-exact with the unfused module chain.

    ``gemm_workers > 1`` (set via ``InferencePlan.set_gemm_workers``)
    partitions the column-matrix assembly feeding each GEMM over the
    shared thread pool; workers fill disjoint slices, so the GEMM input
    — and therefore the output — is byte-identical to the serial
    schedule (see the module-level note on why the BLAS call itself is
    never split).
    """

    def __init__(
        self,
        conv: Conv2d,
        bn: _BatchNormBase | None = None,
        act: Module | None = None,
    ) -> None:
        self.conv = conv
        self.bn = _BNFold(bn) if bn is not None else None
        self.act = act
        self.bufs = _Buffers()
        self.gemm_workers = 1
        if conv.groups != 1:
            self.tier = "grouped"
        elif conv.kernel_size == (1, 1) and conv.padding == (0, 0):
            self.tier = "direct1x1"
        else:
            self.tier = "im2col"

    def refresh(self) -> None:
        if self.bn is not None:
            self.bn.refresh()

    def source_modules(self) -> "tuple[Module, ...]":
        modules: tuple[Module, ...] = (self.conv,)
        if self.bn is not None:
            modules += (self.bn.bn,)
        if self.act is not None:
            modules += (self.act,)
        return modules

    # ------------------------------------------------------------------
    # GEMM tiers (all write the channels-last (positions, out) buffer)
    # ------------------------------------------------------------------
    def _workers_for(self, positions: int, k: int, out_channels: int) -> int:
        if self.gemm_workers <= 1:
            return 1
        if positions * k < GEMM_THREAD_MIN_WORK:
            return 1
        return self.gemm_workers

    def _run_direct1x1(
        self, x: np.ndarray, gemm: np.ndarray, oh: int, ow: int
    ) -> None:
        conv = self.conv
        prof = self.prof
        n, c = x.shape[:2]
        sh, sw = conv.stride
        view = x if (sh, sw) == (1, 1) else x[:, :, ::sh, ::sw]
        cols = self.bufs.get("cols1x1", (n, oh, ow, c))
        nhwc = view.transpose(0, 2, 3, 1)
        workers = self._workers_for(n * oh * ow, c, conv.out_channels)
        started = prof.now() if prof is not None else 0.0
        if workers <= 1 or n < 2:
            np.copyto(cols, nhwc)
        else:
            _run_partitioned(
                [
                    (lambda r0=r0, r1=r1: np.copyto(
                        cols[r0:r1], nhwc[r0:r1]
                    ))
                    for r0, r1 in _row_ranges(n, workers)
                ]
            )
        if prof is not None:
            prof.phase(self, "gather", started, prof.now())
            started = prof.now()
        np.matmul(cols.reshape(n * oh * ow, c), conv.weight.data.reshape(
            conv.out_channels, c
        ).T, out=gemm)
        if prof is not None:
            prof.phase(self, "gemm", started, prof.now())

    def _gather_block(
        self,
        colsT: np.ndarray,
        padded: np.ndarray,
        b0: int,
        b1: int,
        oh: int,
        ow: int,
    ) -> None:
        """Fill one batch block's K-major staging planes.

        ``colsT[c, i, j]`` holds column ``(c, i, j)`` of the im2col
        matrix for images ``b0:b1`` — the same values, in the same
        K order ``(channel, ki, kj)``, as the module's position-major
        patch matrix, just transposed in memory.  Each copy writes one
        contiguous destination plane, which is what makes this gather
        several times faster than the position-major transpose.
        """
        kh, kw = self.conv.kernel_size
        sh, sw = self.conv.stride
        block = padded[b0:b1]
        for i in range(kh):
            for j in range(kw):
                np.copyto(
                    colsT[:, i, j],
                    block[
                        :, :, i : i + sh * oh : sh, j : j + sw * ow : sw
                    ].transpose(1, 0, 2, 3),
                )

    def _fill_cols(
        self,
        cols6: np.ndarray,
        padded: np.ndarray,
        n: int,
        c: int,
        oh: int,
        ow: int,
        workers: int,
    ) -> None:
        """Build the position-major column matrix the module GEMM reads.

        Large feature maps go through the blocked K-major staging buffer
        (gather with contiguous writes, then an L2-resident transpose
        into ``cols6``); small ones copy position-major directly.  Both
        produce byte-identical column matrices.
        """
        conv = self.conv
        kh, kw = conv.kernel_size
        per_image = oh * ow
        if per_image < KMAJOR_MIN_AREA:
            sh, sw = conv.stride
            windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[
                :, :, ::sh, ::sw
            ]
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            return
        k = c * kh * kw
        block = max(1, min(n, GEMM_BLOCK_BYTES // max(1, k * per_image * 4)))
        ranges = [(b0, min(b0 + block, n)) for b0 in range(0, n, block)]
        flat = cols6.reshape(n * per_image, k)

        def do_range(b0: int, b1: int, colsT: np.ndarray) -> None:
            self._gather_block(colsT, padded, b0, b1, oh, ow)
            np.copyto(
                flat[b0 * per_image : b1 * per_image],
                colsT.reshape(k, (b1 - b0) * per_image).T,
            )

        workers = min(workers, len(ranges))
        if workers <= 1:
            for b0, b1 in ranges:
                # The ragged tail gets its own (smaller) staging buffer;
                # _Buffers keys by shape, so at most two exist.
                colsT = self.bufs.get("colsT", (c, kh, kw, b1 - b0, oh, ow))
                do_range(b0, b1, colsT)
            return
        # Deal blocks round-robin onto worker slots; buffers are
        # allocated here (the _Buffers dict is not thread-safe) and each
        # slot reuses its own, so concurrent gathers never collide.
        slots: list[list] = [[] for _ in range(workers)]
        for index, (b0, b1) in enumerate(ranges):
            slot = index % workers
            colsT = self.bufs.get(("colsT", slot), (c, kh, kw, b1 - b0, oh, ow))
            slots[slot].append((b0, b1, colsT))

        def run_slot(assigned: list) -> None:
            for b0, b1, colsT in assigned:
                do_range(b0, b1, colsT)

        _run_partitioned(
            [lambda a=assigned: run_slot(a) for assigned in slots if assigned]
        )

    def _run_im2col(
        self,
        padded: np.ndarray,
        gemm: np.ndarray,
        n: int,
        c: int,
        oh: int,
        ow: int,
    ) -> None:
        conv = self.conv
        prof = self.prof
        kh, kw = conv.kernel_size
        k = c * kh * kw
        positions = n * oh * ow
        cols6 = self.bufs.get("cols", (n, oh, ow, c, kh, kw))
        workers = self._workers_for(positions, k, conv.out_channels)
        started = prof.now() if prof is not None else 0.0
        self._fill_cols(cols6, padded, n, c, oh, ow, workers)
        if prof is not None:
            prof.phase(self, "gather", started, prof.now())
            started = prof.now()
        # One full-shape GEMM, exactly the module's call (BLAS threads
        # it natively on multi-core machines; see module-level note).
        np.matmul(
            cols6.reshape(positions, k),
            conv.weight.data.reshape(conv.out_channels, -1).T,
            out=gemm,
        )
        if prof is not None:
            prof.phase(self, "gemm", started, prof.now())

    def _run_grouped(
        self, windows: np.ndarray, gemm: np.ndarray, n: int, c: int, oh: int, ow: int
    ) -> np.ndarray:
        conv = self.conv
        prof = self.prof
        kh, kw = conv.kernel_size
        groups = conv.groups
        positions = n * oh * ow
        cols6 = self.bufs.get("cols", (n, oh, ow, c, kh, kw))
        started = prof.now() if prof is not None else 0.0
        np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
        if prof is not None:
            prof.phase(self, "gather", started, prof.now())
            started = prof.now()
        cg = c // groups
        og = conv.out_channels // groups
        cols = cols6.reshape(positions, groups, cg * kh * kw)
        w_mat = conv.weight.data.reshape(groups, og, cg * kh * kw)
        gemm3 = gemm.reshape(positions, groups, og)
        np.einsum("pgk,gok->pgo", cols, w_mat, out=gemm3)
        if prof is not None:
            prof.phase(self, "gemm", started, prof.now())
        return gemm

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        conv = self.conv
        n, c, h, w = x.shape
        kh, kw = conv.kernel_size
        sh, sw = conv.stride
        ph, pw = conv.padding
        out_channels = conv.out_channels
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        positions = n * oh * ow
        gemm = self.bufs.get("gemm", (positions, out_channels))

        if self.tier == "direct1x1":
            self._run_direct1x1(x, gemm, oh, ow)
        else:
            if ph or pw:
                prof = self.prof
                started = prof.now() if prof is not None else 0.0
                padded = self.bufs.get(
                    "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=0.0
                )
                padded[:, :, ph : ph + h, pw : pw + w] = x
                if prof is not None:
                    # The border copy assembles GEMM input: gather time.
                    prof.phase(self, "gather", started, prof.now())
            else:
                padded = x
            if self.tier == "im2col":
                self._run_im2col(padded, gemm, n, c, oh, ow)
            else:
                windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[
                    :, :, ::sh, ::sw
                ]
                self._run_grouped(windows, gemm, n, c, oh, ow)
        if conv.bias is not None:
            gemm += conv.bias.data
        if self.bn is not None:
            self.bn.apply_vectors(gemm)
        out = self.bufs.get("out", (n, out_channels, oh, ow))
        np.copyto(out, gemm.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2))
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        parts = [f"conv{self.conv.kernel_size}"]
        if self.bn is not None:
            parts.append("bn")
        if self.act is not None:
            parts.append(type(self.act).__name__)
        tag = self.tier
        if self.gemm_workers > 1:
            tag += f"@{self.gemm_workers}"
        return "+".join(parts) + f"[{tag}]"


class LinearKernel(Kernel):
    """GEMM linear layer with optional fused BatchNorm1d + activation."""

    def __init__(
        self,
        linear: Linear,
        bn: _BatchNormBase | None = None,
        act: Module | None = None,
    ) -> None:
        self.linear = linear
        self.bn = _BNFold(bn) if bn is not None else None
        self.act = act
        self.bufs = _Buffers()

    def refresh(self) -> None:
        if self.bn is not None:
            self.bn.refresh()

    def source_modules(self) -> "tuple[Module, ...]":
        modules: tuple[Module, ...] = (self.linear,)
        if self.bn is not None:
            modules += (self.bn.bn,)
        if self.act is not None:
            modules += (self.act,)
        return modules

    def run(self, x: np.ndarray) -> np.ndarray:
        # No gather stage to thread here: the input already is the GEMM
        # operand, and the BLAS call must stay whole for bit-exactness.
        linear = self.linear
        prof = self.prof
        out = self.bufs.get("out", (x.shape[0], linear.out_features))
        started = prof.now() if prof is not None else 0.0
        np.matmul(x, linear.weight.data.T, out=out)
        if prof is not None:
            prof.phase(self, "gemm", started, prof.now())
        if linear.bias is not None:
            np.add(out, linear.bias.data, out=out)
        if self.bn is not None:
            self.bn.apply_vectors(out)
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        parts = [f"linear({self.linear.in_features}->{self.linear.out_features})"]
        if self.bn is not None:
            parts.append("bn")
        if self.act is not None:
            parts.append(type(self.act).__name__)
        return "+".join(parts)


class BatchNormKernel(Kernel):
    """Standalone eval-mode BatchNorm (when no GEMM precedes it)."""

    def __init__(self, bn: _BatchNormBase) -> None:
        self.fold = _BNFold(bn)
        self.bufs = _Buffers()

    def refresh(self) -> None:
        self.fold.refresh()

    def source_modules(self) -> "tuple[Module, ...]":
        return (self.fold.bn,)

    def run(self, x: np.ndarray) -> np.ndarray:
        bn = self.fold.bn
        stat_shape = [1] * x.ndim
        stat_shape[1] = bn.num_features
        shape = tuple(stat_shape)
        out = self.bufs.get("out", x.shape)
        np.subtract(x, self.fold.mean.reshape(shape), out=out)
        np.multiply(out, self.fold.inv_std.reshape(shape), out=out)
        if bn.affine:
            np.multiply(out, bn.weight.data.reshape(shape), out=out)
            np.add(out, bn.bias.data.reshape(shape), out=out)
        return out


class MaxPoolKernel(Kernel):
    """Max pooling.

    Max selects an element exactly (no rounding), so any evaluation
    order is bit-identical to the module's argmax/take formulation —
    which frees the kernel to use the fastest strategy per geometry:
    non-overlapping unpadded windows (the zoo's only configuration)
    reduce over a pure reshape view; everything else copies the window
    view contiguous once and reduces that.
    """

    def __init__(self, pool: MaxPool2d) -> None:
        self.kernel = as_pair(pool.kernel_size, "kernel")
        stride = pool.kernel_size if pool.stride is None else pool.stride
        self.stride = as_pair(stride, "stride")
        self.padding = as_pair(pool.padding, "padding")
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, h, w = x.shape
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        if ph or pw:
            padded = self.bufs.get(
                "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=-np.inf
            )
            padded[:, :, ph : ph + h, pw : pw + w] = x
        else:
            padded = x
        out = self.bufs.get("out", (n, c, oh, ow))
        # One vectorised elementwise max per kernel offset — an order of
        # magnitude faster than a windowed reduction, and exact: max
        # selects an element, whatever the evaluation order.
        first = True
        for i in range(kh):
            for j in range(kw):
                window = padded[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class AvgPoolKernel(Kernel):
    """Strided-window average pooling (same reduction call as the op)."""

    def __init__(self, pool: AvgPool2d) -> None:
        self.kernel = as_pair(pool.kernel_size, "kernel")
        stride = pool.kernel_size if pool.stride is None else pool.stride
        self.stride = as_pair(stride, "stride")
        self.padding = as_pair(pool.padding, "padding")
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, h, w = x.shape
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        if ph or pw:
            padded = self.bufs.get(
                "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=0.0
            )
            padded[:, :, ph : ph + h, pw : pw + w] = x
        else:
            padded = x
        windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[
            :, :, ::sh, ::sw
        ]
        out = self.bufs.get("out", (n, c, oh, ow))
        return np.mean(windows, axis=(-2, -1), out=out)


class GlobalAvgPoolKernel(Kernel):
    """Mean over the spatial axes: (N, C, H, W) -> (N, C)."""

    def __init__(self, pool: GlobalAvgPool2d) -> None:
        del pool
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        out = self.bufs.get("out", x.shape[:2])
        return np.mean(x, axis=(2, 3), out=out)


class FlattenKernel(Kernel):
    """Collapse trailing dims (a view on the contiguous input buffer)."""

    def __init__(self, start_dim: int) -> None:
        self.start_dim = int(start_dim)

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[: self.start_dim] + (-1,))


class ActivationKernel(Kernel):
    """A standalone activation step (input is another kernel's output)."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.bufs = _Buffers()

    def source_modules(self) -> "tuple[Module, ...]":
        return (self.module,)

    def run(self, x: np.ndarray) -> np.ndarray:
        if isinstance(self.module, Identity):
            return x
        out = self.bufs.get("out", x.shape)
        return apply_activation(self.module, x, out, self.bufs)

    def describe(self) -> str:
        return type(self.module).__name__


class ResidualKernel(Kernel):
    """Two-branch residual block: main chain + shortcut, summed, activated."""

    def __init__(
        self,
        main: list[Kernel],
        down: list[Kernel] | None,
        act: Module | None,
    ) -> None:
        self.main = main
        self.down = down
        self.act = act
        self.bufs = _Buffers()

    def refresh(self) -> None:
        for step in self.main:
            step.refresh()
        for step in self.down or ():
            step.refresh()

    def child_kernels(self) -> "tuple[tuple[str, list[Kernel]], ...]":
        if self.down is None:
            return (("main", self.main),)
        return (("main", self.main), ("down", self.down))

    def source_modules(self) -> "tuple[Module, ...]":
        # The whole block is one plan step: a fault anywhere inside it
        # (either branch) diverges the block's output.
        modules: tuple[Module, ...] = ()
        for _branch, steps in self.child_kernels():
            for step in steps:
                modules += step.source_modules()
        if self.act is not None:
            modules += (self.act,)
        return modules

    def _run_branch(self, steps: list[Kernel], x: np.ndarray) -> np.ndarray:
        prof = self.prof
        if prof is None:
            for step in steps:
                x = step.run(x)
            return x
        for step in steps:
            started = prof.now()
            x = step.run(x)
            prof.step(step, started, prof.now())
        return x

    def run(self, x: np.ndarray) -> np.ndarray:
        identity = self._run_branch(self.down, x) if self.down else x
        h = self._run_branch(self.main, x)
        out = self.bufs.get("out", h.shape)
        np.add(h, identity, out=out)
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        main = " -> ".join(step.describe() for step in self.main)
        if self.down is None:
            shortcut = "identity"
        else:
            shortcut = " -> ".join(step.describe() for step in self.down)
        return f"residual[{main}; shortcut {shortcut}]"


class FallbackKernel(Kernel):
    """Run an uncompilable module through its own (eval-mode) forward.

    Correctness net for custom architectures: semantics are identical to
    the module path (thread-local eval override, no grad recording), the
    step just forgoes the compiled speedup.
    """

    def __init__(self, module: Module) -> None:
        self.module = module

    def source_modules(self) -> "tuple[Module, ...]":
        return (self.module,)

    def run(self, x: np.ndarray) -> np.ndarray:
        with eval_mode(), no_grad():
            return self.module(Tensor(x)).data

    def describe(self) -> str:
        return f"fallback({type(self.module).__name__})"


class FaultStepKernel(Kernel):
    """Native kernel for a transient activation-fault layer.

    Replays :meth:`repro.fault.activation.ActivationFaultLayer.forward`
    exactly — encode to fixed-point words, draw fresh flip sites from
    the layer's *live* random stream, flip, decode — reading the armed
    state at run time, so one compiled plan serves both the clean and
    the armed phases of a campaign.  Disarmed, the step is a pure
    pass-through (zero cost), which is where protected-model campaigns
    recover the compiled speedup the old ``FallbackKernel`` treatment
    surrendered.

    Warm-up forwards (``repro.nn.warmup_mode``) skip the step entirely:
    they must not advance the layer's random stream or its counters,
    or plan and module paths would desynchronise.
    """

    def __init__(self, layer: Module) -> None:
        self.layer = layer

    def source_modules(self) -> "tuple[Module, ...]":
        return (self.layer,)

    def run(self, x: np.ndarray) -> np.ndarray:
        layer = self.layer
        if not layer.enabled or layer.fault_model is None or is_warmup():
            return x
        # Same helper as the layer's own forward — one implementation
        # of the fault arithmetic, one random-stream consumption order.
        return layer.apply_faults(x)

    def describe(self) -> str:
        return f"fault-site({self.layer.fmt})"
