"""Pure-numpy inference kernels with preallocated, reused buffers.

Each kernel wraps one (or a fused group of) :class:`~repro.nn.Module`
layers and evaluates the *identical* float32 arithmetic the module's
autograd forward performs — same primitive calls, same operand order —
without constructing a single ``Tensor`` or ``Function``.  Bit-for-bit
equality with the eval-mode module forward is a hard contract, verified
for every registry model by ``tests/runtime/test_bit_exact.py``; it is
what lets fault campaigns switch the compiled path on and off without
changing a result.

Two rules keep fault-injection semantics intact:

- **Live parameter views.**  Kernels never copy weights: every ``run``
  reads ``param.data`` at call time, so a bit flipped by
  :class:`repro.fault.FaultInjector` (which *replaces* ``param.data``)
  is picked up by the very next forward.
- **Refreshable folded constants.**  The only derived quantities a
  kernel caches between calls are eval-mode BatchNorm statistics (the
  reshaped running mean and the precomputed ``(var + eps) ** -0.5``).
  :meth:`Kernel.refresh` recomputes them from the live module; the
  owning :class:`~repro.runtime.plan.InferencePlan` calls it whenever a
  parameter mutation is signalled or detected.

Intermediate buffers are allocated lazily per ``(name, shape)`` and
reused across calls — the im2col column matrix, the GEMM output, and
the NCHW output of every layer are written in place on each forward,
which removes the per-pass allocation churn that dominates the module
path.  Kernels never write into their *input* array: plan inputs (e.g.
an :class:`~repro.eval.Evaluator`'s materialised batches) are read-only.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.grad_mode import no_grad
from repro.autograd.ops_conv import _out_size, as_pair
from repro.autograd.tensor import Tensor
from repro.core.bounded_relu import BoundedReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.errors import ConfigurationError
from repro.nn.activations import Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module, eval_mode
from repro.nn.norm import _BatchNormBase
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "ACTIVATION_TYPES",
    "ActivationKernel",
    "AvgPoolKernel",
    "BatchNormKernel",
    "ConvKernel",
    "FallbackKernel",
    "FlattenKernel",
    "GlobalAvgPoolKernel",
    "Kernel",
    "LinearKernel",
    "MaxPoolKernel",
    "ResidualKernel",
    "apply_activation",
]

#: Activation modules the kernels can evaluate inline (as fused
#: epilogues or standalone steps) with bit-exact module semantics.
#: ``BoundedReLU`` covers its subclasses GBReLU and FitReLUNaive.
ACTIVATION_TYPES = (
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Softmax,
    BoundedReLU,
    BoundedTanh,
    FitReLU,
    Identity,
)


class _Buffers:
    """Lazily-allocated scratch arrays, reused by ``(name, shape)``.

    Distinct batch sizes (a serve lane's variable micro-batches, an
    evaluator's ragged final batch) keep distinct buffers, so switching
    between them never reallocates.
    """

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict[tuple, np.ndarray] = {}

    def get(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: type = np.float32,
        fill: float | None = None,
    ) -> np.ndarray:
        key = (name, shape, np.dtype(dtype))
        buf = self._store.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            if fill is not None:
                # One-time fill: callers rely on never-rewritten regions
                # (padding borders) keeping this value across reuses.
                buf.fill(fill)
            self._store[key] = buf
        return buf


def _sigmoid_into(a: np.ndarray, out: np.ndarray) -> np.ndarray:
    """The numerically stable sigmoid of ``ops_nn._Sigmoid``, verbatim."""
    positive = a >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
    exp_a = np.exp(a[~positive])
    out[~positive] = exp_a / (1.0 + exp_a)
    return out


def apply_activation(
    module: Module, src: np.ndarray, out: np.ndarray, bufs: _Buffers
) -> np.ndarray:
    """Evaluate ``module``'s activation on ``src``, writing into ``out``.

    ``out`` may alias ``src`` (the fused-epilogue case); every branch
    reads any pre-activation-dependent masks before overwriting.  The
    arithmetic mirrors each module's forward exactly — same primitive
    ops in the same order — so results are bit-identical to the
    autograd path.
    """
    if isinstance(module, Identity):
        return src
    if isinstance(module, ReLU):
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(src, 0, out=mask)
        return np.multiply(src, mask, out=out)
    if isinstance(module, BoundedReLU):
        bound = module.bound.data
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        if module.mode == "saturate":
            np.greater(src, 0, out=mask)
            np.multiply(src, mask, out=out)
            return np.minimum(out, bound, out=out)
        over = bufs.get("act_over", src.shape, dtype=np.bool_)
        np.greater(src, bound, out=over)
        np.greater(src, 0, out=mask)
        np.multiply(src, mask, out=out)
        out[over] = 0.0
        return out
    if isinstance(module, BoundedTanh):
        bound = module.bound.data
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(src, 0, out=mask)
        np.multiply(src, mask, out=out)
        np.divide(out, bound, out=out)
        np.tanh(out, out=out)
        return np.multiply(bound, out, out=out)
    if isinstance(module, FitReLU):
        bound = module.bound.data
        if module.slope_mode == "relative":
            scale = (module.k / np.maximum(np.abs(bound), 1e-6)).astype(np.float32)
        else:
            scale = np.float32(module.k)
        z = bufs.get("act_z", src.shape)
        np.subtract(bound, src, out=z)
        np.multiply(z, scale, out=z)
        gate = bufs.get("act_gate", src.shape)
        _sigmoid_into(z, gate)
        np.multiply(src, gate, out=out)
        mask = bufs.get("act_mask", src.shape, dtype=np.bool_)
        np.greater(out, 0, out=mask)
        return np.multiply(out, mask, out=out)
    if isinstance(module, LeakyReLU):
        mask = src > 0
        out[...] = np.where(mask, src, module.negative_slope * src)
        return out
    if isinstance(module, Sigmoid):
        return _sigmoid_into(src, out)
    if isinstance(module, Tanh):
        return np.tanh(src, out=out)
    if isinstance(module, Softmax):
        shifted = src - src.max(axis=module.axis, keepdims=True)
        exp = np.exp(shifted)
        out[...] = exp / exp.sum(axis=module.axis, keepdims=True)
        return out
    raise ConfigurationError(
        f"no inline kernel for activation {type(module).__name__}"
    )


class Kernel:
    """One step of an :class:`~repro.runtime.plan.InferencePlan`."""

    def refresh(self) -> None:
        """Recompute cached constants from the live module state."""

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class _BNFold:
    """Cached eval-mode BatchNorm constants (the plan's folded state).

    ``mean`` and ``inv_std`` are flat per-channel vectors; the affine
    weight/bias are read live at run time (views are cheap and live
    views keep injected faults in BN parameters immediately visible).
    """

    __slots__ = ("bn", "mean", "inv_std")

    def __init__(self, bn: _BatchNormBase) -> None:
        self.bn = bn
        self.refresh()

    def refresh(self) -> None:
        bn = self.bn
        # Snapshots, not views: both constants change only via refresh(),
        # which is the whole point of the fold/refresh contract.
        self.mean = np.array(bn.running_mean, dtype=np.float32).reshape(-1)
        # Same expression as the module's (var + eps) ** -0.5: float32
        # array + float32 scalar, then a python-float exponent.
        self.inv_std = (
            np.asarray(bn.running_var, dtype=np.float32).reshape(-1)
            + np.float32(bn.eps)
        ) ** -0.5

    def apply_vectors(self, flat: np.ndarray) -> None:
        """Normalise a channels-last 2-D view in place (GEMM epilogue)."""
        np.subtract(flat, self.mean, out=flat)
        np.multiply(flat, self.inv_std, out=flat)
        if self.bn.affine:
            np.multiply(flat, self.bn.weight.data.reshape(-1), out=flat)
            np.add(flat, self.bn.bias.data.reshape(-1), out=flat)


class ConvKernel(Kernel):
    """im2col convolution with optional fused BatchNorm + activation.

    The BatchNorm epilogue runs on the GEMM output while it is still in
    channels-last ``(positions, channels)`` layout — per-channel
    vectors broadcast along rows for free — and the activation runs on
    the final NCHW buffer (bound arrays of any granularity broadcast
    there).  Elementwise ops are layout-independent, so both fusions
    stay bit-exact with the unfused module chain.
    """

    def __init__(
        self,
        conv: Conv2d,
        bn: _BatchNormBase | None = None,
        act: Module | None = None,
    ) -> None:
        self.conv = conv
        self.bn = _BNFold(bn) if bn is not None else None
        self.act = act
        self.bufs = _Buffers()

    def refresh(self) -> None:
        if self.bn is not None:
            self.bn.refresh()

    def run(self, x: np.ndarray) -> np.ndarray:
        conv = self.conv
        weight = conv.weight.data
        n, c, h, w = x.shape
        kh, kw = conv.kernel_size
        sh, sw = conv.stride
        ph, pw = conv.padding
        groups = conv.groups
        out_channels = conv.out_channels
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)

        if ph or pw:
            padded = self.bufs.get(
                "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=0.0
            )
            padded[:, :, ph : ph + h, pw : pw + w] = x
        else:
            padded = x
        windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[
            :, :, ::sh, ::sw
        ]
        cols6 = self.bufs.get("cols", (n, oh, ow, c, kh, kw))
        np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
        positions = n * oh * ow
        if groups == 1:
            cols = cols6.reshape(positions, c * kh * kw)
            w_mat = weight.reshape(out_channels, -1)
            gemm = self.bufs.get("gemm", (positions, out_channels))
            np.matmul(cols, w_mat.T, out=gemm)
        else:
            cg = c // groups
            og = out_channels // groups
            cols = cols6.reshape(positions, groups, cg * kh * kw)
            w_mat = weight.reshape(groups, og, cg * kh * kw)
            gemm3 = self.bufs.get("gemm", (positions, groups, og))
            np.einsum("pgk,gok->pgo", cols, w_mat, out=gemm3)
            gemm = gemm3.reshape(positions, out_channels)
        if conv.bias is not None:
            gemm += conv.bias.data
        if self.bn is not None:
            self.bn.apply_vectors(gemm)
        out = self.bufs.get("out", (n, out_channels, oh, ow))
        np.copyto(out, gemm.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2))
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        parts = [f"conv{self.conv.kernel_size}"]
        if self.bn is not None:
            parts.append("bn")
        if self.act is not None:
            parts.append(type(self.act).__name__)
        return "+".join(parts)


class LinearKernel(Kernel):
    """GEMM linear layer with optional fused BatchNorm1d + activation."""

    def __init__(
        self,
        linear: Linear,
        bn: _BatchNormBase | None = None,
        act: Module | None = None,
    ) -> None:
        self.linear = linear
        self.bn = _BNFold(bn) if bn is not None else None
        self.act = act
        self.bufs = _Buffers()

    def refresh(self) -> None:
        if self.bn is not None:
            self.bn.refresh()

    def run(self, x: np.ndarray) -> np.ndarray:
        linear = self.linear
        out = self.bufs.get("out", (x.shape[0], linear.out_features))
        np.matmul(x, linear.weight.data.T, out=out)
        if linear.bias is not None:
            np.add(out, linear.bias.data, out=out)
        if self.bn is not None:
            self.bn.apply_vectors(out)
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        parts = [f"linear({self.linear.in_features}->{self.linear.out_features})"]
        if self.bn is not None:
            parts.append("bn")
        if self.act is not None:
            parts.append(type(self.act).__name__)
        return "+".join(parts)


class BatchNormKernel(Kernel):
    """Standalone eval-mode BatchNorm (when no GEMM precedes it)."""

    def __init__(self, bn: _BatchNormBase) -> None:
        self.fold = _BNFold(bn)
        self.bufs = _Buffers()

    def refresh(self) -> None:
        self.fold.refresh()

    def run(self, x: np.ndarray) -> np.ndarray:
        bn = self.fold.bn
        stat_shape = [1] * x.ndim
        stat_shape[1] = bn.num_features
        shape = tuple(stat_shape)
        out = self.bufs.get("out", x.shape)
        np.subtract(x, self.fold.mean.reshape(shape), out=out)
        np.multiply(out, self.fold.inv_std.reshape(shape), out=out)
        if bn.affine:
            np.multiply(out, bn.weight.data.reshape(shape), out=out)
            np.add(out, bn.bias.data.reshape(shape), out=out)
        return out


class MaxPoolKernel(Kernel):
    """Max pooling.

    Max selects an element exactly (no rounding), so any evaluation
    order is bit-identical to the module's argmax/take formulation —
    which frees the kernel to use the fastest strategy per geometry:
    non-overlapping unpadded windows (the zoo's only configuration)
    reduce over a pure reshape view; everything else copies the window
    view contiguous once and reduces that.
    """

    def __init__(self, pool: MaxPool2d) -> None:
        self.kernel = as_pair(pool.kernel_size, "kernel")
        stride = pool.kernel_size if pool.stride is None else pool.stride
        self.stride = as_pair(stride, "stride")
        self.padding = as_pair(pool.padding, "padding")
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, h, w = x.shape
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        if ph or pw:
            padded = self.bufs.get(
                "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=-np.inf
            )
            padded[:, :, ph : ph + h, pw : pw + w] = x
        else:
            padded = x
        out = self.bufs.get("out", (n, c, oh, ow))
        # One vectorised elementwise max per kernel offset — an order of
        # magnitude faster than a windowed reduction, and exact: max
        # selects an element, whatever the evaluation order.
        first = True
        for i in range(kh):
            for j in range(kw):
                window = padded[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class AvgPoolKernel(Kernel):
    """Strided-window average pooling (same reduction call as the op)."""

    def __init__(self, pool: AvgPool2d) -> None:
        self.kernel = as_pair(pool.kernel_size, "kernel")
        stride = pool.kernel_size if pool.stride is None else pool.stride
        self.stride = as_pair(stride, "stride")
        self.padding = as_pair(pool.padding, "padding")
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        n, c, h, w = x.shape
        oh = _out_size(h, kh, sh, ph)
        ow = _out_size(w, kw, sw, pw)
        if ph or pw:
            padded = self.bufs.get(
                "padded", (n, c, h + 2 * ph, w + 2 * pw), fill=0.0
            )
            padded[:, :, ph : ph + h, pw : pw + w] = x
        else:
            padded = x
        windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[
            :, :, ::sh, ::sw
        ]
        out = self.bufs.get("out", (n, c, oh, ow))
        return np.mean(windows, axis=(-2, -1), out=out)


class GlobalAvgPoolKernel(Kernel):
    """Mean over the spatial axes: (N, C, H, W) -> (N, C)."""

    def __init__(self, pool: GlobalAvgPool2d) -> None:
        del pool
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        out = self.bufs.get("out", x.shape[:2])
        return np.mean(x, axis=(2, 3), out=out)


class FlattenKernel(Kernel):
    """Collapse trailing dims (a view on the contiguous input buffer)."""

    def __init__(self, start_dim: int) -> None:
        self.start_dim = int(start_dim)

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[: self.start_dim] + (-1,))


class ActivationKernel(Kernel):
    """A standalone activation step (input is another kernel's output)."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.bufs = _Buffers()

    def run(self, x: np.ndarray) -> np.ndarray:
        if isinstance(self.module, Identity):
            return x
        out = self.bufs.get("out", x.shape)
        return apply_activation(self.module, x, out, self.bufs)

    def describe(self) -> str:
        return type(self.module).__name__


class ResidualKernel(Kernel):
    """Two-branch residual block: main chain + shortcut, summed, activated."""

    def __init__(
        self,
        main: list[Kernel],
        down: list[Kernel] | None,
        act: Module | None,
    ) -> None:
        self.main = main
        self.down = down
        self.act = act
        self.bufs = _Buffers()

    def refresh(self) -> None:
        for step in self.main:
            step.refresh()
        for step in self.down or ():
            step.refresh()

    def run(self, x: np.ndarray) -> np.ndarray:
        identity = x
        for step in self.down or ():
            identity = step.run(identity)
        h = x
        for step in self.main:
            h = step.run(h)
        out = self.bufs.get("out", h.shape)
        np.add(h, identity, out=out)
        if self.act is not None:
            apply_activation(self.act, out, out, self.bufs)
        return out

    def describe(self) -> str:
        shortcut = "identity" if self.down is None else "projection"
        return f"residual[{len(self.main)} steps, {shortcut} shortcut]"


class FallbackKernel(Kernel):
    """Run an uncompilable module through its own (eval-mode) forward.

    Correctness net for custom architectures: semantics are identical to
    the module path (thread-local eval override, no grad recording), the
    step just forgoes the compiled speedup.
    """

    def __init__(self, module: Module) -> None:
        self.module = module

    def run(self, x: np.ndarray) -> np.ndarray:
        with eval_mode(), no_grad():
            return self.module(Tensor(x)).data

    def describe(self) -> str:
        return f"fallback({type(self.module).__name__})"
