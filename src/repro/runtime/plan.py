"""The compiled inference plan: a linear kernel program over a model.

``compile_model(model, input_shape)`` flattens the module tree into an
:class:`InferencePlan` — a list of pure-numpy kernels with reused
intermediate buffers and zero autograd objects on the hot path.  The
plan is the fast path for every inference-only consumer: fault-campaign
trials (:class:`repro.eval.Evaluator` with ``runtime=True``), the
serving stack (one plan per resident checkpoint), and the CLI's
``--runtime`` flags.

Fault-visibility contract
-------------------------
Kernels read parameter arrays by live view — ``param.data`` is fetched
at call time, never copied at compile time — so a bit flipped in
``model.parameters()`` by :class:`repro.fault.FaultInjector` or the
serving chaos engine is visible in the very next plan forward.  The only
cached derived state is eval-mode BatchNorm folding; it is recomputed by
:meth:`InferencePlan.refresh`, which runs automatically when

- a mutation path signals :func:`repro.nn.invalidate_runtime_plans`
  (``FaultInjector.apply``/``restore``, ``Module.load_state_dict``,
  ``quantize_module`` all do), or
- the plan's per-call staleness probe sees that any parameter or buffer
  array object was replaced since the last refresh (the injector and
  checkpoint loaders assign fresh arrays, so this catches them even
  without the explicit signal).

Code that mutates parameter values strictly *in place* (writing through
an existing ``param.data`` array) must call ``plan.refresh()`` — or the
module-level ``invalidate`` helper — itself; no stock mutation path in
this codebase does that.

Concurrency: a plan serialises its forwards behind an internal lock
(buffers are shared state) and returns a fresh output array per call,
so serve-lane worker threads can share one plan safely.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.fault.parallel import available_workers
from repro.nn.module import Module, register_runtime_plan, warmup_mode
from repro.obs.profile import KernelProfiler, PlanProfile
from repro.obs.trace import span
from repro.runtime.compiler import compile_module
from repro.runtime.config import RuntimeConfig
from repro.runtime.kernels import Kernel, ResidualKernel

if TYPE_CHECKING:
    from repro.runtime.replica import ReplicaPlan

__all__ = ["InferencePlan", "compile_model", "resolve_gemm_workers"]


def resolve_gemm_workers(workers: int | str | None) -> int:
    """Resolve a threading knob value to a concrete worker count.

    ``None``/``0``/``1`` → serial (the default: campaigns keep the
    1-core determinism contract without relying on the kernels'
    bit-exact threading).  ``"auto"`` → :func:`available_workers`, so
    threading only engages where more than one core is actually usable.
    An explicit ``N >= 2`` is honoured as given (tests force threading
    on single-core machines to prove bit-exactness).
    """
    if workers is None:
        return 1
    if workers == "auto":
        return available_workers()
    count = int(workers)
    if count < 0:
        raise ConfigurationError(f"gemm_workers must be >= 0, got {count}")
    return max(1, count)


class InferencePlan:
    """Executable kernel program compiled from one model.

    Call the plan with a float32 input batch to get the logits array
    (always a fresh copy — safe to keep across later forwards).  Any
    batch size works; intermediate buffers are allocated per batch size
    on first use and reused afterwards.
    """

    def __init__(
        self,
        model: Module,
        steps: list[Kernel],
        input_shape: tuple[int, ...],
    ) -> None:
        self.model = model
        self.steps = steps
        self.input_shape = tuple(int(dim) for dim in input_shape)
        self._lock = threading.RLock()
        self._dirty = True
        self._signature: tuple[int, ...] = ()
        self._structure: tuple[int, ...] = self._structure_signature()
        self._gemm_workers = 1
        self._profiler: KernelProfiler | None = None
        register_runtime_plan(model, self)

    def __getstate__(self) -> dict[str, object]:
        """Plans are process-local and refuse to pickle (RPL007).

        A plan holds a lock, folded kernel constants, and identity
        fingerprints (``id()`` values) that are meaningless in another
        process.  Everything that pickles a plan's *owner* already drops
        the plans (``Module.__getstate__``, ``Evaluator.__getstate__``)
        and recompiles on the other side; reaching this method means a
        plan leaked into a pickled closure by mistake.
        """
        raise TypeError(
            "InferencePlan is process-local and cannot be pickled; "
            "pickle the model and recompile with compile_model() instead"
        )

    # ------------------------------------------------------------------
    # Folded-constant lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mark folded constants stale; the next forward refreshes them."""
        self._dirty = True

    def refresh(self) -> None:
        """Recompute folded/fused constants from the live module state.

        If the module *tree* changed since compilation — surgery such as
        activation-fault instrumentation replacing submodules — the
        kernel program is recompiled from the live structure first, so
        plans track instrumentation and its removal automatically.
        """
        with self._lock:
            structure, state = self._signatures()
            if structure != self._structure:
                steps = compile_module(self.model)
                if not steps:
                    raise ConfigurationError(
                        f"{type(self.model).__name__} recompiled to an "
                        "empty plan after a structure change"
                    )
                self.steps = steps
                self._structure = structure
                self._apply_gemm_workers()
                if self._profiler is not None:
                    # Fresh kernels: re-register them (accumulation
                    # restarts — rows for retired kernels would lie).
                    self.attach_profiler(self._profiler)
            for step in self.steps:
                step.refresh()
            self._signature = state
            self._dirty = False

    def _structure_signature(self) -> tuple[int, ...]:
        """Identity fingerprint of the module tree (surgery detection)."""
        return self._signatures()[0]

    def _signatures(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(module-tree, parameter/buffer) identity fingerprints.

        One tree walk yields both probes the per-call staleness check
        needs: the module identities detect surgery (e.g. fault-site
        instrumentation replacing submodules — the plan recompiles its
        kernels), the array identities detect replaced values.
        Mutation paths in this codebase *replace* ``param.data`` (the
        injector decodes into a fresh array, ``load_state_dict`` copies,
        ``quantize_module`` reassigns), so an identity change is a
        reliable staleness probe.  It backs up — not replaces — the
        explicit invalidation hooks: identity can theoretically recycle
        after garbage collection, which is why the hooks exist.
        """
        structure = []
        state = []
        for _, module in self.model.named_modules():
            structure.append(id(module))
            for param in module._parameters.values():
                if param is not None:  # bias=False registers a None slot
                    state.append(id(param.data))
            for buffer in module._buffers.values():
                state.append(id(buffer))
        return tuple(structure), tuple(state)

    # ------------------------------------------------------------------
    # Threading
    # ------------------------------------------------------------------
    def set_gemm_workers(self, workers: int | str | None) -> int:
        """Set the GEMM-pipeline parallelism for this plan.

        Workers partition the column-matrix assembly (the im2col
        gather) feeding each convolution GEMM; the BLAS call itself
        stays whole — splitting it is not float32-bit-exact — and is
        threaded natively by BLAS where cores allow.  Threaded and
        serial schedules produce byte-identical column matrices, so
        this is purely a wall-clock knob.  See
        :func:`resolve_gemm_workers` for accepted values; returns the
        resolved worker count.
        """
        resolved = resolve_gemm_workers(workers)
        with self._lock:
            self._gemm_workers = resolved
            self._apply_gemm_workers()
        return resolved

    def _apply_gemm_workers(self) -> None:
        def walk(steps: list[Kernel]) -> None:
            for step in steps:
                if hasattr(step, "gemm_workers"):
                    step.gemm_workers = self._gemm_workers
                if isinstance(step, ResidualKernel):
                    walk(step.main)
                    walk(step.down or [])

        walk(self.steps)

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(
        self, profiler: KernelProfiler | None = None
    ) -> KernelProfiler:
        """Attach a per-kernel profiler; every later forward accumulates.

        Registers the kernel tree (including the kernels nested inside
        residual blocks) and sets each kernel's ``prof`` hook.
        Attaching resets the profiler's accumulation; detach with
        :meth:`detach_profiler`.  Purely observational — profiled and
        unprofiled forwards are bit-identical.
        """
        with self._lock:
            resolved = profiler if profiler is not None else KernelProfiler()
            resolved.attach(list(self.steps))
            self._set_kernel_profiler(resolved)
            self._profiler = resolved
            return resolved

    def detach_profiler(self) -> None:
        """Remove the attached profiler (forwards stop being timed)."""
        with self._lock:
            self._set_kernel_profiler(None)
            self._profiler = None

    def _set_kernel_profiler(self, profiler: KernelProfiler | None) -> None:
        def walk(steps: list[Kernel]) -> None:
            for step in steps:
                step.prof = profiler
                for _branch, sub_steps in step.child_kernels():
                    walk(sub_steps)

        walk(self.steps)

    def profile(
        self,
        inputs: np.ndarray | Tensor | None = None,
        repeats: int = 3,
        warmup: int = 1,
    ) -> PlanProfile:
        """One-shot per-kernel profile: gather/GEMM/epilogue per step.

        Runs ``warmup`` untimed forwards, then ``repeats`` timed ones,
        and returns the :class:`~repro.obs.PlanProfile` report (rows
        average over the timed forwards).  ``inputs`` defaults to a
        zero batch of the plan's compiled ``input_shape``.

        Every profiled forward runs under ``warmup_mode``, so transient
        activation-fault layers neither fire nor advance their random
        streams — profiling a campaign's plan is side-band; the
        (disarmed) fault-site steps are measured as the pass-throughs
        they are in the clean phase.  A previously attached persistent
        profiler is re-attached afterwards with its accumulation reset.
        """
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        if inputs is None:
            inputs = np.zeros(self.input_shape, dtype=np.float32)
        with self._lock:
            previous = self._profiler
            profiler = KernelProfiler()
            try:
                with warmup_mode():
                    for _ in range(warmup):
                        self(inputs)
                    self.attach_profiler(profiler)
                    for _ in range(repeats):
                        self(inputs)
            finally:
                if previous is not None:
                    self.attach_profiler(previous)
                else:
                    self.detach_profiler()
        return profiler.result()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __call__(self, inputs: np.ndarray | Tensor) -> np.ndarray:
        """One inference forward; returns a fresh logits array.

        Inputs are converted to a contiguous float32 array (the plan's
        numeric contract); the input array itself is never written.
        """
        logits, _ = self.forward_from(inputs)
        return logits

    def forward_from(
        self,
        inputs: np.ndarray | Tensor,
        start: int = 0,
        taps: tuple[int, ...] = (),
    ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """Run the step suffix ``start..end``, snapshotting at ``taps``.

        ``inputs`` is the activation *entering* step ``start`` — for
        ``start=0`` the plan input, otherwise an intermediate a previous
        forward tapped.  ``taps`` names step indices whose entering
        activation should be returned as owned copies (buffers are
        reused across calls and some steps return views, so snapshots
        must copy); a tap at or before ``start`` is skipped — the
        caller already holds that activation.

        Because every kernel's output is a pure function of its input
        and the live module state, a suffix run from a tapped activation
        is bit-identical to the corresponding tail of a full forward —
        the shapes (and therefore the BLAS micro-kernels) are exactly
        those of the full pass.  This is what
        :class:`~repro.runtime.replica.ReplicaPlan` builds on.
        """
        x = inputs.data if isinstance(inputs, Tensor) else inputs
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        wanted = {int(tap) for tap in taps}
        snapshots: dict[int, np.ndarray] = {}
        with self._lock, span("runtime.forward", steps=len(self.steps) - start):
            if self._dirty or (self._structure, self._signature) != self._signatures():
                self.refresh()
            if not 0 <= start <= len(self.steps):
                raise ConfigurationError(
                    f"start step {start} outside plan of {len(self.steps)} steps"
                )
            prof = self._profiler
            if prof is not None:
                prof.begin_forward()
            for index in range(start, len(self.steps)):
                if index > start and index in wanted:
                    snapshots[index] = np.array(x, dtype=np.float32, copy=True)
                step = self.steps[index]
                if prof is None:
                    x = step.run(x)
                else:
                    started = prof.now()
                    x = step.run(x)
                    prof.step(step, started, prof.now())
            # The final buffer is reused by the next call: hand the
            # caller an owned copy (logits are small).
            return np.array(x, dtype=np.float32, copy=True), snapshots

    def replicate(self, replicas: int) -> "ReplicaPlan":
        """Wrap this plan for replica-batched fault evaluation.

        See :class:`repro.runtime.replica.ReplicaPlan`: ``replicas``
        faulted variants of the model share the clean prefix of each
        forward and re-run only the steps a fault can affect.
        """
        from repro.runtime.replica import ReplicaPlan

        return ReplicaPlan(self, replicas)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """One line per kernel step (diagnostics and tests)."""
        return "\n".join(
            f"[{index:2d}] {step.describe()}" for index, step in enumerate(self.steps)
        )

    def __repr__(self) -> str:
        return (
            f"InferencePlan({type(self.model).__name__}, "
            f"{len(self.steps)} steps, input_shape={self.input_shape})"
        )


def compile_model(
    model: Module,
    input_shape: tuple[int, ...],
    warm: bool = True,
    gemm_workers: int | str | None = None,
    profile: bool = False,
    replicas: int | None = None,
    config: "RuntimeConfig | None" = None,
) -> "InferencePlan | ReplicaPlan":
    """Compile ``model`` into an :class:`InferencePlan`.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.  Zoo architectures and layer
        containers compile to fused numpy kernels; unrecognised modules
        fall back to their own eval-mode forward (correct, not faster).
    input_shape:
        Expected input geometry — either a full batch shape
        (``(N, C, H, W)`` / ``(N, F)``) or a single-sample shape
        (``(C, H, W)``), in which case batch size 1 is assumed for the
        warm-up pass.  Plans accept any batch size at call time.
    warm:
        Run one zero-input forward at compile time to allocate buffers
        and validate the kernel shapes end-to-end (default True).  The
        pass runs under :func:`repro.nn.warmup_mode`, so per-forward
        side effects (transient activation faults) are suppressed.
    gemm_workers:
        Row-partitioned GEMM threading: ``None``/``0``/``1`` serial
        (default — fault campaigns keep the 1-core determinism
        contract), ``"auto"`` to use every available core, ``N >= 2``
        for an explicit width.  Bit-identical either way.  Deprecated
        alias for ``config=RuntimeConfig(gemm_workers=...)``.
    profile:
        Attach a persistent :class:`~repro.obs.KernelProfiler` (after
        the warm pass, so only real forwards accumulate).  Read the
        report via ``plan._profiler.result()`` or use the one-shot
        :meth:`InferencePlan.profile` instead.  Deprecated alias for
        ``config=RuntimeConfig(profile=True)``.
    replicas:
        When set (``>= 1``), wrap the compiled plan in a
        :class:`~repro.runtime.replica.ReplicaPlan` sized for that many
        fault lanes and return it instead (equivalent to
        ``plan.replicate(replicas)``).  Deprecated alias for
        ``config=RuntimeConfig(replicas=...)``.
    config:
        One :class:`~repro.runtime.config.RuntimeConfig` carrying the
        three knobs above (``enabled`` is ignored here — calling the
        compiler *is* enabling the runtime).  Mutually exclusive with
        the per-knob aliases.
    """
    if config is not None:
        if gemm_workers is not None or profile or replicas is not None:
            raise ConfigurationError(
                "compile_model got both config= and the deprecated "
                "gemm_workers/profile/replicas alias(es); pass the values "
                "inside RuntimeConfig instead"
            )
        gemm_workers = config.gemm_workers
        profile = config.profile
        replicas = config.replicas
    shape = tuple(int(dim) for dim in input_shape)
    if len(shape) == 3:
        shape = (1, *shape)
    if not shape or any(dim < 1 for dim in shape):
        raise ConfigurationError(
            f"input_shape must be a non-empty positive shape, got {input_shape!r}"
        )
    with span("runtime.compile", model=type(model).__name__):
        steps = compile_module(model)
        if not steps:
            raise ConfigurationError(
                f"{type(model).__name__} compiled to an empty plan"
            )
        plan = InferencePlan(model, steps, shape)
        plan.set_gemm_workers(gemm_workers)
        if warm:
            with warmup_mode():
                plan(np.zeros(shape, dtype=np.float32))
    if profile:
        plan.attach_profiler()
    if replicas is not None:
        return plan.replicate(replicas)
    return plan
