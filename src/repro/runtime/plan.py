"""The compiled inference plan: a linear kernel program over a model.

``compile_model(model, input_shape)`` flattens the module tree into an
:class:`InferencePlan` — a list of pure-numpy kernels with reused
intermediate buffers and zero autograd objects on the hot path.  The
plan is the fast path for every inference-only consumer: fault-campaign
trials (:class:`repro.eval.Evaluator` with ``runtime=True``), the
serving stack (one plan per resident checkpoint), and the CLI's
``--runtime`` flags.

Fault-visibility contract
-------------------------
Kernels read parameter arrays by live view — ``param.data`` is fetched
at call time, never copied at compile time — so a bit flipped in
``model.parameters()`` by :class:`repro.fault.FaultInjector` or the
serving chaos engine is visible in the very next plan forward.  The only
cached derived state is eval-mode BatchNorm folding; it is recomputed by
:meth:`InferencePlan.refresh`, which runs automatically when

- a mutation path signals :func:`repro.nn.invalidate_runtime_plans`
  (``FaultInjector.apply``/``restore``, ``Module.load_state_dict``,
  ``quantize_module`` all do), or
- the plan's per-call staleness probe sees that any parameter or buffer
  array object was replaced since the last refresh (the injector and
  checkpoint loaders assign fresh arrays, so this catches them even
  without the explicit signal).

Code that mutates parameter values strictly *in place* (writing through
an existing ``param.data`` array) must call ``plan.refresh()`` — or the
module-level ``invalidate`` helper — itself; no stock mutation path in
this codebase does that.

Concurrency: a plan serialises its forwards behind an internal lock
(buffers are shared state) and returns a fresh output array per call,
so serve-lane worker threads can share one plan safely.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.nn.module import Module, register_runtime_plan
from repro.runtime.compiler import compile_module
from repro.runtime.kernels import Kernel

__all__ = ["InferencePlan", "compile_model"]


class InferencePlan:
    """Executable kernel program compiled from one model.

    Call the plan with a float32 input batch to get the logits array
    (always a fresh copy — safe to keep across later forwards).  Any
    batch size works; intermediate buffers are allocated per batch size
    on first use and reused afterwards.
    """

    def __init__(
        self,
        model: Module,
        steps: list[Kernel],
        input_shape: tuple[int, ...],
    ) -> None:
        self.model = model
        self.steps = steps
        self.input_shape = tuple(int(dim) for dim in input_shape)
        self._lock = threading.RLock()
        self._dirty = True
        self._signature: tuple[int, ...] = ()
        register_runtime_plan(model, self)

    # ------------------------------------------------------------------
    # Folded-constant lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Mark folded constants stale; the next forward refreshes them."""
        self._dirty = True

    def refresh(self) -> None:
        """Recompute folded/fused constants from the live module state."""
        with self._lock:
            for step in self.steps:
                step.refresh()
            self._signature = self._state_signature()
            self._dirty = False

    def _state_signature(self) -> tuple[int, ...]:
        """Identity fingerprint of every parameter/buffer array object.

        Mutation paths in this codebase *replace* ``param.data`` (the
        injector decodes into a fresh array, ``load_state_dict`` copies,
        ``quantize_module`` reassigns), so an identity change is a
        reliable staleness probe.  It backs up — not replaces — the
        explicit invalidation hooks: identity can theoretically recycle
        after garbage collection, which is why the hooks exist.
        """
        model = self.model
        signature = [id(param.data) for _, param in model.named_parameters()]
        signature.extend(id(buffer) for _, buffer in model.named_buffers())
        return tuple(signature)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __call__(self, inputs: np.ndarray | Tensor) -> np.ndarray:
        """One inference forward; returns a fresh logits array.

        Inputs are converted to a contiguous float32 array (the plan's
        numeric contract); the input array itself is never written.
        """
        x = inputs.data if isinstance(inputs, Tensor) else inputs
        x = np.ascontiguousarray(np.asarray(x, dtype=np.float32))
        with self._lock:
            if self._dirty or self._signature != self._state_signature():
                self.refresh()
            for step in self.steps:
                x = step.run(x)
            # The final buffer is reused by the next call: hand the
            # caller an owned copy (logits are small).
            return np.array(x, dtype=np.float32, copy=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """One line per kernel step (diagnostics and tests)."""
        return "\n".join(
            f"[{index:2d}] {step.describe()}" for index, step in enumerate(self.steps)
        )

    def __repr__(self) -> str:
        return (
            f"InferencePlan({type(self.model).__name__}, "
            f"{len(self.steps)} steps, input_shape={self.input_shape})"
        )


def compile_model(
    model: Module,
    input_shape: tuple[int, ...],
    warm: bool = True,
) -> InferencePlan:
    """Compile ``model`` into an :class:`InferencePlan`.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.Module`.  Zoo architectures and layer
        containers compile to fused numpy kernels; unrecognised modules
        fall back to their own eval-mode forward (correct, not faster).
    input_shape:
        Expected input geometry — either a full batch shape
        (``(N, C, H, W)`` / ``(N, F)``) or a single-sample shape
        (``(C, H, W)``), in which case batch size 1 is assumed for the
        warm-up pass.  Plans accept any batch size at call time.
    warm:
        Run one zero-input forward at compile time to allocate buffers
        and validate the kernel shapes end-to-end (default True).
    """
    shape = tuple(int(dim) for dim in input_shape)
    if len(shape) == 3:
        shape = (1, *shape)
    if not shape or any(dim < 1 for dim in shape):
        raise ConfigurationError(
            f"input_shape must be a non-empty positive shape, got {input_shape!r}"
        )
    steps = compile_module(model)
    if not steps:
        raise ConfigurationError(
            f"{type(model).__name__} compiled to an empty plan"
        )
    plan = InferencePlan(model, steps, shape)
    if warm:
        plan(np.zeros(shape, dtype=np.float32))
    return plan
