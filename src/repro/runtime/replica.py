"""Replica-batched fault evaluation: share the clean prefix, re-run the rest.

A campaign trial flips bits in *parameters* and asks for the faulted
model's accuracy.  Run per-trial, every trial pays a full compiled
forward per batch even though most of that forward is identical to the
clean pass: a fault in layer L cannot change any activation computed
before the first kernel step that reads L's parameters.

:class:`ReplicaPlan` exploits exactly that.  One clean forward per
batch is executed with *taps* — owned snapshots of the activation
entering every step at which some parameter is first read — and cached.
Each faulted replica ("lane") then re-runs only the plan suffix from
its divergence step, seeded with the cached clean activation.  For
single-bit faults on deep models the expected suffix is a small
fraction of the full forward, which is where the replica-batched
campaign speedup comes from; dense many-layer faults degrade gracefully
toward one full forward per lane (never worse than the per-trial path,
up to snapshot bookkeeping).

Why lanes are *virtual*, not a physical batch dimension
-------------------------------------------------------
Stacking R replicas along the batch axis through one shared-weight GEMM
cannot satisfy the repository's bit-exactness contract, for two
reasons.  First, parameter faults give every lane *different* weights —
there is no shared GEMM operand to batch.  Second, PR 4 measured that
changing a BLAS call's shape changes its K-accumulation order
(shape-selected micro-kernels), so an R-fold batch GEMM is not
float32-bit-identical to R serial GEMMs.  The share-until-diverge
scheme sidesteps both: every GEMM a lane executes has *exactly* the
serial shapes and operands, so lane results equal the per-trial path
bit for bit on any BLAS backend, by construction — the never-row-split
rule of ``runtime/kernels.py`` extended to replicas (lint rule RPL010,
``docs/INVARIANTS.md``).

Replay safety
-------------
Suffix replay assumes every step is a pure function of its input and
the live module state.  Two step kinds may not be: a
:class:`~repro.runtime.kernels.FallbackKernel` runs arbitrary module
code, and an *armed* :class:`~repro.runtime.kernels.FaultStepKernel`
draws from the layer's random stream (replaying it would desynchronise
RNG consumption with the serial schedule).  :meth:`ReplicaPlan.replay_safe`
reports whether the current plan is free of both; callers
(:meth:`repro.eval.Evaluator.lane_accuracies`) fall back to the
per-trial path otherwise.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.profile import KernelProfiler, PlanProfile
from repro.runtime.kernels import FallbackKernel, FaultStepKernel, Kernel

if TYPE_CHECKING:
    from repro.nn.parameter import Parameter
    from repro.runtime.plan import InferencePlan

__all__ = ["DEFAULT_SNAPSHOT_BUDGET", "ReplicaPlan", "fault_parameters"]

#: Byte budget for cached clean-activation snapshots (per ReplicaPlan).
#: Evicted batches only cost a clean re-run / full-forward fallback,
#: never correctness.
DEFAULT_SNAPSHOT_BUDGET = 256 << 20


def fault_parameters(
    injector: Any, sites: Sequence[int]
) -> "tuple[Parameter, ...] | None":
    """The parameters ``sites`` touch, via the injector's metadata hooks.

    Returns ``None`` when the injector lacks the hooks
    (``site_metadata`` + ``parameters``) — callers then cannot bound the
    divergence step and must treat the fault as affecting the whole
    forward.
    """
    metadata = getattr(injector, "site_metadata", None)
    parameters = getattr(injector, "parameters", None)
    if metadata is None or parameters is None:
        return None
    indices = sorted({index for index, _bit in metadata(sites)})
    return tuple(parameters[index] for index in indices)


def _walk_steps(steps: Iterable[Kernel]) -> Iterable[Kernel]:
    for step in steps:
        yield step
        for _branch, sub_steps in step.child_kernels():
            yield from _walk_steps(sub_steps)


class ReplicaPlan:
    """R-lane fault evaluation over one :class:`InferencePlan`.

    ``replicas`` is the lane-group width campaign schedulers size their
    trial groups by; the evaluation itself is width-independent (any
    number of lanes may share one prepared clean pass).

    Usage, per evaluation batch (model **clean**)::

        clean_logits = replica.prepare(key, inputs)

    then, per lane (model carrying that lane's fault)::

        logits = replica.lane_forward(key, inputs, params)

    where ``params`` are the faulted parameters
    (:func:`fault_parameters`).  ``prepare`` validates the cache against
    the plan's identity signatures, so a new checkpoint, surgery, or a
    genuine weight update flushes stale snapshots automatically; the
    caller's only contract is that between ``prepare`` and
    ``lane_forward`` the sole model mutation is the injector's
    all-or-nothing flip of exactly ``params``.
    """

    def __init__(
        self,
        plan: "InferencePlan",
        replicas: int,
        snapshot_budget: int = DEFAULT_SNAPSHOT_BUDGET,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.plan = plan
        self.replicas = int(replicas)
        self.snapshot_budget = int(snapshot_budget)
        self._lock = threading.RLock()
        #: (structure, state) signatures of the clean model the cache
        #: was built against; None until the first prepare().
        self._generation: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self._starts: dict[int, int] = {}
        self._taps: tuple[int, ...] = ()
        self._logits: "OrderedDict[Any, np.ndarray]" = OrderedDict()
        self._snapshots: "OrderedDict[Any, dict[int, np.ndarray]]" = OrderedDict()
        self._snapshot_bytes = 0

    def __getstate__(self) -> dict[str, object]:
        """Process-local (lock + plan + id()-keyed caches); see RPL007."""
        raise TypeError(
            "ReplicaPlan is process-local and cannot be pickled; pickle "
            "the model and rebuild with compile_model(replicas=...)"
        )

    # ------------------------------------------------------------------
    # Divergence map
    # ------------------------------------------------------------------
    def _rebuild_map(self) -> None:
        """Map each parameter to the earliest plan step reading it."""
        starts: dict[int, int] = {}
        for index, step in enumerate(self.plan.steps):
            for module in step.source_modules():
                for param in module.parameters():
                    starts.setdefault(id(param), index)
        self._starts = starts
        self._taps = tuple(sorted({s for s in starts.values() if s > 0}))

    def lane_start(self, params: "Iterable[Parameter] | None") -> int:
        """Earliest step a fault in ``params`` can affect (0 = unknown)."""
        if params is None:
            return 0
        start: int | None = None
        for param in params:
            step = self._starts.get(id(param), 0)
            start = step if start is None else min(start, step)
            if start == 0:
                break
        return 0 if start is None else start

    def replay_safe(self) -> bool:
        """Whether every current step is pure (suffix replay is exact).

        False when the plan holds a :class:`FallbackKernel` (arbitrary
        module code) or an *armed* :class:`FaultStepKernel` (replaying
        it would double-draw the layer's random stream).
        """
        for step in _walk_steps(self.plan.steps):
            if isinstance(step, FallbackKernel):
                return False
            if isinstance(step, FaultStepKernel):
                layer = step.layer
                if (
                    getattr(layer, "enabled", False)
                    and getattr(layer, "fault_model", None) is not None
                ):
                    return False
        return True

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached clean pass (next prepare() rebuilds)."""
        with self._lock:
            self._generation = None
            self._logits.clear()
            self._snapshots.clear()
            self._snapshot_bytes = 0

    def _ensure_generation(self) -> None:
        """Refresh the plan and re-key the cache to the clean model state.

        Caller holds both locks and guarantees the model is clean.
        """
        plan = self.plan
        if plan._dirty or (plan._structure, plan._signature) != plan._signatures():
            plan.refresh()
        signatures = (plan._structure, plan._signature)
        if signatures != self._generation:
            self._logits.clear()
            self._snapshots.clear()
            self._snapshot_bytes = 0
            self._rebuild_map()
            self._generation = signatures

    def _store_snapshots(self, key: Any, snaps: dict[int, np.ndarray]) -> None:
        size = sum(array.nbytes for array in snaps.values())
        if size > self.snapshot_budget:
            # One batch alone busts the budget: its lanes run full
            # forwards instead (correct, just unamortised).
            return
        while self._snapshot_bytes + size > self.snapshot_budget and self._snapshots:
            _key, evicted = self._snapshots.popitem(last=False)
            self._snapshot_bytes -= sum(a.nbytes for a in evicted.values())
        self._snapshots[key] = snaps
        self._snapshot_bytes += size

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def prepare(self, key: Any, inputs: np.ndarray) -> np.ndarray:
        """Clean forward for batch ``key``: cache taps, return logits.

        Must run with the model in its clean state.  Cached per
        (model-state generation, batch key), so across a whole campaign
        each batch's clean pass is paid once, not once per trial.
        """
        with self._lock, self.plan._lock:
            self._ensure_generation()
            cached = self._logits.get(key)
            if cached is not None:
                self._logits.move_to_end(key)
                return cached
            logits, snaps = self.plan.forward_from(inputs, 0, taps=self._taps)
            self._logits[key] = logits
            self._store_snapshots(key, snaps)
            return logits

    def lane_forward(
        self,
        key: Any,
        inputs: np.ndarray,
        params: "Iterable[Parameter] | None",
    ) -> np.ndarray:
        """One lane's logits for batch ``key`` under the applied fault.

        Runs the plan suffix from the fault's divergence step, seeded
        with the cached clean activation; without a usable snapshot
        (evicted, unmapped parameter, structure changed) it degrades to
        a full forward — bit-identical either way, since steps before
        the divergence point read no faulted state.
        """
        with self._lock, self.plan._lock:
            start = 0
            snapshot: np.ndarray | None = None
            if self._generation is not None:
                structure, _state = self.plan._signatures()
                if structure != self._generation[0]:
                    # Surgery since prepare(): step indices moved.
                    self.invalidate()
                else:
                    start = self.lane_start(params)
                    if start > 0:
                        batch = self._snapshots.get(key)
                        if batch is not None:
                            self._snapshots.move_to_end(key)
                            snapshot = batch.get(start)
            if snapshot is None:
                start = 0
                x = inputs
            else:
                x = snapshot
            logits, _ = self.plan.forward_from(x, start)
            return logits

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profile_lanes(
        self,
        injector: Any,
        site_sets: Sequence[Sequence[int]],
        inputs: np.ndarray | None = None,
    ) -> tuple[PlanProfile, PlanProfile]:
        """(shared, lanes) per-kernel profiles of one replica group.

        The *shared* profile times the clean prepare pass every lane
        amortises; the *lanes* profile accumulates each lane's suffix
        re-execution (one profiler forward per lane), splitting the
        per-lane cost from the shared work ``repro profile --replicas``
        reports.  Purely observational; the snapshot cache is flushed
        on entry and exit so profiling never feeds real evaluations.
        """
        if inputs is None:
            inputs = np.zeros(self.plan.input_shape, dtype=np.float32)
        with self._lock, self.plan._lock:
            previous = self.plan._profiler
            self.invalidate()
            shared_prof = self.plan.attach_profiler(KernelProfiler())
            try:
                self.prepare("profile", inputs)
                lanes_prof = self.plan.attach_profiler(KernelProfiler())
                for sites in site_sets:
                    params = fault_parameters(injector, sites)
                    with injector.inject(sites):
                        self.lane_forward("profile", inputs, params)
            finally:
                self.invalidate()
                if previous is not None:
                    self.plan.attach_profiler(previous)
                else:
                    self.plan.detach_profiler()
        return shared_prof.result(), lanes_prof.result()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"ReplicaPlan({self.plan!r}, replicas={self.replicas})"
