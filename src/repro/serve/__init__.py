"""Batched inference serving for protected checkpoints.

``repro.serve`` turns the offline reproduction into a deployable
service: ``repro protect`` writes a checkpoint, ``repro serve`` puts it
behind an HTTP endpoint, and chaos mode injects the paper's bit-flip
faults into the *live* model so resilience is observable under traffic.

Architecture (stdlib-only — ``ThreadingHTTPServer``, ``queue``,
``threading``, ``urllib``):

- :class:`ModelRegistry` (``registry.py``) maps serving names to
  ``save_protected`` checkpoints, loads them on demand via
  :func:`repro.core.checkpoint.load_protected_auto`, keeps at most
  ``capacity`` resident with LRU eviction, single-flights concurrent
  first loads, and gives each model an ``infer_lock``.
- :class:`MicroBatcher` (``batcher.py``) coalesces concurrent predict
  requests into one forward pass: a batch closes when ``max_batch``
  samples are pending or ``max_latency`` has elapsed, whichever comes
  first.  Batched throughput is the reason the service beats
  request-at-a-time evaluation (see ``benchmarks/test_bench_serve.py``).
- :class:`ChaosEngine` (``chaos.py``) reuses
  :class:`repro.fault.FaultInjector` to flip parameter bits at a
  configured BER around each batch — exact restore guaranteed — and
  counts silent data corruptions against a fault-free forward pass of
  the same inputs.
- :class:`ServerMetrics` (``metrics.py``) aggregates request counts, a
  latency histogram, the achieved batch-size distribution, and
  per-model chaos/SDC counters for ``GET /metrics``.
- :class:`ServeApp` / :class:`ReproServer` (``http.py``) expose
  ``POST /predict``, ``GET /models``, ``GET /healthz`` and
  ``GET /metrics``; :class:`ServeClient` / :func:`run_load`
  (``client.py``) are the matching client and load generator.

Quick start (library)::

    from repro.serve import ModelRegistry, ReproServer, ServeApp, ServeConfig

    registry = ModelRegistry(capacity=2)
    registry.register("lenet-fitact", "lenet-fitact.npz")
    with ReproServer(ServeApp(registry, ServeConfig(max_batch=32))) as server:
        print(server.url)  # ephemeral port
        ...

or from the CLI: ``repro serve --checkpoint lenet-fitact.npz --port 8080
--chaos-ber 1e-5``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.chaos import ChaosConfig, ChaosEngine
from repro.serve.client import LoadReport, ServeClient, run_load
from repro.serve.http import ReproServer, ServeApp, ServeConfig
from repro.serve.metrics import ChaosBatchReport, Histogram, ServerMetrics
from repro.serve.registry import ModelRegistry, ServedModel

__all__ = [
    "ChaosBatchReport",
    "ChaosConfig",
    "ChaosEngine",
    "Histogram",
    "LoadReport",
    "MicroBatcher",
    "ModelRegistry",
    "ReproServer",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServedModel",
    "ServerMetrics",
    "run_load",
]
