"""Batched inference serving for protected checkpoints.

``repro.serve`` turns the offline reproduction into a deployable
service: ``repro protect`` writes a checkpoint, ``repro serve`` puts it
behind the versioned ``/v1`` HTTP API, and chaos mode injects the
paper's bit-flip faults into the *live* model so resilience is
observable under traffic.

Architecture (stdlib-only — ``asyncio`` / ``ThreadingHTTPServer``,
``multiprocessing``, ``queue``, ``threading``, ``urllib``):

- :mod:`repro.serve.protocol` (``protocol.py``) defines the typed
  ``/v1`` messages (:class:`PredictRequest`, :class:`PredictResponse`,
  :class:`ModelInfo`, :class:`HealthReport`, ...) serialised with the
  store's exact-float JSON encoder; the PR-2 unversioned paths remain
  as deprecated aliases with byte-identical bodies.
- :class:`ModelRegistry` (``registry.py``) maps serving names to
  ``save_protected`` checkpoints, loads them on demand, keeps at most
  ``capacity`` resident with LRU eviction, and gives each model an
  ``infer_lock``; :class:`ModelSpec` is the picklable manifest-peek
  view the multi-process path ships to workers.
- :class:`MicroBatcher` (``batcher.py``) coalesces concurrent predict
  requests into one forward pass.
- :class:`AdmissionController` (``admission.py``) bounds pending
  requests globally and per model; the overflow is shed as HTTP 429
  with ``Retry-After`` (:class:`repro.errors.ServerOverloadedError`).
- :class:`WorkerPool` (``workers.py``) fans micro-batches out to worker
  processes, each holding its own compiled plans and chaos engine;
  dead lanes restart in place without dropping queued requests.
- :class:`SloTracker` (``slo.py``) turns a ``--slo-p99-ms`` target into
  p50/p99 estimates and an error-budget burn rate in ``/v1/healthz``.
- :class:`ChaosEngine` (``chaos.py``) reuses
  :class:`repro.fault.FaultInjector` to flip parameter bits at a
  configured BER around each batch — exact restore guaranteed — and
  counts silent data corruptions against a fault-free forward pass.
- :class:`ServerMetrics` (``metrics.py``) aggregates request counts,
  per-endpoint latency histograms, batch-size distribution, shed and
  worker-restart counters, and per-model chaos/SDC counters for
  ``GET /v1/metrics``.
- :class:`Router` (``routes.py``) is the one transport-neutral code
  path from (method, path, body) to response bytes; :class:`ServeApp` /
  :class:`ReproServer` (``http.py``) and :class:`AsyncReproServer`
  (``aio.py``) are the threaded and asyncio fronts over it;
  :class:`ServeClient` / :func:`run_load` (``client.py``) are the
  matching typed client and load generator.

Quick start (library)::

    from repro.serve import ModelRegistry, ReproServer, ServeApp, ServeConfig

    registry = ModelRegistry(capacity=2)
    registry.register("lenet-fitact", "lenet-fitact.npz")
    with ReproServer(ServeApp(registry, ServeConfig(max_batch=32))) as server:
        print(server.url)  # ephemeral port
        ...

or from the CLI: ``repro serve --checkpoint lenet-fitact.npz --port 8080
--front async --workers 2 --slo-p99-ms 50 --chaos-ber 1e-5``.
"""

from repro.serve.admission import AdmissionController, Ticket
from repro.serve.aio import AsyncReproServer
from repro.serve.batcher import MicroBatcher
from repro.serve.chaos import ChaosConfig, ChaosEngine
from repro.serve.client import LoadReport, ServeClient, run_load
from repro.serve.http import ReproServer, ServeApp, ServeConfig
from repro.serve.metrics import ChaosBatchReport, Histogram, ServerMetrics
from repro.serve.protocol import (
    HealthReport,
    ModelInfo,
    ModelList,
    PredictRequest,
    PredictResponse,
)
from repro.serve.registry import ModelRegistry, ModelSpec, ServedModel
from repro.serve.routes import Router
from repro.serve.slo import SloTracker
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionController",
    "AsyncReproServer",
    "ChaosBatchReport",
    "ChaosConfig",
    "ChaosEngine",
    "HealthReport",
    "Histogram",
    "LoadReport",
    "MicroBatcher",
    "ModelInfo",
    "ModelList",
    "ModelRegistry",
    "ModelSpec",
    "PredictRequest",
    "PredictResponse",
    "ReproServer",
    "Router",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServedModel",
    "ServerMetrics",
    "SloTracker",
    "Ticket",
    "WorkerPool",
    "run_load",
]
