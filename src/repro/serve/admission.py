"""Admission control: bounded queues and load shedding for the serving tier.

An unbounded accept queue turns overload into unbounded latency — every
request eventually gets served, seconds too late to matter.  The
production stance is the opposite: bound the number of requests pending
anywhere in the server (accept queue + batcher queues + in-flight
batches), and when the bound is hit, *shed* — fail fast with HTTP 429
and a ``Retry-After`` hint so well-behaved clients back off instead of
piling on.

:class:`AdmissionController` tracks two levels:

- a **global** bound (``max_pending``) across all models, sized to the
  server's total queue memory and latency budget;
- an optional **per-model** bound (``model_pending``), so one hot model
  cannot starve the others' share of the queue.

``admit()`` either returns a :class:`Ticket` (release it when the
request leaves the server, success or failure — it is idempotent) or
raises :class:`repro.errors.ServerOverloadedError` carrying the backoff
hint.  The hint scales with queue pressure: a barely-full queue suggests
a short retry, a deeply saturated one suggests a longer pause.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.errors import ConfigurationError, ServerOverloadedError

__all__ = ["AdmissionController", "Ticket"]


class Ticket:
    """One admitted request's slot; release exactly decrements once.

    ``release()`` is idempotent so it can be wired as both a future
    done-callback and a finally-block without double-counting.
    """

    __slots__ = ("_controller", "_model", "_released")

    def __init__(self, controller: "AdmissionController", model: str) -> None:
        self._controller = controller
        self._model = model
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self._model)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class AdmissionController:
    """Global + per-model pending bounds with shed-on-overflow.

    Parameters
    ----------
    max_pending:
        Requests allowed pending server-wide (>= 1).
    model_pending:
        Optional per-model pending bound (>= 1, <= ``max_pending``);
        ``None`` leaves only the global bound.
    on_shed:
        Optional ``(model, reason)`` observer, called on every rejected
        admission with reason ``"global"`` or ``"model"`` (metrics hook).
    on_depth:
        Optional ``(model, depth)`` observer, called whenever a model's
        pending depth changes (queue-depth gauge hook).
    """

    def __init__(
        self,
        max_pending: int = 256,
        model_pending: int | None = None,
        on_shed: Callable[[str, str], None] | None = None,
        on_depth: Callable[[str, int], None] | None = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if model_pending is not None:
            if model_pending < 1:
                raise ConfigurationError(
                    f"model_pending must be >= 1, got {model_pending}"
                )
            if model_pending > max_pending:
                raise ConfigurationError(
                    f"model_pending ({model_pending}) cannot exceed "
                    f"max_pending ({max_pending})"
                )
        self.max_pending = int(max_pending)
        self.model_pending = None if model_pending is None else int(model_pending)
        self._on_shed = on_shed
        self._on_depth = on_depth
        self._lock = threading.Lock()
        self._pending = 0
        self._per_model: dict[str, int] = {}
        self.admitted = 0
        self.shed = 0

    def __getstate__(self) -> dict[str, object]:
        """Controllers hold a lock; refuse to pickle (RPL007)."""
        raise TypeError(
            "AdmissionController holds a lock and live pending counts "
            "and cannot be pickled; build one per process"
        )

    def _retry_after(self) -> float:
        """Backoff hint in seconds, scaled to queue saturation.

        At the admission edge the queue is by definition full; the hint
        grows with how much *deeper* the server-wide pressure is likely
        to be — a small queue drains in well under a second, a deep one
        deserves a real pause.  Clamped to [0.1, 5.0].
        """
        depth_factor = self._pending / 64.0
        return round(min(5.0, max(0.1, depth_factor)), 3)

    def admit(self, model: str) -> Ticket:
        """Reserve a pending slot for ``model`` or shed the request."""
        with self._lock:
            if self._pending >= self.max_pending:
                self.shed += 1
                retry_after = self._retry_after()
                reason = "global"
            elif (
                self.model_pending is not None
                and self._per_model.get(model, 0) >= self.model_pending
            ):
                self.shed += 1
                retry_after = self._retry_after()
                reason = "model"
            else:
                self._pending += 1
                depth = self._per_model.get(model, 0) + 1
                self._per_model[model] = depth
                self.admitted += 1
                reason = None
        if reason is not None:
            if self._on_shed is not None:
                self._on_shed(model, reason)
            scope = (
                "server is at capacity"
                if reason == "global"
                else f"model {model!r} is at capacity"
            )
            raise ServerOverloadedError(
                f"{scope} ({self.max_pending} pending requests max); "
                f"retry after {retry_after}s",
                retry_after_s=retry_after,
            )
        if self._on_depth is not None:
            self._on_depth(model, depth)
        return Ticket(self, model)

    def _release(self, model: str) -> None:
        with self._lock:
            self._pending = max(0, self._pending - 1)
            depth = max(0, self._per_model.get(model, 0) - 1)
            if depth:
                self._per_model[model] = depth
            else:
                self._per_model.pop(model, None)
        if self._on_depth is not None:
            self._on_depth(model, depth)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def depth(self, model: str) -> int:
        with self._lock:
            return self._per_model.get(model, 0)

    def report(self) -> dict[str, object]:
        """JSON-ready state for ``GET /v1/healthz``."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "model_pending": self.model_pending,
                "per_model": dict(sorted(self._per_model.items())),
                "admitted": self.admitted,
                "shed": self.shed,
            }
