"""The asyncio front door: selector-loop HTTP over the shared router.

The threaded :class:`~repro.serve.http.ReproServer` spends one OS thread
per connection, almost all of it blocked on a batcher future.  This
front replaces that with a single selector event loop
(``asyncio.start_server`` on a background thread): connections are
coroutines, request parsing is non-blocking, and the inference wait is
``await asyncio.wrap_future(...)`` on the batcher's
``concurrent.futures.Future`` — no thread is parked per in-flight
request, so thousands of slow clients cost file descriptors, not stacks.

Everything above the transport is shared with the threaded front:
:class:`repro.serve.routes.Router` does routing, legacy-alias
canonicalisation, admission (429 + ``Retry-After``), error mapping and
latency observation, so the two fronts return byte-identical bodies for
identical requests.  The router's synchronous half (``begin``: parse,
admit, submit — plus a possible first-request checkpoint load) runs in
the loop's default executor to keep the loop responsive; only the
cheap completion half runs on the loop.

The transport is deliberately minimal HTTP/1.1: request line, headers,
``Content-Length`` bodies, keep-alive.  That is exactly what
:class:`~repro.serve.client.ServeClient`, curl, and load generators
speak; it is not a general-purpose web server.

Lifecycle mirrors :class:`~repro.serve.http.ReproServer` (``start`` /
``stop`` / context manager / ``url``); ``stop()`` closes the listener,
lets in-flight requests finish (bounded by the app's drain timeout),
then drains the app's lanes and worker pool.
"""

from __future__ import annotations

import asyncio
import threading
from http import HTTPStatus

from repro.errors import ConfigurationError
from repro.serve.http import ServeApp
from repro.serve.routes import RouteResult
from repro.utils.logging import get_logger

__all__ = ["AsyncReproServer"]

_logger = get_logger("serve.aio")

_MAX_HEADER_LINES = 100
_MAX_LINE = 65536


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class AsyncReproServer:
    """Asyncio event-loop HTTP server over a :class:`ServeApp`.

    Same surface as the threaded server: ``port=0`` binds an ephemeral
    port (readable from :attr:`port` / :attr:`url` once started),
    ``stop()`` drains gracefully, and it works as a context manager.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self._requested = (host, port)
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._startup = threading.Event()
        self._startup_error: BaseException | None = None

    def __getstate__(self) -> dict[str, object]:
        """Servers own a loop thread and sockets; refuse to pickle (RPL007)."""
        raise TypeError(
            "AsyncReproServer owns an event loop and listening socket "
            "and cannot be pickled; start a fresh server per process"
        )

    # ------------------------------------------------------------------
    # Addresses
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        if self._address is None:
            raise ConfigurationError("server is not running")
        return self._address[0]

    @property
    def port(self) -> int:
        if self._address is None:
            raise ConfigurationError("server is not running")
        return int(self._address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncReproServer":
        if self._thread is not None:
            raise ConfigurationError("server is already running")
        self._startup.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-aio", daemon=True
        )
        self._thread.start()
        if not self._startup.wait(timeout=30.0):
            raise ConfigurationError("async server failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise self._startup_error
        _logger.info("serving on %s (asyncio front)", self.url)
        return self

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
        try:
            future.result(timeout=self.app.config.drain_timeout_s + 10.0)
        except (TimeoutError, asyncio.TimeoutError):  # pragma: no cover
            _logger.warning("async server drain timed out; forcing stop")
            loop.call_soon_threadsafe(self._force_stop)
        thread.join(timeout=10.0)
        self._thread = None
        self._loop = None
        self._address = None
        self.app.close()

    def __enter__(self) -> "AsyncReproServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _force_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            if not self._startup.is_set():
                self._startup_error = error
                self._startup.set()
            else:  # pragma: no cover — post-startup loop crash
                _logger.exception("async server loop failed")
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        host, port = self._requested
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind async server to {host}:{port}: {error}"
            ) from error
        sockets = self._server.sockets or ()
        bound = sockets[0].getsockname()
        self._address = (bound[0], int(bound[1]))
        self._startup.set()
        await self._stop_event.wait()

    async def _shutdown(self) -> None:
        """Stop accepting, let in-flight requests finish, exit the loop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._conn_tasks if not task.done()}
        if pending:
            await asyncio.wait(
                pending, timeout=self.app.config.drain_timeout_s
            )
        assert self._stop_event is not None
        self._stop_event.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers, body = request
                result = await self._dispatch(method, target, body)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and version == "HTTP/1.1"
                )
                self._write_response(writer, result, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict[str, str], bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split(" ")
        if len(parts) != 3:
            return None
        method, target, version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_LINE:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None  # header flood
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, version, headers, body

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> RouteResult:
        loop = asyncio.get_running_loop()
        # begin() is the synchronous half: parse, canonicalise, admit,
        # submit (plus a possible first-request checkpoint load).  It
        # runs in the executor so a slow load never stalls the loop;
        # the inference *wait* costs no thread at all.
        outcome = await loop.run_in_executor(
            None, self.app.router.begin, method, target, body
        )
        if isinstance(outcome, RouteResult):
            return outcome
        try:
            logits = await asyncio.wait_for(
                asyncio.wrap_future(outcome.future),
                timeout=self.app.config.request_timeout,
            )
        except BaseException as error:  # noqa: BLE001 — rendered as a response
            return outcome.fail(error)
        return outcome.finish(logits)

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter, result: RouteResult, keep_alive: bool
    ) -> None:
        lines = [
            f"HTTP/1.1 {result.status} {_reason(result.status)}",
            f"Content-Type: {result.content_type}",
            f"Content-Length: {len(result.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in result.headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + result.body)
