"""Request coalescing: many concurrent predicts, one forward pass.

Single-sample forward passes waste almost all their time in per-call
overhead (python dispatch, im2col setup, BLAS fixed costs); a batch of
32 costs barely more than a batch of 1.  :class:`MicroBatcher` exploits
that: concurrent ``submit`` calls enqueue their arrays, worker threads
drain the queue into one concatenated batch — closing it when either
``max_batch`` samples are pending or ``max_latency`` elapsed since the
batch opened — run the model once, and scatter the results back to the
callers' futures.

The batcher is model-agnostic: it runs whatever ``run_batch`` callable
it was given (the serving app passes a lock-holding, chaos-aware
closure).
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable
from concurrent.futures import Future

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MicroBatcher"]


class _Pending:
    __slots__ = ("inputs", "future")

    def __init__(self, inputs: np.ndarray, future: Future) -> None:
        self.inputs = inputs
        self.future = future


_STOP = object()


class MicroBatcher:
    """Coalesce concurrent inference requests into batched forward passes.

    Parameters
    ----------
    run_batch:
        ``(inputs[N, ...]) -> outputs[N, ...]`` — one forward pass over a
        concatenated batch.  Exceptions propagate to every caller whose
        samples were in the failing batch.
    max_batch:
        Close a batch once this many samples are pending (>= 1).
    max_latency:
        Seconds to hold an open batch waiting for more requests.  ``0``
        disables waiting (each batch is whatever was already queued).
    workers:
        Worker threads running batches (>= 1).  More than one only helps
        when ``run_batch`` releases the GIL or serves multiple models.
    on_batch:
        Optional ``(size, seconds)`` observer (metrics hook).
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_latency: float = 0.005,
        workers: int = 1,
        on_batch: Callable[[int, float], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency < 0:
            raise ConfigurationError(
                f"max_latency must be >= 0, got {max_latency}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._run_batch = run_batch
        self.max_batch = int(max_batch)
        self.max_latency = float(max_latency)
        self._on_batch = on_batch
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-batcher-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def __getstate__(self) -> dict[str, object]:
        """Batchers own live worker threads and refuse to pickle (RPL007)."""
        raise TypeError(
            "MicroBatcher owns worker threads and cannot be pickled; "
            "construct a fresh batcher in the target process"
        )

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, inputs: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue ``inputs`` (leading axis = samples); returns a future.

        The future resolves to the model outputs for exactly these
        samples, in order.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim < 1 or inputs.shape[0] < 1:
            raise ConfigurationError(
                "inputs must have a non-empty leading sample axis"
            )
        if inputs.shape[0] > self.max_batch:
            raise ConfigurationError(
                f"request carries {inputs.shape[0]} samples, more than "
                f"max_batch={self.max_batch}; split it client-side"
            )
        future: Future = Future()
        with self._close_lock:
            if self._closed:
                raise ConfigurationError("batcher is closed")
            self._queue.put(_Pending(inputs, future))
        return future

    def predict(self, inputs: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(inputs).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _collect(self, first: _Pending) -> list[_Pending]:
        """Grow a batch from ``first`` until size or latency closes it."""
        batch = [first]
        count = first.inputs.shape[0]
        deadline = time.monotonic() + self.max_latency
        while count < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                # Preserve the shutdown signal for the next worker.
                self._queue.put(_STOP)
                break
            if count + item.inputs.shape[0] > self.max_batch:
                # Would overflow: hand it back for the next batch.
                self._queue.put(item)
                break
            batch.append(item)
            count += item.inputs.shape[0]
        return batch

    def _run(self, batch: list[_Pending]) -> None:
        sizes = [item.inputs.shape[0] for item in batch]
        total = sum(sizes)
        started = time.monotonic()
        try:
            stacked = (
                batch[0].inputs
                if len(batch) == 1
                else np.concatenate([item.inputs for item in batch], axis=0)
            )
            outputs = self._run_batch(stacked)
            outputs = np.asarray(outputs)
            if outputs.shape[0] != total:
                raise ConfigurationError(
                    f"run_batch returned {outputs.shape[0]} rows for a "
                    f"batch of {total} samples"
                )
        except BaseException as error:  # noqa: BLE001 — fan the failure out
            for item in batch:
                if not item.future.cancelled():
                    item.future.set_exception(error)
            return
        elapsed = time.monotonic() - started
        offset = 0
        for item, size in zip(batch, sizes):
            if not item.future.cancelled():
                item.future.set_result(outputs[offset : offset + size])
            offset += size
        if self._on_batch is not None:
            self._on_batch(total, elapsed)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.put(_STOP)  # release sibling workers too
                return
            self._run(self._collect(item))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, finish queued batches, join the workers."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        # A request re-queued by _collect (overflow) can land behind the
        # stop sentinel and outlive every worker; fail it rather than
        # leaving its caller blocked on the future.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP and not item.future.done():
                item.future.set_exception(ConfigurationError("batcher is closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
