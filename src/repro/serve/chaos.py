"""Chaos mode: transient bit-flips injected into the live model.

FitAct's claim is that protected models keep working when parameter
memory is corrupted *in deployment*.  Chaos mode makes that observable
on a running server: for each batch, it samples fresh fault sites at a
configured bit-error rate with the same :class:`repro.fault.FaultInjector`
the offline campaigns use, serves the batch from the faulted model, and
restores the exact pre-fault parameters before the next batch (the
injector's context manager guarantees restoration on any exit path).

Each batch is also evaluated once fault-free so the engine can count
silent data corruptions — predictions the faults changed — without
ground-truth labels.  Those counters surface per model in ``/metrics``,
which is how a protected checkpoint's lower SDC rate shows up next to an
unprotected baseline under identical traffic and fault patterns.

Fault patterns are deterministic: batch ``i`` of model ``name`` derives
its seed as ``derive_seed(seed, "chaos", name, i)``, so two servers with
the same chaos seed inject identical faults regardless of traffic
timing.  The batch counter lives in the engine, which lives in the
model's serving lane — evicting and reloading a model restarts its
stream from batch 0.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.quant.model import quantize_module
from repro.serve.metrics import ChaosBatchReport
from repro.serve.registry import ServedModel
from repro.utils.rng import derive_seed

__all__ = ["ChaosConfig", "ChaosEngine"]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for live fault injection.

    Parameters
    ----------
    ber:
        Per-bit fault rate over the model's parameter memory, applied
        independently to every batch (the paper sweeps 1e-7 … 3e-5).
    seed:
        Base seed for the per-batch fault-pattern derivation.
    """

    ber: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.ber <= 1.0:
            raise ConfigurationError(
                f"chaos ber must be in (0, 1], got {self.ber}"
            )


class ChaosEngine:
    """Per-model fault injection driver for the serving path.

    Quantises the model on construction (idempotent for checkpoints
    written by ``repro protect``) so the injector's encode/decode round
    trip — and therefore its restore — is bit-exact.
    """

    def __init__(self, entry: ServedModel, config: ChaosConfig) -> None:
        self.name = entry.name
        self.config = config
        with entry.infer_lock:
            quantize_module(entry.model, entry.fmt)
            self.injector = FaultInjector(entry.model, fmt=entry.fmt)
        self.fault_model = BitFlipFaultModel.at_rate(config.ber)
        self._batches = 0

    def run_batch(
        self,
        forward: Callable[[np.ndarray], np.ndarray],
        inputs: np.ndarray,
    ) -> tuple[np.ndarray, ChaosBatchReport]:
        """Serve one batch under fault; returns (outputs, report).

        The caller must hold the model's ``infer_lock``: the engine
        mutates shared parameters and both forward passes must see a
        consistent model.
        """
        clean = forward(inputs)
        seed = derive_seed(self.config.seed, "chaos", self.name, self._batches)
        self._batches += 1
        sites = self.injector.sample(self.fault_model, rng=seed)
        samples = int(np.asarray(inputs).shape[0])
        if len(sites) == 0:
            # The Binomial draw produced no faults this batch.
            return clean, ChaosBatchReport(
                samples=samples, flips=0, injected=False, sdc_events=0
            )
        with self.injector.inject(sites) as flips:
            faulty = forward(inputs)
        sdc = int((faulty.argmax(axis=1) != clean.argmax(axis=1)).sum())
        return faulty, ChaosBatchReport(
            samples=samples, flips=int(flips), injected=True, sdc_events=sdc
        )
