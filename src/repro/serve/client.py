"""Client utilities: a typed ``/v1`` client and a threaded load generator.

``ServeClient`` speaks the versioned serving protocol
(:mod:`repro.serve.protocol`) over ``urllib.request`` (stdlib only, same
as the server): requests are encoded with the exact-float JSON encoder
and responses come back as the protocol's typed dataclasses
(:class:`~repro.serve.protocol.PredictResponse`,
:class:`~repro.serve.protocol.ModelList`,
:class:`~repro.serve.protocol.HealthReport`).  An overload shed (HTTP
429) surfaces as :class:`repro.errors.ServerOverloadedError` carrying
the server's ``Retry-After`` hint, so callers can implement real
backoff instead of pattern-matching error strings.

``run_load`` drives ``POST /v1/predict`` from many threads at once —
enough concurrency for the micro-batcher to actually form batches — and
reports achieved throughput with sheds counted separately from hard
errors; it backs ``benchmarks/test_bench_serve.py``,
``benchmarks/test_bench_serve_async.py`` and
``examples/serve_client.py``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, ServerOverloadedError
from repro.serve.protocol import (
    HealthReport,
    ModelList,
    PredictRequest,
    PredictResponse,
    dump_payload,
)

__all__ = ["LoadReport", "ServeClient", "run_load"]


class ServeClient:
    """Typed HTTP client for a running ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = dump_payload(payload)
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                body = {}
            detail = body.get("error", "")
            if error.code == 429:
                retry_after = body.get(
                    "retry_after_s", error.headers.get("Retry-After", 1.0)
                )
                raise ServerOverloadedError(
                    detail or "server overloaded",
                    retry_after_s=float(retry_after),
                ) from error
            raise ConfigurationError(
                f"{path} failed with HTTP {error.code}: {detail or error.reason}"
            ) from error

    # ------------------------------------------------------------------
    def healthz(self) -> HealthReport:
        return HealthReport.from_payload(self._request("/v1/healthz"))

    def models(self) -> ModelList:
        return ModelList.from_payload(self._request("/v1/models"))

    def metrics(self) -> dict[str, Any]:
        """The metrics snapshot (its JSON shape is the typed contract)."""
        return self._request("/v1/metrics")

    def predict(
        self,
        inputs: np.ndarray,
        model: str | None = None,
        return_logits: bool = False,
    ) -> PredictResponse:
        request = PredictRequest(
            inputs=np.asarray(inputs), model=model, return_logits=return_logits
        )
        return PredictResponse.from_payload(
            self._request("/v1/predict", request.to_payload())
        )

    def wait_ready(self, attempts: int = 50, delay: float = 0.1) -> HealthReport:
        """Poll ``/v1/healthz`` until the server answers (startup races)."""
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except (urllib.error.URLError, OSError, ConfigurationError) as error:
                last_error = error
                time.sleep(delay)
        raise ConfigurationError(
            f"server at {self.base_url} never became ready: {last_error}"
        )


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run.

    ``sheds`` counts HTTP 429 rejections (admission control working as
    designed under overload); ``errors`` counts everything else that
    failed.  Shed requests are excluded from ``requests``/``samples``.
    """

    requests: int
    samples: int
    errors: int
    seconds: float
    sheds: int = 0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.requests} requests ({self.samples} samples) in "
            f"{self.seconds:.2f}s -> {self.samples_per_second:,.1f} "
            f"samples/s, {self.errors} errors, {self.sheds} shed"
        )


def run_load(
    client: ServeClient,
    inputs: np.ndarray,
    requests: int,
    concurrency: int = 8,
    model: str | None = None,
) -> LoadReport:
    """Fire ``requests`` predicts from ``concurrency`` threads.

    Every request carries the same ``inputs`` payload (shape
    ``(k, 3, H, W)`` or a single sample); the point is to measure the
    serving path, not to vary the data.
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
    payload = np.asarray(inputs)
    samples_per_request = payload.shape[0] if payload.ndim == 4 else 1
    remaining = threading.BoundedSemaphore(requests)
    counters = {"done": 0, "errors": 0, "sheds": 0}
    counters_lock = threading.Lock()

    def worker() -> None:
        while True:
            if not remaining.acquire(blocking=False):
                return
            done = errors = sheds = 0
            try:
                client.predict(payload, model=model)
                done = 1
            except ServerOverloadedError:
                sheds = 1
            except Exception:  # noqa: BLE001 — load gen records, not raises
                errors = 1
            with counters_lock:
                counters["done"] += done
                counters["errors"] += errors
                counters["sheds"] += sheds

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return LoadReport(
        requests=counters["done"],
        samples=counters["done"] * samples_per_request,
        errors=counters["errors"],
        seconds=elapsed,
        sheds=counters["sheds"],
    )
