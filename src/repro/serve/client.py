"""Client utilities: a thin JSON client and a threaded load generator.

``ServeClient`` speaks the server's four endpoints over
``urllib.request`` (stdlib only, same as the server).  ``run_load``
drives ``POST /predict`` from many threads at once — enough concurrency
for the micro-batcher to actually form batches — and reports achieved
throughput; it backs ``benchmarks/test_bench_serve.py`` and
``examples/serve_client.py``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LoadReport", "ServeClient", "run_load"]


class ServeClient:
    """Minimal JSON/HTTP client for a running ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, path: str, payload: dict[str, object] | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                detail = ""
            raise ConfigurationError(
                f"{path} failed with HTTP {error.code}: {detail or error.reason}"
            ) from error

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("/healthz")

    def models(self) -> dict:
        return self._request("/models")

    def metrics(self) -> dict:
        return self._request("/metrics")

    def predict(
        self,
        inputs: np.ndarray,
        model: str | None = None,
        return_logits: bool = False,
    ) -> dict:
        payload: dict[str, object] = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        if return_logits:
            payload["return_logits"] = True
        return self._request("/predict", payload)

    def wait_ready(self, attempts: int = 50, delay: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except (urllib.error.URLError, OSError, ConfigurationError) as error:
                last_error = error
                time.sleep(delay)
        raise ConfigurationError(
            f"server at {self.base_url} never became ready: {last_error}"
        )


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    requests: int
    samples: int
    errors: int
    seconds: float

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def samples_per_second(self) -> float:
        return self.samples / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.requests} requests ({self.samples} samples) in "
            f"{self.seconds:.2f}s -> {self.samples_per_second:,.1f} "
            f"samples/s, {self.errors} errors"
        )


def run_load(
    client: ServeClient,
    inputs: np.ndarray,
    requests: int,
    concurrency: int = 8,
    model: str | None = None,
) -> LoadReport:
    """Fire ``requests`` predicts from ``concurrency`` threads.

    Every request carries the same ``inputs`` payload (shape
    ``(k, 3, H, W)`` or a single sample); the point is to measure the
    serving path, not to vary the data.
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
    payload = np.asarray(inputs)
    samples_per_request = payload.shape[0] if payload.ndim == 4 else 1
    remaining = threading.BoundedSemaphore(requests)
    counters = {"done": 0, "errors": 0}
    counters_lock = threading.Lock()

    def worker() -> None:
        while True:
            if not remaining.acquire(blocking=False):
                return
            try:
                client.predict(payload, model=model)
                error = 0
            except Exception:  # noqa: BLE001 — load gen records, not raises
                error = 1
            with counters_lock:
                counters["done"] += 1
                counters["errors"] += error

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return LoadReport(
        requests=counters["done"],
        samples=counters["done"] * samples_per_request,
        errors=counters["errors"],
        seconds=elapsed,
    )
